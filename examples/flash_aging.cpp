/**
 * @file
 * Flash aging walkthrough: watch a cache wear out in fast-forward
 * and see the programmable controller's responses (section 5.2) —
 * rising ECC strengths, MLC->SLC density switches, hot-page
 * migrations, block retirement — and compare against the fixed
 * BCH-1 controller that the paper's Figure 12 baselines.
 *
 * Endurance is accelerated (cells start failing after ~60 erases
 * instead of ~100k) so an entire lifetime fits in seconds.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

class SimpleDisk : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

struct AgingRun
{
    std::uint64_t accessesToFailure = 0;
    FlashCacheStats finalStats;
};

AgingRun
ageToDeath(bool programmable, bool verbose)
{
    WearParams wear;
    wear.nominalCycles = 60;
    wear.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wear);

    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(8));
    FlashDevice device(geom, FlashTiming(), lifetime, 31);
    FlashMemoryController controller(device);
    SimpleDisk disk;

    FlashCacheConfig cfg;
    cfg.adaptiveReconfig = programmable;
    cfg.hotPageMigration = programmable;
    if (!programmable) {
        cfg.initialEccStrength = 1;
        cfg.maxEccStrength = 1;
    }
    FlashCache cache(controller, disk, cfg);

    Rng rng(3);
    ZipfSampler zipf(8192, 1.2);
    AgingRun out;
    std::uint64_t next_report = 1;
    while (out.accessesToFailure < 80000000 && !cache.failed()) {
        const Lba lba = zipf.sample(rng);
        if (rng.bernoulli(0.5))
            cache.write(lba);
        else
            cache.read(lba);
        ++out.accessesToFailure;

        if (verbose && out.accessesToFailure == next_report * 100000) {
            const FlashCacheStats& st = cache.stats();
            std::printf("  %7lluk accesses: ecc+%llu density+%llu "
                        "hot+%llu retired %llu/%u uncorrectable %llu\n",
                        static_cast<unsigned long long>(
                            out.accessesToFailure / 1000),
                        static_cast<unsigned long long>(st.eccReconfigs),
                        static_cast<unsigned long long>(
                            st.densityReconfigs),
                        static_cast<unsigned long long>(st.hotMigrations),
                        static_cast<unsigned long long>(st.retiredBlocks),
                        geom.numBlocks,
                        static_cast<unsigned long long>(
                            st.uncorrectableReads));
            ++next_report;
        }
    }
    out.finalStats = cache.stats();
    return out;
}

} // namespace

int
main()
{
    std::printf("Aging an 8 MB flash disk cache to total failure "
                "(endurance accelerated ~1700x).\n");

    std::printf("\n--- programmable flash memory controller ---\n");
    const AgingRun prog = ageToDeath(true, true);
    std::printf("survived %llu accesses; final: %llu ECC bumps, %llu "
                "density switches,\n%llu hot migrations, %llu pages "
                "lost\n",
                static_cast<unsigned long long>(prog.accessesToFailure),
                static_cast<unsigned long long>(
                    prog.finalStats.eccReconfigs),
                static_cast<unsigned long long>(
                    prog.finalStats.densityReconfigs),
                static_cast<unsigned long long>(
                    prog.finalStats.hotMigrations),
                static_cast<unsigned long long>(
                    prog.finalStats.dataLossPages));

    std::printf("\n--- fixed BCH-1 controller (baseline) ---\n");
    const AgingRun fixed = ageToDeath(false, false);
    std::printf("survived %llu accesses\n",
                static_cast<unsigned long long>(fixed.accessesToFailure));

    std::printf("\nlifetime extension: %.1fx (the paper reports ~20x "
                "on average, Figure 12)\n",
                static_cast<double>(prog.accessesToFailure) /
                    static_cast<double>(
                        std::max<std::uint64_t>(fixed.accessesToFailure,
                                                1)));
    return 0;
}
