/**
 * @file
 * Warm-restart walkthrough: the section 3 management tables live on
 * disk and load back into DRAM at boot, so a server reboot does not
 * cool the flash cache. This example fills a cache, "reboots" by
 * saving and restoring device + cache state to files, and shows that
 * the hot set still hits without any disk traffic.
 */

#include <cstdio>
#include <fstream>

#include "core/flash_cache.hh"
#include "util/atomic_file.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

class CountingDisk : public BackingStore
{
  public:
    Seconds
    read(Lba) override
    {
        ++reads;
        return milliseconds(4.2);
    }

    Seconds write(Lba) override { return milliseconds(4.2); }

    std::uint64_t reads = 0;
};

FlashGeometry
geometry()
{
    return FlashGeometry::forMlcCapacity(mib(16));
}

} // namespace

int
main()
{
    CellLifetimeModel lifetime;
    const char* dev_path = "/tmp/flashcache_device.state";
    const char* cache_path = "/tmp/flashcache_tables.state";

    // --- before the "reboot": warm the cache ---
    {
        FlashDevice device(geometry(), FlashTiming(), lifetime, 2026);
        FlashMemoryController controller(device);
        CountingDisk disk;
        FlashCache cache(controller, disk);

        Rng rng(1);
        ZipfSampler zipf(6000, 1.1);
        for (int i = 0; i < 300000; ++i) {
            const Lba l = zipf.sample(rng);
            if (rng.bernoulli(0.2))
                cache.write(l);
            else
                cache.read(l);
        }
        cache.flushAll(); // dirty data must be safe before power-off
        std::printf("before reboot: %.1f%% read hit rate, %llu pages "
                    "cached, %llu disk reads\n",
                    100.0 * cache.stats().fgst.reads.hitRate(),
                    static_cast<unsigned long long>(cache.validPages()),
                    static_cast<unsigned long long>(disk.reads));

        // Atomic saves (temp file + rename): a crash mid-save leaves
        // the previous snapshot intact, never a torn one.
        if (!atomicWriteFile(dev_path, [&](std::ostream& os) {
                device.saveState(os);
            }) ||
            !atomicWriteFile(cache_path, [&](std::ostream& os) {
                cache.saveState(os);
            })) {
            std::fprintf(stderr, "state save failed\n");
            return 1;
        }
    }

    // --- after the "reboot": fresh objects, tables loaded ---
    FlashDevice device(geometry(), FlashTiming(), lifetime, 2026);
    FlashMemoryController controller(device);
    CountingDisk disk;
    FlashCache cache(controller, disk);
    {
        std::ifstream dev_in(dev_path, std::ios::binary);
        device.loadState(dev_in);
        std::ifstream cache_in(cache_path, std::ios::binary);
        cache.loadState(cache_in);
    }

    Rng rng(2);
    ZipfSampler zipf(6000, 1.1);
    RatioStat warm;
    for (int i = 0; i < 50000; ++i) {
        if (cache.read(zipf.sample(rng)).hit)
            warm.hit();
        else
            warm.miss();
    }
    std::printf("after reboot:  %.1f%% read hit rate immediately, "
                "%llu disk reads for the re-misses\n",
                100.0 * warm.hitRate(),
                static_cast<unsigned long long>(disk.reads));
    std::printf("\nA cold cache would have started at a ~0%% hit rate "
                "and paid one 4.2 ms disk access per miss\nwhile "
                "re-warming; the persisted tables (about 2%% of the "
                "flash size, section 3) skip that.\n");

    std::remove(dev_path);
    std::remove(cache_path);
    return 0;
}
