/**
 * @file
 * Quickstart: build a flash based disk cache, run a small workload
 * through it, and read the statistics tables.
 *
 * This walks the public API bottom-up:
 *   1. a cell-lifetime model (how the flash wears),
 *   2. a NAND device (geometry + timing),
 *   3. the programmable memory controller (ECC + density),
 *   4. the flash disk cache itself (FCHT/FPST/FBST/FGST, split
 *      read/write regions, GC, wear-leveling),
 * then issues reads and writes and prints what happened.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

/** A trivial disk: every access costs the Table 3 average. */
class SimpleDisk : public BackingStore
{
  public:
    Seconds
    read(Lba) override
    {
        ++reads;
        return milliseconds(4.2);
    }

    Seconds
    write(Lba) override
    {
        ++writes;
        return milliseconds(4.2);
    }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

} // namespace

int
main()
{
    // 1. Reliability statistics: the defaults reproduce the paper's
    //    anchor (P(cell dead at 100k W/E cycles) = 1e-4).
    CellLifetimeModel lifetime;

    // 2. A 64 MB (MLC) NAND device with Table 2/3 timings.
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(64));
    FlashDevice device(geom, FlashTiming(), lifetime, /*seed=*/42);

    // 3. The programmable controller: BCH t = 1..12 per 2 KB page.
    FlashMemoryController controller(device);

    // 4. The disk cache, split 90% read / 10% write region.
    SimpleDisk disk;
    FlashCacheConfig config; // paper defaults
    FlashCache cache(controller, disk, config);

    std::printf("flash: %u blocks x %u frames = %llu MLC pages "
                "(%.0f MB)\n",
                geom.numBlocks, geom.framesPerBlock,
                static_cast<unsigned long long>(cache.capacityPages()),
                static_cast<double>(geom.capacityBytes(DensityMode::MLC))
                    / (1024 * 1024));

    // A small zipf-popular working set, 25% writes.
    Rng rng(7);
    ZipfSampler zipf(60000, 1.0);
    for (int i = 0; i < 200000; ++i) {
        const Lba lba = zipf.sample(rng);
        if (rng.bernoulli(0.25))
            cache.write(lba);
        else
            cache.read(lba);
    }

    const FlashCacheStats& st = cache.stats();
    std::printf("\nafter 200k accesses:\n");
    std::printf("  read hit rate     %.1f%% (FGST)\n",
                100.0 * st.fgst.reads.hitRate());
    std::printf("  avg hit latency   %.0f us\n",
                st.fgst.avgHitLatency() * 1e6);
    std::printf("  avg miss penalty  %.2f ms\n",
                st.fgst.avgMissPenalty() * 1e3);
    std::printf("  occupancy         %.1f%%\n", 100.0 * cache.occupancy());
    std::printf("  GC runs           %llu (%.1f%% of flash time)\n",
                static_cast<unsigned long long>(st.gcRuns),
                100.0 * cache.gcOverheadFraction());
    std::printf("  block evictions   %llu\n",
                static_cast<unsigned long long>(st.evictions));
    std::printf("  disk reads/writes %llu / %llu\n",
                static_cast<unsigned long long>(disk.reads),
                static_cast<unsigned long long>(disk.writes));

    // Flush the dirty write region back to disk before shutdown.
    cache.flushAll();
    std::printf("  after flushAll    %llu disk writes total\n",
                static_cast<unsigned long long>(disk.writes));

    cache.checkInvariants();
    std::printf("\ninvariants OK\n");
    return 0;
}
