/**
 * @file
 * Trace utility: generate any Table 4 workload to a CSV disk trace,
 * summarize an existing trace, or compute its LRU miss-rate curve —
 * the same analyses the Figure 4/7 benches run, exposed as a small
 * command-line tool.
 *
 * Usage:
 *   trace_tool gen <workload> <records> <out.csv> [scale]
 *   trace_tool summarize <trace.csv>
 *   trace_tool curve <trace.csv>
 *   trace_tool run <workload> <requests> [scale]
 *             [--stats-json FILE] [--trace-out FILE]
 *             [--trace-events N]
 *             [--save-state PREFIX] [--load-state PREFIX]
 *
 * `run` drives the workload through the full system simulator
 * (DRAM PDC + flash cache + disk) and prints the gem5-style stats
 * dump; --stats-json snapshots the metric registry and --trace-out
 * writes a Chrome trace (open in chrome://tracing or Perfetto).
 * --save-state persists the flash stack (<PREFIX>.dev +
 * <PREFIX>.cache) after the run, atomically (temp file + rename), so
 * a crash mid-save can never leave a corrupt snapshot; --load-state
 * warm-starts from such a snapshot before the run.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/cli.hh"
#include "obs/trace.hh"
#include "sim/system_sim.hh"
#include "workload/macro.hh"
#include "workload/stack_distance.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

using namespace flashcache;

namespace {

std::unique_ptr<WorkloadGenerator>
makeByName(const std::string& name, double scale)
{
    for (const auto& cfg : table4MicroConfigs(scale)) {
        if (cfg.name == name)
            return makeSynthetic(cfg);
    }
    for (const auto& cfg : table4MacroConfigs(scale)) {
        if (cfg.name == name)
            return makeMacro(cfg);
    }
    return nullptr;
}

/** Strip `--flag VALUE` from argv; empty string when absent. */
std::string
takeFlag(int& argc, char** argv, const char* flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) != 0)
            continue;
        const std::string value = argv[i + 1];
        for (int j = i; j + 2 < argc; ++j)
            argv[j] = argv[j + 2];
        argc -= 2;
        return value;
    }
    return std::string();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool gen <workload> <records> <out.csv> "
                 "[scale]\n"
                 "  trace_tool summarize <trace.csv>\n"
                 "  trace_tool curve <trace.csv>\n"
                 "  trace_tool run <workload> <requests> [scale] "
                 "[--save-state PREFIX] [--load-state PREFIX] "
                 "[obs flags]\n"
                 "workloads: uniform alpha1 alpha2 alpha3 exp1 exp2 "
                 "dbt2 SPECWeb99 WebSearch1 WebSearch2 Financial1 "
                 "Financial2\n"
                 "obs flags: %s\n",
                 obs::CliOptions::help());
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    const obs::CliOptions obsOpts = obs::CliOptions::parse(argc, argv);
    const std::string saveState = takeFlag(argc, argv, "--save-state");
    const std::string loadState = takeFlag(argc, argv, "--load-state");
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "run") {
        const std::string name = argv[2];
        const auto requests = argc > 3
            ? std::strtoull(argv[3], nullptr, 10) : 200000ull;
        const double scale = argc > 4 ? std::atof(argv[4]) : 0.05;
        auto gen = makeByName(name, scale);
        if (!gen) {
            std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
            return 1;
        }

        SystemConfig cfg;
        cfg.dramBytes = mib(32);
        cfg.flashBytes = mib(64);
        cfg.seed = 2026;
        if (obsOpts.clients)
            cfg.clients = obsOpts.clients;
        if (obsOpts.channels)
            cfg.flashChannels = obsOpts.channels;
        SystemSimulator sim(cfg);
        if (!loadState.empty() && !sim.loadFlashState(loadState)) {
            std::fprintf(stderr, "cannot load state from %s.{dev,cache}\n",
                         loadState.c_str());
            return 1;
        }
        if (obsOpts.wantTrace())
            sim.enableTracing(obsOpts.traceEvents);
        sim.run(*gen, requests);

        sim.dumpStats(std::cout);
        if (obsOpts.wantStats())
            obs::writeStatsJson(sim.metrics(), obsOpts.statsJson);
        if (obsOpts.wantTrace())
            obs::writeTrace(*sim.tracer(), obsOpts.traceOut);
        if (!saveState.empty()) {
            // Atomic (temp file + rename): an interrupted save leaves
            // any previous snapshot intact for the next --load-state.
            if (!sim.saveFlashState(saveState)) {
                std::fprintf(stderr, "state save to %s.{dev,cache} "
                             "failed\n", saveState.c_str());
                return 1;
            }
            std::printf("flash state saved to %s.{dev,cache}\n",
                        saveState.c_str());
        }
        return 0;
    }

    if (cmd == "gen") {
        if (argc < 5)
            return usage();
        const std::string name = argv[2];
        const auto records = std::strtoull(argv[3], nullptr, 10);
        const double scale = argc > 5 ? std::atof(argv[5]) : 0.05;
        auto gen = makeByName(name, scale);
        if (!gen) {
            std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
            return 1;
        }
        Rng rng(2026);
        const Trace t = gen->generate(rng, records);
        saveTraceCsv(t, argv[4]);
        std::printf("wrote %llu records of %s (x%.3f scale) to %s\n",
                    static_cast<unsigned long long>(records),
                    name.c_str(), scale, argv[4]);
        return 0;
    }

    if (cmd == "summarize") {
        const Trace t = loadTraceCsv(argv[2]);
        const TraceSummary s = summarizeTrace(t);
        std::printf("records        %llu\n",
                    static_cast<unsigned long long>(s.records));
        std::printf("write fraction %.1f%%\n",
                    100.0 * s.writeFraction());
        std::printf("distinct pages %llu (%.1f MB at 2 KB pages)\n",
                    static_cast<unsigned long long>(s.distinctPages),
                    static_cast<double>(s.workingSetBytes()) /
                        (1024 * 1024));
        std::printf("max LBA        %llu\n",
                    static_cast<unsigned long long>(s.maxLba));
        return 0;
    }

    if (cmd == "curve") {
        const Trace t = loadTraceCsv(argv[2]);
        StackDistance sd;
        for (const TraceRecord& r : t) {
            if (!r.isWrite)
                sd.access(r.lba);
        }
        std::printf("%14s %12s\n", "cache (pages)", "miss rate");
        for (std::uint64_t size = 64; size <= sd.distinctPages() * 2;
             size *= 2) {
            std::printf("%14llu %11.1f%%\n",
                        static_cast<unsigned long long>(size),
                        100.0 * sd.missRateAtSize(size));
        }
        return 0;
    }

    return usage();
}
