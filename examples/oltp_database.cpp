/**
 * @file
 * OLTP scenario: a dbt2-style database workload on the flash disk
 * cache, demonstrating why the paper splits the flash into read and
 * write regions (section 3.5) — the same trace runs against a
 * unified cache and a split cache, and the example reports miss
 * rates, garbage-collection effort and flash wear for both.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

class CountingDisk : public BackingStore
{
  public:
    Seconds
    read(Lba) override
    {
        ++reads;
        return milliseconds(4.2);
    }

    Seconds
    write(Lba) override
    {
        ++writes;
        return milliseconds(4.2);
    }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

void
run(bool split)
{
    CellLifetimeModel lifetime;
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(64));
    FlashDevice device(geom, FlashTiming(), lifetime, 4);
    FlashMemoryController controller(device);
    CountingDisk disk;

    FlashCacheConfig cfg;
    cfg.splitRegions = split;
    FlashCache cache(controller, disk, cfg);

    // dbt2 model at 1/8 scale: 256 MB database, 35% writes.
    auto gen = makeMacro(macroConfig("dbt2", 0.125));
    Rng rng(12);
    for (int i = 0; i < 1500000; ++i) {
        const TraceRecord r = gen->next(rng);
        if (r.isWrite)
            cache.write(r.lba);
        else
            cache.read(r.lba);
    }

    const FlashCacheStats& st = cache.stats();
    std::printf("\n[%s]\n", split ? "split read/write regions (90/10)"
                                  : "unified cache");
    std::printf("  read miss rate   %.1f%%\n",
                100.0 * st.fgst.reads.missRate());
    std::printf("  invalid pages    %llu (%.1f%% of capacity)\n",
                static_cast<unsigned long long>(cache.invalidPages()),
                100.0 * static_cast<double>(cache.invalidPages()) /
                    static_cast<double>(cache.capacityPages()));
    std::printf("  GC runs/copies   %llu / %llu\n",
                static_cast<unsigned long long>(st.gcRuns),
                static_cast<unsigned long long>(st.gcPageCopies));
    std::printf("  evictions        %llu (%llu dirty flushes)\n",
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.evictionFlushes));
    std::printf("  wear migrations  %llu\n",
                static_cast<unsigned long long>(st.wearMigrations));
    std::printf("  disk traffic     %llu reads, %llu writes\n",
                static_cast<unsigned long long>(disk.reads),
                static_cast<unsigned long long>(disk.writes));

    // Erase spread across blocks: wear-leveling keeps it tight.
    std::uint32_t max_erase = 0;
    std::uint64_t total_erase = 0;
    for (std::uint32_t b = 0; b < geom.numBlocks; ++b) {
        max_erase = std::max(max_erase, device.blockEraseCount(b));
        total_erase += device.blockEraseCount(b);
    }
    const double mean = static_cast<double>(total_erase) /
        geom.numBlocks;
    std::printf("  erase counts     mean %.1f, max %u (max/mean %.2f)\n",
                mean, max_erase, mean > 0 ? max_erase / mean : 0.0);
}

} // namespace

int
main()
{
    std::printf("dbt2-style OLTP trace through a 64 MB flash disk "
                "cache (database: 256 MB).\n");
    run(false);
    run(true);
    std::printf("\nThe split design keeps out-of-place write churn out "
                "of the read region: a much lower\nread miss rate and "
                "less disk traffic for the same trace (Figure 4's "
                "comparison).\n");
    return 0;
}
