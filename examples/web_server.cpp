/**
 * @file
 * Web-server scenario (the paper's introduction motivates exactly
 * this): a SPECWeb99-style read-mostly server, comparing a DRAM-only
 * memory configuration with an equal-die-area DRAM + flash disk
 * cache configuration — power breakdown, delivered bandwidth, and
 * where the accesses were served from.
 */

#include <cstdio>

#include "sim/system_sim.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

void
runConfig(const char* label, std::uint64_t dram_bytes,
          std::uint64_t flash_bytes)
{
    SystemConfig cfg;
    cfg.dramBytes = dram_bytes;
    cfg.flashBytes = flash_bytes;
    cfg.computeTime = microseconds(500); // request parsing + send
    cfg.seed = 99;
    // Scale the DRAM device size with the 1/8 workload scale so the
    // DIMM-count ratio matches a full-size deployment.
    cfg.dramSpec.deviceBytes = mib(16);

    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("SPECWeb99", 0.125));
    sim.run(*gen, 2000000);

    const PowerReport p = sim.powerReport();
    std::printf("\n[%s]\n", label);
    std::printf("  requests/s        %.0f\n", sim.stats().throughput());
    std::printf("  PDC hit rate      %.1f%%\n",
                100.0 * sim.stats().pdcReads.hitRate());
    if (const FlashCache* fc = sim.flashCache()) {
        std::printf("  flash hit rate    %.1f%% "
                    "(of the reads below the PDC)\n",
                    100.0 * fc->stats().fgst.reads.hitRate());
    }
    std::printf("  disk accesses     %llu\n",
                static_cast<unsigned long long>(sim.disk().accesses()));
    std::printf("  power             %s\n", p.toString().c_str());
}

} // namespace

int
main()
{
    std::printf("SPECWeb99-style server, 1/8-scale fileset "
                "(230 MB).\n");
    std::printf("Configurations mirror Figure 9(b): 512 MB DRAM-only "
                "vs 128 MB DRAM + 2 GB flash\n(scaled to 64 MB vs "
                "16 MB + 256 MB).\n");

    runConfig("DRAM only", mib(64), 0);
    runConfig("DRAM + flash disk cache", mib(16), mib(256));

    std::printf("\nThe flash configuration quarters memory idle power "
                "and halves disk traffic while\nmore than doubling "
                "delivered bandwidth (Figure 9(b)'s comparison).\n");
    return 0;
}
