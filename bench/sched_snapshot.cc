/**
 * @file
 * Event-scheduler scaling snapshot (part of the bench_snapshot CMake
 * target). Drives a deliberately storage-bound configuration — tiny
 * compute time, small PDC, large flash cache — through the closed
 * loop while sweeping the flash channel count, and records the
 * virtual wall clock, throughput, per-group utilization and p99
 * sojourn per point. The functional request stream is identical
 * across points (channels only change the demand replay), so the
 * speedups isolate the scheduler's channel overlap.
 *
 * Writes BENCH_sched.json; the headline number is the channels=4 vs
 * channels=1 throughput ratio, expected >= 2x while flash-bound.
 *
 * Usage: sched_snapshot [output.json]   (default: BENCH_sched.json)
 */

#include <cstdio>
#include <vector>

#include "sched/scheduler.hh"
#include "sim/system_sim.hh"
#include "workload/synthetic.hh"

using namespace flashcache;

namespace {

struct Point
{
    unsigned channels = 0;
    unsigned clients = 0;
    double wall = 0;
    double analytic = 0;
    double throughput = 0;
    double flashUtil = 0;
    double diskUtil = 0;
    double flashP99 = 0;
    std::uint64_t maxFlashQueue = 0;
};

Point
runPoint(unsigned channels, unsigned clients, std::uint64_t requests)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(8);   // small PDC: most reads fall through
    cfg.flashBytes = mib(128); // ample headroom: no region churn
    cfg.computeTime = microseconds(5); // storage-bound on purpose
    cfg.clients = clients;
    cfg.flashChannels = channels;
    cfg.seed = 99;
    SystemSimulator sim(cfg);
    // Uniform popularity over a ~32 MB footprint that fits in flash
    // but not in the PDC: after the warm-up pass touches every page
    // the compulsory disk fills are done, reads stream from flash,
    // and the steady state is flash-bound — which is what the
    // channel sweep should expose. (A Zipf workload would keep a
    // cold first-touch tail trickling 4 ms disk fills forever.)
    SyntheticConfig wl;
    wl.name = "sched-uniform";
    wl.shape = TailShape::Uniform;
    wl.workingSetPages = 12000; // +1/4 write range = ~30 MB
    wl.writeFraction = 0.02; // read-mostly: no write-back churn
    auto gen = makeSynthetic(wl);
    sim.run(*gen, requests / 2); // warm: populate PDC + flash cache
    const Seconds warmWall = sim.stats().wallClock;
    const std::uint64_t warmReqs = sim.stats().requests;
    sim.run(*gen, requests); // measured steady-state phase

    const sched::ClosedLoop& sch = sim.scheduler();
    Point p;
    p.channels = channels;
    p.clients = clients;
    p.wall = sim.stats().wallClock - warmWall;
    p.analytic = sim.analyticWallClock();
    p.throughput =
        static_cast<double>(sim.stats().requests - warmReqs) / p.wall;
    p.flashUtil = sch.utilization(sched::Group::Flash);
    p.diskUtil = sch.utilization(sched::Group::Disk);
    p.flashP99 = sch.sojournPercentile(sched::Group::Flash, 99.0);
    p.maxFlashQueue = sch.maxQueueDepth(sched::Group::Flash);
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    const char* out_path = argc > 1 ? argv[1] : "BENCH_sched.json";
    constexpr std::uint64_t kRequests = 300000;
    constexpr unsigned kClients = 16;

    std::printf("=== Scheduler channel scaling (uniform synthetic, storage-bound, "
                "%u clients) ===\n\n", kClients);
    std::printf("%9s %12s %12s %12s %10s %10s %12s\n", "channels",
                "wall (s)", "req/s", "speedup", "flash u", "disk u",
                "flash p99");

    const unsigned sweep[] = {1, 2, 4, 8};
    std::vector<Point> points;
    for (const unsigned ch : sweep)
        points.push_back(runPoint(ch, kClients, kRequests));

    const double base = points.front().throughput;
    for (const Point& p : points) {
        std::printf("%9u %12.3f %12.0f %11.2fx %9.1f%% %9.1f%% %10.1fus\n",
                    p.channels, p.wall, p.throughput,
                    p.throughput / base, 100.0 * p.flashUtil,
                    100.0 * p.diskUtil, 1e6 * p.flashP99);
    }

    const double speedup4 = points[2].throughput / base;
    std::printf("\nchannels=4 speedup over channels=1: %.2fx "
                "(flash-bound target >= 2x)\n", speedup4);

    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"flashcache-bench-sched-v1\",\n");
    std::fprintf(f, "  \"clients\": %u,\n  \"requests\": %llu,\n",
                 kClients, static_cast<unsigned long long>(kRequests));
    std::fprintf(f, "  \"points\": {\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        std::fprintf(f,
            "    \"c%u\": {\"channels\": %u, \"wall_s\": %.6f, "
            "\"analytic_wall_s\": %.6f, \"throughput\": %.0f, "
            "\"flash_utilization\": %.4f, \"disk_utilization\": %.4f, "
            "\"flash_sojourn_p99_s\": %.9f, \"flash_max_queue\": %llu}%s\n",
            p.channels, p.channels, p.wall, p.analytic, p.throughput,
            p.flashUtil, p.diskUtil, p.flashP99,
            static_cast<unsigned long long>(p.maxFlashQueue),
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"speedup_4ch_vs_1ch\": %.4f\n}\n", speedup4);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
    return 0;
}
