/**
 * @file
 * Figure 4: flash disk cache miss rate, unified vs split read/write
 * regions, executing the dbt2 (OLTP) trace model across flash sizes.
 *
 * The paper's dbt2 "disk trace" is the access stream below the OS
 * page cache, so the generator here runs through a DRAM primary disk
 * cache first (the full system simulator) and the flash tier sees
 * only PDC misses and write-backs — hot-head-stripped traffic, like
 * the original trace. The paper sweeps 128-640 MB of flash against
 * a 2 GB database with 256 MB of DRAM; everything is scaled by 1/8
 * (16-80 MB flash, 256 MB database, 16 MB DRAM) so each point
 * reaches steady state in seconds.
 */

#include <cstdio>

#include "sim/system_sim.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

double
missRate(bool split, std::uint64_t flash_bytes)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(16);
    cfg.flashBytes = flash_bytes;
    cfg.flashConfig.splitRegions = split;
    cfg.seed = 5;
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("dbt2", 0.125));
    sim.run(*gen, 3000000);
    return sim.flashCache()->stats().fgst.reads.missRate();
}

} // namespace

int
main()
{
    std::printf("=== Figure 4: miss rate, unified vs split flash disk "
                "cache (dbt2 model, 1/8 scale) ===\n\n");
    std::printf("%12s %14s %14s %14s\n", "flash size", "RW unified",
                "RW separate", "paper size");
    for (const unsigned mb : {16u, 32u, 48u, 64u, 80u}) {
        const double unified = missRate(false, mib(mb));
        const double split = missRate(true, mib(mb));
        std::printf("%9u MB %13.1f%% %13.1f%% %11u MB\n", mb,
                    unified * 100.0, split * 100.0, mb * 8);
    }
    std::printf("\nExpected shape: the split cache's miss rate is lower "
                "and the gap grows with cache size\n(paper Figure 4: "
                "~50%% down to ~10-20%% over 128-640 MB).\n");
    return 0;
}
