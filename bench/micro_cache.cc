/**
 * @file
 * google-benchmark microbenchmarks for the cache core: the FCHT
 * bucket sweep behind the section 3.1 claim that ~100 indexable
 * entries reach peak throughput, plus the hot read path and the
 * stack-distance analyzer.
 */

#include <benchmark/benchmark.h>

#include "core/flash_cache.hh"
#include "core/lru.hh"
#include "core/tables.hh"
#include "util/rng.hh"
#include "workload/stack_distance.hh"

using namespace flashcache;

namespace {

void
BM_FchtLookup(benchmark::State& state)
{
    // Section 3.1: sweep the number of indexable hash entries; probe
    // cost flattens once chains are short (~100 entries suffice for
    // peak system throughput in the paper).
    const auto buckets = static_cast<std::size_t>(state.range(0));
    Fcht t(buckets);
    Rng rng(1);
    const int entries = 65536;
    for (Lba l = 0; l < entries; ++l)
        t.insert(l, l);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(i % entries));
        i += 7919;
    }
    state.counters["avg_probe"] = t.avgProbeLength();
}
BENCHMARK(BM_FchtLookup)->Arg(16)->Arg(128)->Arg(1024)->Arg(16384);

void
BM_FchtChainedLookup(benchmark::State& state)
{
    // The retained seed implementation, for a probe-length and
    // lookup-cost comparison against the open-addressed table above
    // at the same indexable-entry counts.
    const auto buckets = static_cast<std::size_t>(state.range(0));
    FchtChained t(buckets);
    const int entries = 65536;
    for (Lba l = 0; l < entries; ++l)
        t.insert(l, l);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(i % entries));
        i += 7919;
    }
    state.counters["avg_probe"] = t.avgProbeLength();
}
BENCHMARK(BM_FchtChainedLookup)->Arg(16)->Arg(128)->Arg(1024)->Arg(16384);

void
BM_LruListTouch(benchmark::State& state)
{
    // Seed LRU: hash lookup plus std::list splice per touch.
    LruList<std::uint32_t> lru;
    const std::uint32_t n = 1024;
    for (std::uint32_t i = 0; i < n; ++i)
        lru.touch(i);
    std::uint64_t i = 0;
    for (auto _ : state) {
        lru.touch(static_cast<std::uint32_t>(i % n));
        i += 7919;
    }
}
BENCHMARK(BM_LruListTouch);

void
BM_IntrusiveLruTouch(benchmark::State& state)
{
    // Dense-id intrusive LRU (Region::lruBlocks): no hashing, no
    // heap nodes — two loads and four stores per touch.
    IntrusiveLru lru(1024);
    const std::uint32_t n = 1024;
    for (std::uint32_t i = 0; i < n; ++i)
        lru.touch(i);
    std::uint64_t i = 0;
    for (auto _ : state) {
        lru.touch(static_cast<std::uint32_t>(i % n));
        i += 7919;
    }
}
BENCHMARK(BM_IntrusiveLruTouch);

void
BM_KeyedLruTouch(benchmark::State& state)
{
    // Sparse-key LRU (the PDC lists): one open-addressed probe to a
    // slot, then intrusive relinking.
    KeyedLru<Lba> lru;
    const std::uint32_t n = 1024;
    lru.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        lru.touch(1 + i * 0x9E3779B97ull);
    std::uint64_t i = 0;
    for (auto _ : state) {
        lru.touch(1 + (i % n) * 0x9E3779B97ull);
        i += 7919;
    }
}
BENCHMARK(BM_KeyedLruTouch);

struct NullStore : BackingStore
{
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

void
BM_FlashCacheReadHit(benchmark::State& state)
{
    FlashGeometry geom;
    geom.numBlocks = 64;
    geom.framesPerBlock = 16;
    CellLifetimeModel lifetime;
    FlashDevice device(geom, FlashTiming(), lifetime, 5);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCache cache(ctrl, store);
    for (Lba l = 0; l < 512; ++l)
        cache.read(l);
    Lba l = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.read(l % 512));
        ++l;
    }
}
BENCHMARK(BM_FlashCacheReadHit);

void
BM_FlashCacheWriteChurn(benchmark::State& state)
{
    // Out-of-place writes with steady GC pressure.
    FlashGeometry geom;
    geom.numBlocks = 32;
    geom.framesPerBlock = 16;
    CellLifetimeModel lifetime;
    FlashDevice device(geom, FlashTiming(), lifetime, 6);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCache cache(ctrl, store);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.write(rng.uniformInt(64)));
}
BENCHMARK(BM_FlashCacheWriteChurn);

void
BM_StackDistanceAccess(benchmark::State& state)
{
    Rng rng(8);
    StackDistance sd;
    for (auto _ : state)
        sd.access(rng.uniformInt(100000));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StackDistanceAccess);

} // namespace

BENCHMARK_MAIN();
