/**
 * @file
 * Table 2: performance and power for DRAM, SLC/MLC NAND and HDD —
 * printed from the device models, with the disk's mean access
 * latency measured from the model rather than restated.
 */

#include <cstdio>

#include "devices/disk.hh"
#include "devices/dram.hh"
#include "flash/flash_spec.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace flashcache;

int
main()
{
    const FlashTiming ft;
    const DramSpec ds;
    const DiskSpec hd;

    std::printf("=== Table 2: device latency and power (model values) "
                "===\n\n");
    std::printf("%-18s %12s %12s %12s %12s %12s\n", "device", "active",
                "idle", "read", "write", "erase");
    std::printf("%-18s %9.0f mW %9.0f mW %9.0f ns %9.0f ns %12s\n",
                "1Gb DDR2 DRAM", ds.activePower * 1e3,
                ds.idleActivePower * 1e3, ds.rowCycle * 1e9,
                ds.rowCycle * 1e9, "N/A");
    std::printf("%-18s %9.0f mW %9.1f uW %9.0f us %9.0f us %9.1f ms\n",
                "1Gb NAND-SLC", ft.activePower * 1e3,
                ft.idlePower * 1e6, ft.slcReadLatency * 1e6,
                ft.slcWriteLatency * 1e6, ft.slcEraseLatency * 1e3);
    std::printf("%-18s %12s %12s %9.0f us %9.0f us %9.1f ms\n",
                "4Gb NAND-MLC", "(as SLC)", "(as SLC)",
                ft.mlcReadLatency * 1e6, ft.mlcWriteLatency * 1e6,
                ft.mlcEraseLatency * 1e3);
    std::printf("%-18s %9.1f W  %9.2f W  %9s %12s %12s\n",
                "HDD (Barracuda)", hd.barracudaActivePower,
                hd.barracudaIdlePower, "8.5ms*", "9.5ms*", "N/A");
    std::printf("%-18s %9.1f W  %9.2f W\n",
                "HDD (laptop, 6.1)", hd.activePower, hd.idlePower);

    // Measure the simulated disk's random access latency.
    DiskModel disk(hd, 7);
    Rng rng(7);
    RunningStat lat;
    for (int i = 0; i < 50000; ++i)
        lat.add(disk.access(rng.next(), false));
    std::printf("\nMeasured disk model: mean random access %.2f ms "
                "(Table 3 configures 4.2 ms)\n", lat.mean() * 1e3);

    DramModel dram(mib(512));
    std::printf("Measured DRAM model: 2KB page access %.0f ns, "
                "512MB = %u devices\n",
                dram.read(2048) * 1e9, dram.deviceCount());
    std::printf("* Table 2 quotes datasheet seek figures; the simulator "
                "uses the Table 3 average.\n");
    return 0;
}
