/**
 * @file
 * Figure 12: normalized flash lifetime — accesses sustained until
 * the point of total flash failure — for the programmable flash
 * memory controller versus a fixed BCH-1 error-correcting
 * controller, across nine Table 4 workloads.
 *
 * Endurance is accelerated (nominal cycles scaled from 1e5 down to
 * ~40) so both controllers reach end of life in seconds; the
 * comparison is a ratio of access counts, which the scaling leaves
 * intact. The paper reports a ~20x average lifetime extension.
 */

#include <cmath>
#include <cstdio>

#include "core/flash_cache.hh"
#include "workload/macro.hh"
#include "workload/synthetic.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

std::uint64_t
accessesToFailure(WorkloadGenerator& gen, bool programmable,
                  std::uint64_t cap)
{
    // Small flash + accelerated wear: end of life within seconds.
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(4));
    WearParams wear;
    wear.nominalCycles = 40;
    wear.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wear);

    FlashDevice device(geom, FlashTiming(), lifetime, 37);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.adaptiveReconfig = programmable;
    cfg.hotPageMigration = programmable;
    cfg.agingWindow = 1 << 14;
    if (!programmable) {
        cfg.initialEccStrength = 1;
        cfg.maxEccStrength = 1; // the BCH-1 baseline controller
    }
    FlashCache cache(ctrl, store, cfg);

    Rng rng(41);
    std::uint64_t n = 0;
    while (n < cap && !cache.failed()) {
        const TraceRecord r = gen.next(rng);
        if (r.isWrite)
            cache.write(r.lba);
        else
            cache.read(r.lba);
        ++n;
    }
    return n;
}

} // namespace

int
main()
{
    std::printf("=== Figure 12: normalized lifetime, programmable "
                "controller vs BCH-1 (accelerated wear) ===\n\n");
    std::printf("%-12s %14s %14s %14s %12s\n", "workload",
                "programmable", "BCH-1 fixed", "norm. BCH-1",
                "extension");

    const std::uint64_t cap = 30000000;
    double geo_sum = 0.0;
    int count = 0;

    auto evaluate = [&](const char* name,
                        std::unique_ptr<WorkloadGenerator> make_a,
                        std::unique_ptr<WorkloadGenerator> make_b) {
        const std::uint64_t prog = accessesToFailure(*make_a, true, cap);
        const std::uint64_t fixed = accessesToFailure(*make_b, false,
                                                      cap);
        const double ratio = static_cast<double>(prog) /
            static_cast<double>(std::max<std::uint64_t>(fixed, 1));
        std::printf("%-12s %14llu %14llu %14.5f %11.1fx\n", name,
                    static_cast<unsigned long long>(prog),
                    static_cast<unsigned long long>(fixed),
                    1.0 / ratio, ratio);
        geo_sum += std::log(ratio);
        ++count;
    };

    // Working sets sized at twice the flash (steady churn), per the
    // lifetime experiment's intent of a fixed access rate.
    const double micro_scale = 4096.0 / 262144.0;
    for (const auto& cfg : table4MicroConfigs(micro_scale)) {
        if (cfg.name == "exp2")
            continue; // the paper's Figure 12 lists nine workloads
        evaluate(cfg.name.c_str(), makeSynthetic(cfg),
                 makeSynthetic(cfg));
    }
    for (const char* name : {"WebSearch1", "WebSearch2", "Financial1",
                             "Financial2"}) {
        const MacroConfig base = macroConfig(name, 1.0);
        const double scale = 4096.0 * 2048.0 /
            (static_cast<double>(base.readPages) * 2048.0);
        evaluate(name, makeMacro(macroConfig(name, scale)),
                 makeMacro(macroConfig(name, scale)));
    }

    std::printf("\nGeometric-mean lifetime extension: %.1fx "
                "(paper: ~20x on average)\n",
                std::exp(geo_sum / count));
    return 0;
}
