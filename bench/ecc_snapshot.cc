/**
 * @file
 * Perf-trajectory snapshot for the ECC hot path (the bench_snapshot
 * CMake target). Times the word-parallel BCH encode / decode-clean /
 * decode-with-t-errors paths and both CRC32 implementations, plus
 * the retained bit-serial references, and writes BENCH_ecc.json
 * (MB/s per op and speedup ratios vs the seed implementation) so
 * future PRs have a recorded baseline to compare against.
 *
 * Usage: ecc_snapshot [output.json]   (default: BENCH_ecc.json)
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/crc32.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

constexpr std::size_t kPageBytes = 2048;

/**
 * Time one operation: warm up, then run repetitions until at least
 * min_ms of wall time accumulates. Returns microseconds per call.
 */
double
timeOp(const std::function<void()>& op, double min_ms = 150.0)
{
    using clock = std::chrono::steady_clock;
    op();
    op(); // warm-up: tables, caches, branch predictors
    double total_us = 0.0;
    std::uint64_t calls = 0;
    while (total_us < min_ms * 1000.0) {
        const auto start = clock::now();
        // Batch a few calls per clock read to keep timer overhead
        // negligible for sub-microsecond ops.
        for (int i = 0; i < 8; ++i)
            op();
        const auto stop = clock::now();
        total_us += std::chrono::duration<double, std::micro>(
            stop - start).count();
        calls += 8;
    }
    return total_us / static_cast<double>(calls);
}

double
mbps(double us_per_page)
{
    return static_cast<double>(kPageBytes) / us_per_page; // B/us == MB/s
}

struct OpResult
{
    std::string name;
    double usPerOp;
    double mbPerS;
};

std::vector<std::uint8_t>
randomPage(unsigned seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> page(kPageBytes);
    for (auto& b : page)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return page;
}

} // namespace

int
main(int argc, char** argv)
{
    const char* out_path = argc > 1 ? argv[1] : "BENCH_ecc.json";
    std::vector<OpResult> ops;
    auto record = [&](const std::string& name, double us) {
        ops.push_back({name, us, mbps(us)});
        std::printf("%-28s %10.2f us/page %10.1f MB/s\n", name.c_str(),
                    us, mbps(us));
        return us;
    };

    // ---- CRC32 ----
    const auto page = randomPage(11);
    std::uint32_t sink = 0;
    const double crc_fast = record("crc32_slice8", timeOp([&] {
        sink ^= crc32(page.data(), page.size());
    }));
    const double crc_ref = record("crc32_bytewise", timeOp([&] {
        sink ^= crc32Bytewise(page.data(), page.size());
    }));

    // ---- BCH encode / decode across controller strengths ----
    struct Ratio
    {
        std::string name;
        double value;
    };
    std::vector<Ratio> ratios;
    ratios.push_back({"crc32", crc_ref / crc_fast});

    double enc_t12 = 0, enc_ref_t12 = 0;
    for (const unsigned t : {1u, 4u, 8u, 12u}) {
        BchCode code(15, t, kPageBytes * 8);
        auto data = randomPage(12);
        std::vector<std::uint8_t> parity(code.parityBytes());

        char name[64];
        std::snprintf(name, sizeof(name), "bch_encode_t%u", t);
        const double enc = record(name, timeOp([&] {
            code.encode(data.data(), parity.data());
        }));
        if (t == 12)
            enc_t12 = enc;

        std::snprintf(name, sizeof(name), "bch_decode_clean_t%u", t);
        code.encode(data.data(), parity.data());
        record(name, timeOp([&] {
            (void)code.decode(data.data(), parity.data());
        }));

        // t errors: a successful decode restores the buffers, so the
        // same corruption can be re-applied every call.
        std::snprintf(name, sizeof(name), "bch_decode_terr_t%u", t);
        record(name, timeOp([&] {
            for (unsigned e = 0; e < t; ++e)
                data[37 + 131 * e] ^= 2;
            (void)code.decode(data.data(), parity.data());
        }));
    }

    // ---- seed (bit-serial) references, for the speedup record ----
    {
        BchCode code(15, 12, kPageBytes * 8);
        auto data = randomPage(12);
        std::vector<std::uint8_t> parity(code.parityBytes());
        enc_ref_t12 = record("bch_encode_ref_t12", timeOp([&] {
            code.encodeReference(data.data(), parity.data());
        }, 300.0));
        ratios.push_back({"bch_encode_t12", enc_ref_t12 / enc_t12});

        code.encode(data.data(), parity.data());
        const double dec_ref = record("bch_decode_ref_clean_t12",
                                      timeOp([&] {
            (void)code.decodeReference(data.data(), parity.data());
        }, 300.0));
        BchCode code4(15, 4, kPageBytes * 8);
        std::vector<std::uint8_t> parity4(code4.parityBytes());
        code4.encode(data.data(), parity4.data());
        const double dec4 = timeOp([&] {
            (void)code4.decode(data.data(), parity4.data());
        });
        const double dec12 = timeOp([&] {
            (void)code.decode(data.data(), parity.data());
        });
        ratios.push_back({"bch_decode_clean_t12", dec_ref / dec12});
        (void)dec4;
    }

    if (sink == 0xDEADBEEF)
        std::printf("(unlikely)\n");

    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"flashcache-bench-ecc-v1\",\n");
    std::fprintf(f, "  \"page_bytes\": %zu,\n", kPageBytes);
    std::fprintf(f, "  \"ops\": {\n");
    for (std::size_t i = 0; i < ops.size(); ++i) {
        std::fprintf(f,
            "    \"%s\": {\"us_per_page\": %.3f, \"mb_per_s\": %.1f}%s\n",
            ops[i].name.c_str(), ops[i].usPerOp, ops[i].mbPerS,
            i + 1 < ops.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"speedup_vs_seed\": {\n");
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        std::fprintf(f, "    \"%s\": %.2f%s\n", ratios[i].name.c_str(),
                     ratios[i].value, i + 1 < ratios.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
