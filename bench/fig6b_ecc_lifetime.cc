/**
 * @file
 * Figure 6(b): maximum tolerable write/erase cycles versus BCH code
 * strength, for page-to-page spatial variation of 0, 5, 10 and 20%
 * of the mean — from the analytic wear-out model of section 4.1.3.
 */

#include <cstdio>

#include "reliability/wear_model.hh"

using namespace flashcache;

int
main()
{
    const CellLifetimeModel model;
    const unsigned page_bits = (2048 + 64) * 8;
    const double sweeps[] = {0.0, 0.05, 0.10, 0.20};

    std::printf("=== Figure 6(b): max tolerable W/E cycles vs code "
                "strength ===\n\n");
    std::printf("%4s", "t");
    for (const double s : sweeps)
        std::printf("   stdev=%2.0f%%", s * 100.0);
    std::printf("\n");

    for (unsigned t = 0; t <= 10; ++t) {
        std::printf("%4u", t);
        for (const double s : sweeps) {
            std::printf("  %10.3g",
                        model.maxTolerableCycles(t, page_bits, s));
        }
        std::printf("\n");
    }

    const double base = model.maxTolerableCycles(1, page_bits, 0.0);
    const double top = model.maxTolerableCycles(10, page_bits, 0.0);
    std::printf("\nExpected shape: ~1e5 cycles at t=1 (the datasheet "
                "anchor), rising to millions by t=10\nwith diminishing "
                "returns; spatial variation pushes every curve down.\n");
    std::printf("Measured: t=1 -> %.2g, t=10 -> %.2g (gain %.0fx)\n",
                base, top, top / base);
    return 0;
}
