/**
 * @file
 * Figure 11: breakdown of page reconfiguration events — increase
 * ECC strength vs switch MLC->SLC — across the ten Table 4
 * workloads, measured near the point where flash cells start to
 * fail, with the flash sized at half the workload's working set.
 *
 * Endurance is accelerated (documented below) so cells start
 * failing within a bench-sized run; the decision heuristics only
 * see relative frequencies and latencies, so the breakdown is
 * unaffected by the acceleration.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "workload/macro.hh"
#include "workload/synthetic.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

struct Breakdown
{
    std::uint64_t ecc = 0;
    std::uint64_t density = 0;
};

Breakdown
run(WorkloadGenerator& gen)
{
    // Flash = half the working set (the paper's setup).
    const std::uint64_t flash_bytes = gen.workingSetPages() * 2048 / 2;
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(flash_bytes);

    // Accelerated endurance: cells start failing after ~100 erases
    // instead of ~100k, compressing "near end of life" into seconds.
    WearParams wear;
    wear.nominalCycles = 100;
    wear.sigmaDecades = 1.0;
    CellLifetimeModel lifetime(wear);

    FlashDevice device(geom, FlashTiming(), lifetime, 29);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.hotPageMigration = false; // isolate the fault-driven policy
    cfg.agingWindow = 1 << 14;
    // Aggressive global wear-leveling (section 3.5: "wear-leveling
    // is applied globally to all regions"): worn blocks rotate into
    // the read path, so read-hot pages see faults too.
    cfg.wearThreshold = 16.0;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(23);
    // Stop once enough policy decisions accumulated: the paper
    // measures "near the point where the Flash cells start to fail",
    // before the end-of-life uncorrectable storm.
    const std::uint64_t ops = 1500000;
    const std::uint64_t enough = 4000;
    for (std::uint64_t i = 0; i < ops && !cache.failed(); ++i) {
        const TraceRecord r = gen.next(rng);
        if (r.isWrite)
            cache.write(r.lba);
        else
            cache.read(r.lba);
        if (cache.stats().policyEccChoices +
                cache.stats().policyDensityChoices >= enough) {
            break;
        }
    }
    return {cache.stats().policyEccChoices,
            cache.stats().policyDensityChoices};
}

void
report(const char* name, WorkloadGenerator& gen)
{
    const Breakdown b = run(gen);
    const double total = static_cast<double>(b.ecc + b.density);
    if (total == 0) {
        std::printf("%-12s %10s (no reconfiguration events)\n", name,
                    "-");
        return;
    }
    std::printf("%-12s %9.1f%% %9.1f%% %12llu\n", name,
                100.0 * b.ecc / total, 100.0 * b.density / total,
                static_cast<unsigned long long>(b.ecc + b.density));
}

} // namespace

int
main()
{
    std::printf("=== Figure 11: breakdown of page reconfiguration "
                "events (flash = 1/2 working set) ===\n\n");
    std::printf("%-12s %10s %10s %12s\n", "workload", "code str.",
                "density", "events");

    // Micro benchmarks at a bench-sized footprint (x1/16).
    for (const auto& cfg : table4MicroConfigs(1.0 / 16.0)) {
        auto gen = makeSynthetic(cfg);
        report(cfg.name.c_str(), *gen);
    }

    // Macro models, each scaled to a ~32 MB working set.
    for (const char* name : {"WebSearch1", "WebSearch2", "Financial1",
                             "Financial2"}) {
        const MacroConfig base = macroConfig(name, 1.0);
        const double scale = 16384.0 * 2048.0 /
            (static_cast<double>(base.readPages) * 2048.0);
        auto gen = makeMacro(macroConfig(name, scale));
        report(name, *gen);
    }

    std::printf("\nExpected shape: long-tailed workloads (uniform, low "
                "alpha) are dominated by ECC-strength\nupdates — "
                "capacity is precious and pages are cold; short-tailed "
                "ones (exp1/exp2) flip toward\ndensity (MLC->SLC) "
                "because hot pages profit from SLC latency and the "
                "miss cost of lost\ncapacity is negligible. Macro "
                "workloads land in between with high variance.\n");
    return 0;
}
