/**
 * @file
 * Ablation: the GC victim-quality threshold (`gcMinInvalidFraction`).
 *
 * A disk cache may evict what a storage log must copy. Low
 * thresholds behave like an FTL (always relocate: high copy traffic,
 * maximal occupancy); high thresholds evict cold-valid blocks
 * through flushes instead. This sweep exposes the trade-off the
 * default (0.25) balances.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "obs/cli.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

/** Exporter flags; the last sweep point feeds the snapshots. */
obs::CliOptions obsOpts;

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

void
run(double threshold, bool last)
{
    CellLifetimeModel lifetime;
    FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(32));
    if (obsOpts.channels)
        geom.numChannels = obsOpts.channels;
    FlashDevice device(geom, FlashTiming(), lifetime, 9);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.gcMinInvalidFraction = threshold;
    FlashCache cache(ctrl, store, cfg);

    obs::Tracer tracer(obsOpts.traceEvents);
    if (obsOpts.wantTrace())
        cache.setTracer(&tracer);

    auto gen = makeMacro(macroConfig("dbt2", 0.125));
    Rng rng(31);
    for (int i = 0; i < 600000; ++i) {
        const TraceRecord r = gen->next(rng);
        if (r.isWrite)
            cache.write(r.lba);
        else
            cache.read(r.lba);
    }

    const FlashCacheStats& st = cache.stats();
    std::printf("%10.2f %12.1f%% %14llu %14llu %12.1f%%\n", threshold,
                100.0 * st.fgst.reads.missRate(),
                static_cast<unsigned long long>(st.gcPageCopies),
                static_cast<unsigned long long>(st.evictionFlushes),
                100.0 * cache.occupancy());

    if (last) {
        if (obsOpts.wantStats()) {
            obs::MetricRegistry reg;
            device.registerMetrics(reg);
            cache.registerMetrics(reg);
            ctrl.registerMetrics(reg);
            obs::writeStatsJson(reg, obsOpts.statsJson);
        }
        if (obsOpts.wantTrace())
            obs::writeTrace(tracer, obsOpts.traceOut);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    obsOpts = obs::CliOptions::parse(argc, argv);
    std::printf("=== Ablation: GC victim threshold (dbt2 model, 32 MB "
                "flash) ===\n\n");
    std::printf("%10s %13s %14s %14s %13s\n", "threshold", "read miss",
                "GC copies", "evict flushes", "occupancy");
    const double sweep[] = {0.0, 0.10, 0.25, 0.50, 0.90};
    for (const double t : sweep)
        run(t, t == sweep[4]);
    std::printf("\nThreshold 0 = storage-log behaviour (copy "
                "everything, never evict); 0.9 = evict-mostly.\nThe "
                "default 0.25 keeps copies bounded without giving up "
                "occupancy.\n");
    return 0;
}
