/**
 * @file
 * Table 3: the simulated system configuration, printed from the
 * defaults the benches actually run with.
 */

#include <cstdio>

#include "sim/system_sim.hh"

using namespace flashcache;

int
main()
{
    const SystemConfig cfg;
    const FlashTiming& ft = cfg.flashTiming;
    const EccTimingModel ecc;

    std::printf("=== Table 3: configuration parameters ===\n\n");
    std::printf("%-22s 8 cores, single issue in-order (closed-loop "
                "streams)\n", "Processor type");
    std::printf("%-22s %u concurrent request streams, %.0f us mean "
                "compute\n", "Request model", cfg.cores,
                cfg.computeTime * 1e6);
    std::printf("%-22s 128-512 MB (1-4 DIMMs), tRC = %.0f ns\n", "DRAM",
                cfg.dramSpec.rowCycle * 1e9);
    std::printf("%-22s 256 MB - 2 GB\n", "NAND Flash");
    std::printf("%-22s read %.0f us (SLC) / %.0f us (MLC)\n", "",
                ft.slcReadLatency * 1e6, ft.mlcReadLatency * 1e6);
    std::printf("%-22s write %.0f us (SLC) / %.0f us (MLC)\n", "",
                ft.slcWriteLatency * 1e6, ft.mlcWriteLatency * 1e6);
    std::printf("%-22s erase %.1f ms (SLC) / %.1f ms (MLC)\n", "",
                ft.slcEraseLatency * 1e3, ft.mlcEraseLatency * 1e3);
    std::printf("%-22s %.0f us (t=2) to %.0f us (t=12)\n",
                "BCH code latency", ecc.decodeLatency(2).total() * 1e6,
                ecc.decodeLatency(12).total() * 1e6);
    std::printf("%-22s average access latency %.1f ms\n", "IDE disk",
                cfg.diskSpec.avgAccessLatency * 1e3);
    std::printf("\nFlash cache policy defaults: split %d "
                "(read fraction %.2f), ECC t0=%u max=%u, wear k1=%.0f "
                "k2=%.0f threshold=%.0f\n",
                cfg.flashConfig.splitRegions,
                cfg.flashConfig.readRegionFraction,
                cfg.flashConfig.initialEccStrength,
                cfg.flashConfig.maxEccStrength, cfg.flashConfig.wearK1,
                cfg.flashConfig.wearK2, cfg.flashConfig.wearThreshold);
    return 0;
}
