/**
 * @file
 * google-benchmark microbenchmarks for the ECC substrate: GF
 * arithmetic, CRC32, and the real BCH encode/decode paths the
 * section 4.1.1 software-vs-accelerator argument rests on.
 *
 * Each hot-path benchmark reports bytes/second over the 2 KB page so
 * runs are comparable across machines, and the retained bit-serial
 * reference implementations are benchmarked alongside the
 * word-parallel paths to keep the speedup measurable in one run
 * (see also the bench_snapshot target, which records the ratios in
 * BENCH_ecc.json).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "ecc/bch.hh"
#include "ecc/crc32.hh"
#include "gf/gf2m.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

constexpr std::int64_t kPageBytes = 2048;

std::vector<std::uint8_t>
randomPage(unsigned seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> page(kPageBytes);
    for (auto& b : page)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return page;
}

void
BM_GfMul(benchmark::State& state)
{
    GaloisField gf(15);
    Rng rng(1);
    std::vector<GaloisField::Elem> a(1024), b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<GaloisField::Elem>(
            1 + rng.uniformInt(gf.size() - 1));
        b[i] = static_cast<GaloisField::Elem>(
            1 + rng.uniformInt(gf.size() - 1));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gf.mul(a[i & 1023], b[i & 1023]));
        ++i;
    }
}
BENCHMARK(BM_GfMul);

void
BM_Crc32Page(benchmark::State& state)
{
    const auto page = randomPage(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(page.data(), page.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_Crc32Page);

void
BM_Crc32PageBytewise(benchmark::State& state)
{
    // One-table reference: the seed implementation, for comparison
    // against the slicing-by-8 path above.
    const auto page = randomPage(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32Bytewise(page.data(), page.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_Crc32PageBytewise);

void
BM_BchEncodePage(benchmark::State& state)
{
    const auto t = static_cast<unsigned>(state.range(0));
    BchCode code(15, t, kPageBytes * 8);
    const auto data = randomPage(3);
    std::vector<std::uint8_t> parity(code.parityBytes());
    for (auto _ : state) {
        code.encode(data.data(), parity.data());
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_BchEncodePage)->Arg(1)->Arg(4)->Arg(8)->Arg(12);

void
BM_BchEncodePageReference(benchmark::State& state)
{
    const auto t = static_cast<unsigned>(state.range(0));
    BchCode code(15, t, kPageBytes * 8);
    const auto data = randomPage(3);
    std::vector<std::uint8_t> parity(code.parityBytes());
    for (auto _ : state) {
        code.encodeReference(data.data(), parity.data());
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_BchEncodePageReference)->Arg(1)->Arg(12);

void
BM_BchDecodePageClean(benchmark::State& state)
{
    // The steady-state path of the simulator: most pages read clean,
    // so decode cost is syndrome cost.
    const auto t = static_cast<unsigned>(state.range(0));
    BchCode code(15, t, kPageBytes * 8);
    auto data = randomPage(4);
    std::vector<std::uint8_t> parity(code.parityBytes());
    code.encode(data.data(), parity.data());
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(data.data(), parity.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_BchDecodePageClean)->Arg(1)->Arg(4)->Arg(8)->Arg(12);

void
BM_BchDecodePageTErrors(benchmark::State& state)
{
    // Full pipeline with t injected errors: syndromes +
    // Berlekamp-Massey + Chien + flips. A successful decode restores
    // the buffers, so errors are re-injected in place each iteration
    // without any per-iteration copying.
    const auto t = static_cast<unsigned>(state.range(0));
    BchCode code(15, t, kPageBytes * 8);
    auto data = randomPage(5);
    std::vector<std::uint8_t> parity(code.parityBytes());
    code.encode(data.data(), parity.data());
    for (auto _ : state) {
        for (unsigned e = 0; e < t; ++e)
            data[37 + 131 * e] ^= 2;
        const auto res = code.decode(data.data(), parity.data());
        benchmark::DoNotOptimize(res);
        if (!res.ok || res.correctedBits != t)
            state.SkipWithError("decode failed");
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_BchDecodePageTErrors)->Arg(1)->Arg(4)->Arg(8)->Arg(12);

void
BM_BchDecodePageReference(benchmark::State& state)
{
    // Seed bit-serial decoder on the same workload shapes.
    const auto t = static_cast<unsigned>(state.range(0));
    const auto nerr = static_cast<unsigned>(state.range(1));
    BchCode code(15, t, kPageBytes * 8);
    auto data = randomPage(5);
    std::vector<std::uint8_t> parity(code.parityBytes());
    code.encode(data.data(), parity.data());
    for (auto _ : state) {
        for (unsigned e = 0; e < nerr; ++e)
            data[37 + 131 * e] ^= 2;
        const auto res = code.decodeReference(data.data(), parity.data());
        benchmark::DoNotOptimize(res);
        if (!res.ok)
            state.SkipWithError("decode failed");
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_BchDecodePageReference)->Args({4, 0})->Args({12, 12});

} // namespace

BENCHMARK_MAIN();
