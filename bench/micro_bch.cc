/**
 * @file
 * google-benchmark microbenchmarks for the ECC substrate: GF
 * arithmetic, CRC32, and the real BCH encode/decode paths the
 * section 4.1.1 software-vs-accelerator argument rests on.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "ecc/bch.hh"
#include "ecc/crc32.hh"
#include "gf/gf2m.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

void
BM_GfMul(benchmark::State& state)
{
    GaloisField gf(15);
    Rng rng(1);
    std::vector<GaloisField::Elem> a(1024), b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<GaloisField::Elem>(
            1 + rng.uniformInt(gf.size() - 1));
        b[i] = static_cast<GaloisField::Elem>(
            1 + rng.uniformInt(gf.size() - 1));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gf.mul(a[i & 1023], b[i & 1023]));
        ++i;
    }
}
BENCHMARK(BM_GfMul);

void
BM_Crc32Page(benchmark::State& state)
{
    Rng rng(2);
    std::vector<std::uint8_t> page(2048);
    for (auto& b : page)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(page.data(), page.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_Crc32Page);

void
BM_BchEncodePage(benchmark::State& state)
{
    const auto t = static_cast<unsigned>(state.range(0));
    BchCode code(15, t, 2048 * 8);
    Rng rng(3);
    std::vector<std::uint8_t> data(2048);
    for (auto& b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    std::vector<std::uint8_t> parity(code.parityBytes());
    for (auto _ : state) {
        code.encode(data.data(), parity.data());
        benchmark::DoNotOptimize(parity.data());
    }
}
BENCHMARK(BM_BchEncodePage)->Arg(1)->Arg(4)->Arg(12);

void
BM_BchDecodePage(benchmark::State& state)
{
    const auto t = static_cast<unsigned>(state.range(0));
    const auto nerr = static_cast<unsigned>(state.range(1));
    BchCode code(15, t, 2048 * 8);
    Rng rng(4);
    std::vector<std::uint8_t> data(2048);
    for (auto& b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    std::vector<std::uint8_t> parity(code.parityBytes());
    code.encode(data.data(), parity.data());
    for (auto _ : state) {
        auto d = data;
        auto p = parity;
        for (unsigned e = 0; e < nerr; ++e)
            d[37 + 131 * e] ^= 2;
        benchmark::DoNotOptimize(code.decode(d.data(), p.data()));
    }
}
BENCHMARK(BM_BchDecodePage)
    ->Args({4, 0})
    ->Args({4, 4})
    ->Args({12, 6})
    ->Args({12, 12});

} // namespace

BENCHMARK_MAIN();
