/**
 * @file
 * Observability-overhead snapshot (the bench_snapshot CMake target,
 * alongside ecc_snapshot and cache_snapshot). Times the full system
 * serving path in three configurations:
 *
 *   serve_disabled  metric registry attached (it always is — the
 *                   registry only reads counters the layers already
 *                   keep), tracer not attached. This is the default
 *                   production configuration and must match the
 *                   pre-observability serving cost.
 *   serve_metrics   serve_disabled plus a full registry JSON
 *                   snapshot every 4096 requests, bounding the cost
 *                   of periodic metric scraping.
 *   serve_tracing   tracer attached: every request records spans and
 *                   leaves into the preallocated ring.
 *
 * Also times the one-shot exporters and replays the pdc_hit micro
 * from cache_snapshot so the driver can cross-check this binary's
 * numbers against BENCH_cache.json within noise. Writes
 * BENCH_obs.json.
 *
 * Usage: obs_snapshot [output.json]   (default: BENCH_obs.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/lru.hh"
#include "obs/trace.hh"
#include "sim/system_sim.hh"
#include "util/rng.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

using clock_type = std::chrono::steady_clock;

double
elapsedUs(clock_type::time_point start)
{
    return std::chrono::duration<double, std::micro>(
        clock_type::now() - start).count();
}

/** Serving-path configuration shared by all three modes. */
SystemConfig
benchConfig()
{
    SystemConfig cfg;
    cfg.dramBytes = mib(16);
    cfg.flashBytes = mib(32);
    cfg.seed = 77;
    return cfg;
}

/**
 * Time requests/sec through a fresh simulator: warm one batch, then
 * take the fastest of `reps` timed batches. `perBatch` runs between
 * batches (e.g. a periodic stats scrape) without being excluded —
 * its amortized cost is exactly what the mode measures.
 */
double
timeServe(bool tracing, int reps, std::uint64_t batch,
          const std::function<void(SystemSimulator&)>& perBatch = {})
{
    SystemSimulator sim(benchConfig());
    if (tracing)
        sim.enableTracing();
    auto gen = makeMacro(macroConfig("dbt2", 0.02));
    sim.run(*gen, batch); // warm: populate PDC + flash cache
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = clock_type::now();
        sim.run(*gen, batch);
        if (perBatch)
            perBatch(sim);
        best = std::min(best,
                        elapsedUs(start) / static_cast<double>(batch));
    }
    return best;
}

struct Entry
{
    std::string name;
    double value;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
    constexpr std::uint64_t kBatch = 100000;
    constexpr int kReps = 7;
    std::vector<Entry> phases;

    auto record = [&](const std::string& name, double us) {
        phases.push_back({name, us});
        std::printf("%-24s %10.4f us/op %14.0f ops/s\n", name.c_str(),
                    us, 1e6 / us);
        return us;
    };

    const double disabled = record("serve_disabled",
                                   timeServe(false, kReps, kBatch));
    const double metrics = record(
        "serve_metrics",
        timeServe(false, kReps, kBatch, [](SystemSimulator& sim) {
            // Scrape every 4096 requests on average: one snapshot
            // per batch costs batch/4096 snapshots' worth here.
            for (std::uint64_t i = 0; i < kBatch / 4096; ++i) {
                std::ostringstream os;
                sim.writeStatsJson(os);
            }
        }));
    const double tracing = record("serve_tracing",
                                  timeServe(true, kReps, kBatch));

    // One-shot exporter costs, measured on a traced, warmed run.
    double stats_us = 0.0, trace_us = 0.0;
    {
        SystemSimulator sim(benchConfig());
        sim.enableTracing();
        auto gen = makeMacro(macroConfig("dbt2", 0.02));
        sim.run(*gen, 2 * kBatch);
        for (int r = 0; r < kReps; ++r) {
            std::ostringstream os;
            auto start = clock_type::now();
            sim.writeStatsJson(os);
            const double su = elapsedUs(start);
            stats_us = r ? std::min(stats_us, su) : su;

            std::ostringstream ot;
            start = clock_type::now();
            sim.tracer()->exportChromeTrace(ot);
            const double tu = elapsedUs(start);
            trace_us = r ? std::min(trace_us, tu) : tu;
        }
        record("export_stats_json", stats_us);
        record("export_trace_64k", trace_us);
    }

    // pdc_hit replica (identical to cache_snapshot's new-side micro)
    // so BENCH_obs.json and BENCH_cache.json can be cross-checked.
    {
        constexpr std::size_t kResident = 4096;
        std::vector<Lba> lbas(kResident);
        for (std::size_t i = 0; i < kResident; ++i)
            lbas[i] = 1 + i * 0x9E3779B97ull;
        std::vector<std::uint32_t> order(65536);
        Rng rng(21);
        for (auto& o : order)
            o = static_cast<std::uint32_t>(rng.uniformInt(kResident));
        KeyedLru<Lba> lru;
        lru.reserve(kResident);
        for (const Lba l : lbas)
            lru.touch(l);
        std::size_t i = 0;
        double best = 1e300;
        for (int r = 0; r < kReps; ++r) {
            double total = 0.0;
            std::uint64_t calls = 0;
            while (total < 30000.0) {
                const auto start = clock_type::now();
                for (int k = 0; k < 8; ++k)
                    lru.touch(lbas[order[i++ & 65535]]);
                total += elapsedUs(start);
                calls += 8;
            }
            best = std::min(best, total / static_cast<double>(calls));
        }
        record("pdc_hit", best);
    }

    std::printf("\noverhead vs serve_disabled:\n");
    std::printf("  %-22s %+6.2f%%\n", "metrics",
                100.0 * (metrics / disabled - 1.0));
    std::printf("  %-22s %+6.2f%%\n", "tracing",
                100.0 * (tracing / disabled - 1.0));

    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"flashcache-bench-obs-v1\",\n");
    std::fprintf(f, "  \"tracing_compiled\": %s,\n",
                 FLASHCACHE_TRACING ? "true" : "false");
    std::fprintf(f, "  \"phases\": {\n");
    for (std::size_t i = 0; i < phases.size(); ++i) {
        std::fprintf(f,
            "    \"%s\": {\"us_per_op\": %.4f, \"ops_per_s\": %.0f}%s\n",
            phases[i].name.c_str(), phases[i].value,
            1e6 / phases[i].value, i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"overhead_vs_disabled\": {\n");
    std::fprintf(f, "    \"metrics\": %.4f,\n", metrics / disabled);
    std::fprintf(f, "    \"tracing\": %.4f\n", tracing / disabled);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
