/**
 * @file
 * Figure 9: system memory + disk power breakdown and normalized
 * network bandwidth, comparing a DRAM-only configuration against an
 * equal-die-area DRAM+flash configuration:
 *
 *   dbt2:      512 MB DRAM  vs  256 MB DRAM + 1 GB flash
 *   SPECWeb99: 512 MB DRAM  vs  128 MB DRAM + 2 GB flash
 *
 * Workloads are the Table 4 macro models at 1/4 footprint scale
 * with every capacity ratio of the paper's setup preserved; the
 * DRAM device size scales along, so the idle-power ratio between
 * configurations reflects the paper's real 4-vs-2-vs-1 DIMM counts.
 */

#include <cstdio>

#include "obs/cli.hh"
#include "obs/trace.hh"
#include "sim/system_sim.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

/** Exporter flags; the last simulator run feeds the snapshots. */
obs::CliOptions obsOpts;

struct RunResult
{
    PowerReport power;
    double throughput;
};

RunResult
run(const char* workload, double scale, std::uint64_t dram,
    std::uint64_t flash, std::uint64_t requests)
{
    SystemConfig cfg;
    cfg.dramBytes = dram;
    cfg.flashBytes = flash;
    cfg.seed = 13;
    // Server request work (parsing, transaction logic, network) —
    // the storage tier should bound throughput only in the
    // DRAM-only baseline, as in the paper's full-system runs.
    cfg.computeTime = milliseconds(1.5);
    // Scale the DRAM device size with the footprint so device-count
    // ratios (hence idle-power ratios) match the full-size setup.
    cfg.dramSpec.deviceBytes = static_cast<std::uint64_t>(
        static_cast<double>(cfg.dramSpec.deviceBytes) * scale);
    if (obsOpts.clients)
        cfg.clients = obsOpts.clients;
    if (obsOpts.channels)
        cfg.flashChannels = obsOpts.channels;
    SystemSimulator sim(cfg);
    if (obsOpts.wantTrace())
        sim.enableTracing(obsOpts.traceEvents);
    auto gen = makeMacro(macroConfig(workload, scale));
    sim.run(*gen, requests);
    if (obsOpts.wantStats())
        obs::writeStatsJson(sim.metrics(), obsOpts.statsJson);
    if (obsOpts.wantTrace())
        obs::writeTrace(*sim.tracer(), obsOpts.traceOut);
    return {sim.powerReport(), sim.stats().throughput()};
}

void
compare(const char* workload, double scale, std::uint64_t dram_only,
        std::uint64_t dram_small, std::uint64_t flash)
{
    const std::uint64_t requests = 4000000;
    const RunResult base = run(workload, scale, dram_only, 0, requests);
    const RunResult with = run(workload, scale, dram_small, flash,
                               requests);

    std::printf("\n--- %s (x%.2f scale) ---\n", workload, scale);
    std::printf("%-34s %9s %9s %9s %9s %9s %9s %10s\n", "configuration",
                "mem RD", "mem WR", "mem IDLE", "flash", "disk",
                "total W", "norm. BW");
    std::printf("%-34s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %10.2f\n",
                "DRAM only", base.power.memRead, base.power.memWrite,
                base.power.memIdle, base.power.flash, base.power.disk,
                base.power.total(), 1.0);
    std::printf("%-34s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %10.2f\n",
                "DRAM + Flash disk cache", with.power.memRead,
                with.power.memWrite, with.power.memIdle,
                with.power.flash, with.power.disk, with.power.total(),
                with.throughput / base.throughput);
    std::printf("power reduction: %.2fx\n",
                base.power.total() / with.power.total());
}

} // namespace

int
main(int argc, char** argv)
{
    obsOpts = obs::CliOptions::parse(argc, argv);
    std::printf("=== Figure 9: memory+disk power breakdown and network "
                "bandwidth ===\n");

    // Table 3 memory sizes at 1/4 scale; device-count ratios (4 vs
    // 2 vs 1 DIMMs) are preserved via the scaled device size.
    const double scale = 0.25;
    compare("dbt2", scale, mib(128), mib(64), mib(256));
    compare("SPECWeb99", scale, mib(128), mib(32), mib(512));

    std::printf("\nExpected shape: the flash configuration cuts memory "
                "idle power (fewer DRAM devices) and\ndisk power (fewer "
                "disk accesses) for up to ~3x lower total at equal or "
                "better bandwidth.\n");
    return 0;
}
