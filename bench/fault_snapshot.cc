/**
 * @file
 * Perf-trajectory snapshot for the fault/recovery subsystem (the
 * bench_snapshot CMake target, alongside ecc/cache/obs). Times the
 * two costs the crash-recovery work introduces:
 *
 *  - recovery_scan: wall-clock cost of FlashCache::recover() over a
 *    power-cut medium (per block and per scanned page) — the OOB
 *    scan, CRC validation reads, and table rebuild;
 *  - degraded-mode serve overhead: the real-data read hot path with
 *    no injector attached, with an idle injector (all rates zero,
 *    i.e. pure hook overhead), and with an active injector
 *    (transient read faults + latent-sector disk errors).
 *
 * The no-injector run is the cross-check against BENCH_cache.json:
 * the injector hooks must not tax the hot path when unused, so
 * serve_no_injector is re-read here and the flash_hit figure from
 * BENCH_cache.json is embedded in the output for side-by-side
 * comparison across PRs.
 *
 * Usage: fault_snapshot [output.json]   (default: BENCH_fault.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "controller/memory_controller.hh"
#include "core/flash_cache.hh"
#include "fault/fault_injector.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

constexpr std::uint32_t kPage = 2048;

/** In-memory payload disk, as the real-data tests use. */
class MemoryDisk : public PayloadBackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }

    Seconds
    readData(Lba lba, std::uint8_t* out) override
    {
        const auto it = pages_.find(lba);
        if (it == pages_.end())
            std::memset(out, 0, kPage);
        else
            std::memcpy(out, it->second.data(), kPage);
        return milliseconds(4.2);
    }

    Seconds
    writeData(Lba lba, const std::uint8_t* data) override
    {
        pages_[lba].assign(data, data + kPage);
        return milliseconds(4.2);
    }

    std::map<Lba, std::vector<std::uint8_t>> pages_;
};

/** One real-data cache stack, optionally fault-injected. */
struct Stack
{
    Stack(std::uint32_t blocks, std::uint32_t frames,
          const FaultPlan* plan)
    {
        if (plan)
            inj = std::make_unique<FaultInjector>(*plan);
        WearParams no_wear;
        no_wear.nominalCycles = 1e9;
        lifetime = std::make_unique<CellLifetimeModel>(no_wear);
        FlashGeometry g;
        g.numBlocks = blocks;
        g.framesPerBlock = frames;
        device = std::make_unique<FlashDevice>(g, FlashTiming(),
                                               *lifetime, 2024, 0.0,
                                               /*store_data=*/true);
        if (inj)
            device->attachFaultInjector(inj.get());
        controller = std::make_unique<FlashMemoryController>(*device);
        FlashCacheConfig cfg;
        cfg.realData = true;
        cache = std::make_unique<FlashCache>(*controller, disk, cfg);
    }

    /** Zipf-warm the cache over `lbas` logical pages. */
    void
    warm(std::uint64_t lbas, std::uint64_t ops)
    {
        Rng rng(7);
        ZipfSampler zipf(lbas, 1.1);
        std::vector<std::uint8_t> buf(kPage);
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Lba l = zipf.sample(rng);
            if (rng.bernoulli(0.3)) {
                Rng fill(l * 2654435761u + 1);
                for (auto& b : buf)
                    b = static_cast<std::uint8_t>(fill.uniformInt(256));
                cache->writeData(l, buf.data());
            } else {
                cache->readData(l, buf.data());
            }
        }
    }

    std::unique_ptr<FaultInjector> inj;
    std::unique_ptr<CellLifetimeModel> lifetime;
    std::unique_ptr<FlashDevice> device;
    std::unique_ptr<FlashMemoryController> controller;
    MemoryDisk disk;
    std::unique_ptr<FlashCache> cache;
};

/** One ~rep_ms measurement burst; returns microseconds per call. */
double
measureRep(const std::function<void()>& op, double rep_ms)
{
    using clock = std::chrono::steady_clock;
    double total_us = 0.0;
    std::uint64_t calls = 0;
    while (total_us < rep_ms * 1000.0) {
        const auto start = clock::now();
        for (int i = 0; i < 8; ++i)
            op();
        const auto stop = clock::now();
        total_us += std::chrono::duration<double, std::micro>(
            stop - start).count();
        calls += 8;
    }
    return total_us / static_cast<double>(calls);
}

/** Best-of-N reps: the least interference-polluted estimate. */
double
timeOp(const std::function<void()>& op, int reps = 7,
       double rep_ms = 30.0)
{
    op();
    op();
    double best = 1e300;
    for (int r = 0; r < reps; ++r)
        best = std::min(best, measureRep(op, rep_ms));
    return best;
}

/** Pull "flash_hit": {"us_per_op": X out of BENCH_cache.json, if the
 *  file is present next to the output (bench_snapshot runs from the
 *  repository root); -1 when unavailable. */
double
benchCacheFlashHitUs()
{
    std::FILE* f = std::fopen("BENCH_cache.json", "r");
    if (!f)
        return -1.0;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    const auto key = text.find("\"flash_hit\"");
    if (key == std::string::npos)
        return -1.0;
    const auto us = text.find("\"us_per_op\":", key);
    if (us == std::string::npos)
        return -1.0;
    return std::atof(text.c_str() + us + 12);
}

} // namespace

int
main(int argc, char** argv)
{
    const char* out_path = argc > 1 ? argv[1] : "BENCH_fault.json";
    std::vector<std::pair<std::string, double>> fields;
    auto record = [&](const std::string& name, double v,
                      const char* unit) {
        fields.emplace_back(name, v);
        std::printf("%-28s %12.4f %s\n", name.c_str(), v, unit);
    };

    // ---- recovery_scan: time recover() on a freshly "rebooted"
    // stack. Warm a medium, cut power mid-workload so the scan sees
    // a torn page, snapshot the device, then per-rep restore the
    // snapshot into the same device, rebuild a cold cache and run
    // the full scan + validate + table rebuild. ----
    {
        constexpr std::uint32_t kBlocks = 128, kFrames = 16;
        FaultPlan plan; // one mid-program cut, deep into the warmup
        plan.powerCutAtProgram = 1200;
        Stack s(kBlocks, kFrames, &plan);
        try {
            s.warm(1500, 20000);
        } catch (const PowerLossException&) {
            // expected: the medium now holds a torn page
        }
        s.inj->clearPowerLoss();
        std::ostringstream saved;
        s.device->saveState(saved);
        const std::string devState = saved.str();

        FlashCacheConfig cfg;
        cfg.realData = true;
        std::uint64_t scanned = 0;
        const double us = timeOp([&] {
            std::istringstream is(devState);
            s.device->loadState(is);
            FlashCache cold(*s.controller, s.disk, cfg);
            cold.recover();
            scanned = cold.stats().recovery.scannedPages;
        }, 7, 60.0);
        record("recovery_scan_us", us, "us/scan");
        record("recovery_us_per_block", us / kBlocks, "us/block");
        if (scanned)
            record("recovery_us_per_page",
                   us / static_cast<double>(scanned), "us/page");
        std::printf("%-28s %12llu pages\n", "recovery_scanned",
                    static_cast<unsigned long long>(scanned));
    }

    // ---- serve overhead: the real-data read hot path with no
    // injector, an idle injector (pure hook cost), and an active
    // injector (transient read faults + disk latent-sector errors
    // with retry). Identical stacks, identical warm, identical
    // access stream. ----
    {
        constexpr std::uint32_t kBlocks = 64, kFrames = 16;
        constexpr std::uint64_t kLbas = 700;
        FaultPlan idle; // all rates zero: hooks fire, nothing injected
        FaultPlan active;
        active.readFaultRate = 1e-3;
        active.diskFaultRate = 1e-3;

        Stack none(kBlocks, kFrames, nullptr);
        Stack hooked(kBlocks, kFrames, &idle);
        Stack faulty(kBlocks, kFrames, &active);
        none.warm(kLbas, 12000);
        hooked.warm(kLbas, 12000);
        faulty.warm(kLbas, 12000);

        Rng order(11);
        std::vector<Lba> picks(4096);
        ZipfSampler zipf(kLbas, 1.1);
        for (auto& p : picks)
            p = zipf.sample(order);
        std::vector<std::uint8_t> buf(kPage);

        auto serve = [&](Stack& s) {
            std::size_t i = 0;
            return timeOp([&] {
                s.cache->readData(picks[i++ & 4095], buf.data());
            });
        };
        const double us_none = serve(none);
        const double us_idle = serve(hooked);
        const double us_active = serve(faulty);
        record("serve_no_injector_us", us_none, "us/op");
        record("serve_injector_idle_us", us_idle, "us/op");
        record("serve_injector_active_us", us_active, "us/op");
        record("idle_overhead_ratio", us_idle / us_none, "x");
        record("active_overhead_ratio", us_active / us_none, "x");
    }

    // ---- cross-check hook: embed the structure-level flash_hit
    // figure from BENCH_cache.json (if present) so the two snapshots
    // can be compared side by side across PRs. ----
    {
        const double cache_us = benchCacheFlashHitUs();
        record("bench_cache_flash_hit_us", cache_us,
               cache_us < 0 ? "(BENCH_cache.json not found)" : "us/op");
    }

    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"flashcache-bench-fault-v1\",\n");
    for (std::size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "  \"%s\": %.4f%s\n", fields[i].first.c_str(),
                     fields[i].second,
                     i + 1 < fields.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
