/**
 * @file
 * Perf-trajectory snapshot for the cache serving hot path (the
 * bench_snapshot CMake target, alongside ecc_snapshot). Times the
 * four phases the cache spends its cycles in — PDC hit, flash hit,
 * miss+fill, and GC-heavy churn — against both the new structures
 * (open-addressed Fcht, IntrusiveLru, KeyedLru, GC victim buckets)
 * and the retained seed structures (chained FchtChained,
 * std::list-based LruList, full-scan victim selection, vector
 * middle-erase free lists), and writes BENCH_cache.json with
 * us/op, ops/s and speedup ratios vs the seed.
 *
 * The seed FlashCache itself no longer exists, so the comparison is
 * structure-level: each phase replays the exact sequence of
 * structure operations the cache performs on that path.
 *
 * Usage: cache_snapshot [output.json]   (default: BENCH_cache.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/lru.hh"
#include "core/tables.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

/** One ~rep_ms measurement burst; returns microseconds per call. */
double
measureRep(const std::function<void()>& op, double rep_ms)
{
    using clock = std::chrono::steady_clock;
    double total_us = 0.0;
    std::uint64_t calls = 0;
    while (total_us < rep_ms * 1000.0) {
        const auto start = clock::now();
        for (int i = 0; i < 8; ++i)
            op();
        const auto stop = clock::now();
        total_us += std::chrono::duration<double, std::micro>(
            stop - start).count();
        calls += 8;
    }
    return total_us / static_cast<double>(calls);
}

/**
 * Time a new/seed pair with the reps interleaved, taking each
 * side's fastest rep: a burst of machine noise lands on both
 * variants instead of poisoning whichever happened to be
 * mid-measurement, and the minimum is the least interference-
 * polluted estimate on a shared machine.
 */
std::pair<double, double>
timePair(const std::function<void()>& op_new,
         const std::function<void()>& op_seed, int reps = 9,
         double rep_ms = 30.0)
{
    op_new();
    op_new();
    op_seed();
    op_seed();
    double best_new = 1e300, best_seed = 1e300;
    for (int r = 0; r < reps; ++r) {
        best_new = std::min(best_new, measureRep(op_new, rep_ms));
        best_seed = std::min(best_seed, measureRep(op_seed, rep_ms));
    }
    return {best_new, best_seed};
}

constexpr std::uint32_t kNo = ~0u;

/**
 * Verbatim replica of the seed LruList (pre-PR): touch() pays two
 * hash lookups plus a list-node deallocation and reallocation per
 * call. The retained LruList in core/lru.hh received the splice fix
 * as part of this PR, so the honest seed baseline lives here.
 */
template <typename Key>
class SeedLruList
{
  public:
    bool empty() const { return order_.empty(); }
    std::size_t size() const { return order_.size(); }

    bool contains(const Key& k) const { return index_.count(k) != 0; }

    void
    touch(const Key& k)
    {
        auto it = index_.find(k);
        if (it != index_.end())
            order_.erase(it->second);
        order_.push_front(k);
        index_[k] = order_.begin();
    }

    bool
    erase(const Key& k)
    {
        auto it = index_.find(k);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    const Key& lru() const { return order_.back(); }

    Key
    popLru()
    {
        Key k = lru();
        erase(k);
        return k;
    }

    auto begin() const { return order_.begin(); }
    auto end() const { return order_.end(); }

  private:
    std::list<Key> order_;
    std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

/**
 * Mini-model of the incremental GC victim tracking in FlashCache:
 * per-count bucket lists over the blocks of one region, a lazily
 * decayed max, and the region LRU for tie-breaking — the same
 * operations gcBucketInsert/Remove/Shift and gcPickVictim perform.
 */
struct BucketGc
{
    IntrusiveLru lru;
    std::vector<std::uint32_t> head;
    std::vector<std::uint32_t> prev, next;
    std::vector<std::uint16_t> invalid;
    std::uint32_t maxInvalid = 0;

    BucketGc(std::uint32_t nblocks, std::uint32_t max_count)
        : prev(nblocks, kNo), next(nblocks, kNo), invalid(nblocks, 0)
    {
        lru.resize(nblocks);
        head.assign(max_count + 1, kNo);
        for (std::uint32_t b = 0; b < nblocks; ++b) {
            lru.touch(b);
            insert(b);
        }
    }

    void
    insert(std::uint32_t b)
    {
        const std::uint16_t c = invalid[b];
        prev[b] = kNo;
        next[b] = head[c];
        if (head[c] != kNo)
            prev[head[c]] = b;
        head[c] = b;
        if (c > maxInvalid)
            maxInvalid = c;
    }

    void
    remove(std::uint32_t b, std::uint16_t c)
    {
        if (prev[b] != kNo)
            next[prev[b]] = next[b];
        else
            head[c] = next[b];
        if (next[b] != kNo)
            prev[next[b]] = prev[b];
        prev[b] = next[b] = kNo;
    }

    /** One page of block b goes invalid. */
    void
    bump(std::uint32_t b)
    {
        const std::uint16_t old = invalid[b]++;
        remove(b, old);
        insert(b);
    }

    std::uint32_t
    pick()
    {
        std::uint32_t m = maxInvalid;
        while (m > 0 && head[m] == kNo)
            --m;
        maxInvalid = m;
        if (m == 0)
            return kNo;
        const std::uint32_t first = head[m];
        if (next[first] == kNo)
            return first; // singleton top bucket: exact O(1) pick
        for (const std::uint32_t id : lru)
            if (invalid[id] == m)
                return id; // MRU-first tie break, early exit
        return first;
    }
};

/** The seed victim selection: full MRU->LRU scan every GC. */
struct SeedGc
{
    SeedLruList<std::uint32_t> lru;
    std::vector<std::uint16_t> invalid;

    SeedGc(std::uint32_t nblocks) : invalid(nblocks, 0)
    {
        for (std::uint32_t b = 0; b < nblocks; ++b)
            lru.touch(b);
    }

    std::uint32_t
    pick() const
    {
        std::uint32_t best = kNo;
        std::uint16_t best_count = 0;
        for (const std::uint32_t b : lru)
            if (invalid[b] > best_count) {
                best = b;
                best_count = invalid[b];
            }
        return best;
    }
};

struct PhaseResult
{
    std::string name;
    double usPerOp;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* out_path = argc > 1 ? argv[1] : "BENCH_cache.json";
    std::vector<PhaseResult> phases;
    std::vector<PhaseResult> ratios;
    std::uint64_t sink = 0;

    auto record = [&](const std::string& name, double us) {
        phases.push_back({name, us});
        std::printf("%-24s %10.4f us/op %14.0f ops/s\n", name.c_str(),
                    us, 1e6 / us);
        return us;
    };

    // ---- pdc_hit: PDC LRU touch on a primary-disk-cache hit ----
    // 4096 resident pages; sparse LBA keys as the PDC sees them.
    {
        constexpr std::size_t kResident = 4096;
        std::vector<Lba> lbas(kResident);
        for (std::size_t i = 0; i < kResident; ++i)
            lbas[i] = 1 + i * 0x9E3779B97ull;
        std::vector<std::uint32_t> order(65536);
        Rng rng(21);
        for (auto& o : order)
            o = static_cast<std::uint32_t>(rng.uniformInt(kResident));

        KeyedLru<Lba> fast;
        fast.reserve(kResident);
        SeedLruList<Lba> seed;
        for (const Lba l : lbas) {
            fast.touch(l);
            seed.touch(l);
        }
        std::size_t i = 0, j = 0;
        const auto [us_new, us_seed] = timePair(
            [&] { fast.touch(lbas[order[i++ & 65535]]); },
            [&] { seed.touch(lbas[order[j++ & 65535]]); });
        record("pdc_hit", us_new);
        record("pdc_hit_seed", us_seed);
        ratios.push_back({"pdc_hit", us_seed / us_new});
    }

    // ---- flash_hit: everything a flash read hit does to the
    // management structures, at the paper's 1 GB cache scale — the
    // PDC lookup that misses first, the FCHT lookup (~512K mappings,
    // auto-sized home positions), the region LRU touch of the hit
    // block (8192 blocks), and the PDC promotion the hit triggers
    // (insert + LRU eviction). The seed PDC pays two node
    // allocations and two frees per promotion; KeyedLru recycles
    // slots and allocates nothing. Both tables are aged with one
    // full eviction/fill turnover first: a steady-state cache never
    // serves from a pristine sequentially-built table. ----
    {
        constexpr std::size_t kEntries = 512 * 1024;
        // Default-config tables at this scale: the rewrite's auto
        // mode (0: every slot a home position) against the seed's
        // capacity-derived bucket formula (pages / 2 chain heads).
        constexpr std::size_t kSeedBuckets = 262144;
        constexpr std::uint32_t kBlocks = 8192;
        constexpr std::size_t kPdcResident = 4096;
        Fcht open(0);
        FchtChained chained(kSeedBuckets);
        IntrusiveLru intru(kBlocks);
        SeedLruList<std::uint32_t> seed_lru;
        KeyedLru<Lba> fast_pdc;
        fast_pdc.reserve(kPdcResident + 1);
        SeedLruList<Lba> seed_pdc;
        // Dirty-page LRUs: evicting a clean PDC page still probes
        // them (evictPdcPage erases the victim unconditionally).
        KeyedLru<Lba> fast_dirty;
        SeedLruList<Lba> seed_dirty;
        Rng rng(22);
        auto lbaOf = [](std::uint64_t v) {
            return v * 0x2545F4914F6CDD1Dull >> 12;
        };
        for (std::size_t i = 0; i < kEntries; ++i) {
            open.insert(lbaOf(i), i);
            chained.insert(lbaOf(i), i);
        }
        // Age: evict the oldest mapping, fill a fresh one, through a
        // full cache turnover, so both tables carry the steady-state
        // layout their allocation pattern produces.
        std::size_t base = 0;
        for (std::size_t t = 0; t < kEntries; ++t) {
            open.erase(lbaOf(base));
            chained.erase(lbaOf(base));
            ++base;
            open.insert(lbaOf(base + kEntries - 1), t);
            chained.insert(lbaOf(base + kEntries - 1), t);
        }
        for (std::uint32_t b = 0; b < kBlocks; ++b) {
            intru.touch(b);
            seed_lru.touch(b);
        }
        for (Lba l = 0; l < kPdcResident; ++l) {
            fast_pdc.touch(~l);
            seed_pdc.touch(~l);
        }
        // Picks follow a hot subset of the live window
        // [base, base + kEntries): flash hits are recency-local by
        // construction (a hit means the LBA is in the cached working
        // set), so the hit stream concentrates on recently filled
        // mappings rather than sweeping all 512K uniformly. The LBA
        // is recomputed from the pick rather than loaded from a big
        // side array, which would cost both variants the same DRAM
        // miss and only dilute the comparison.
        constexpr std::size_t kHot = 16384;
        std::vector<std::uint32_t> order(65536);
        for (auto& o : order)
            o = static_cast<std::uint32_t>(base + kEntries - 1 -
                                           rng.uniformInt(kHot));
        std::size_t i = 0, j = 0;
        Lba promote_new = 1, promote_seed = 1;
        const auto [us_new, us_seed] = timePair(
            [&] {
                const std::uint32_t pick = order[i++ & 65535];
                sink ^= fast_pdc.contains(lbaOf(pick)); // PDC misses
                sink ^= open.find(lbaOf(pick));
                // readImpl: contains() then touch(), as the region
                // LRU only tracks blocks outside the free pool.
                const std::uint32_t blk = pick & (kBlocks - 1);
                if (intru.contains(blk))
                    intru.touch(blk);
                fast_dirty.erase(fast_pdc.popLru());
                fast_pdc.touch(promote_new++);
            },
            [&] {
                const std::uint32_t pick = order[j++ & 65535];
                sink ^= seed_pdc.contains(lbaOf(pick)); // PDC misses
                sink ^= chained.find(lbaOf(pick));
                const std::uint32_t blk = pick & (kBlocks - 1);
                if (seed_lru.contains(blk))
                    seed_lru.touch(blk);
                seed_dirty.erase(seed_pdc.popLru());
                seed_pdc.touch(promote_seed++);
            });
        record("flash_hit", us_new);
        record("flash_hit_seed", us_seed);
        ratios.push_back({"flash_hit", us_seed / us_new});
    }

    // ---- miss_fill: retire the oldest mapping, insert the new one,
    // and run the PDC insert + eviction pair a miss triggers ----
    {
        constexpr std::size_t kWindow = 16384;
        Fcht open(0); // auto mode, as the default config runs it
        FchtChained chained(4096);
        KeyedLru<Lba> fast_pdc;
        fast_pdc.reserve(kWindow + 1);
        SeedLruList<Lba> seed_pdc;
        Lba fa_new = kWindow, fa_old = 0;
        Lba se_new = kWindow, se_old = 0;
        for (Lba l = 0; l < kWindow; ++l) {
            open.insert(l, l);
            chained.insert(l, l);
            fast_pdc.touch(l);
            seed_pdc.touch(l);
        }
        const auto [us_new, us_seed] = timePair(
            [&] {
                open.erase(fa_old);
                open.insert(fa_new, fa_new);
                fast_pdc.touch(fa_new);
                fast_pdc.popLru();
                ++fa_old;
                ++fa_new;
            },
            [&] {
                chained.erase(se_old);
                chained.insert(se_new, se_new);
                seed_pdc.touch(se_new);
                seed_pdc.popLru();
                ++se_old;
                ++se_new;
            });
        record("miss_fill", us_new);
        record("miss_fill_seed", us_seed);
        ratios.push_back({"miss_fill", us_seed / us_new});
    }

    // ---- gc_heavy: sustained write churn at the paper's region
    // scale (1 GB cache, 128 KB blocks -> 8192 blocks). Each op is
    // one GC round: 64 page invalidations (roughly what accumulates
    // between reclaims), one victim pick, victim reset, and one
    // free-list take (seed: vector middle-erase; new: swap-pop).
    // The seed victim pick walks the entire region LRU every GC;
    // the bucket pick is O(1) amortized. ----
    {
        constexpr std::uint32_t kBlocks = 8192;
        constexpr std::uint32_t kMaxCount = 128;
        BucketGc fast(kBlocks, kMaxCount);
        SeedGc seed(kBlocks);
        std::vector<std::uint32_t> free_fast, free_seed;
        for (std::uint32_t b = 0; b < 256; ++b) {
            free_fast.push_back(b);
            free_seed.push_back(b);
        }
        Rng rng_fast(23), rng_seed(23);

        // Writes carry locality, so invalidations concentrate on the
        // blocks holding the hot working set: 3 in 4 land on a small
        // hot set, the rest spread over the whole region.
        auto pickBlock = [](Rng& r) {
            const auto x =
                static_cast<std::uint32_t>(r.uniformInt(kBlocks * 4));
            return x < kBlocks ? x : (kBlocks - 256) + x % 256;
        };

        const auto [us_new, us_seed] = timePair(
            [&] {
                for (int k = 0; k < 64; ++k) {
                    const std::uint32_t b = pickBlock(rng_fast);
                    if (fast.invalid[b] < kMaxCount)
                        fast.bump(b);
                }
                const std::uint32_t v = fast.pick();
                if (v != kNo) {
                    fast.remove(v, fast.invalid[v]);
                    fast.invalid[v] = 0;
                    fast.lru.erase(v);
                    fast.lru.touch(v);
                    fast.insert(v);
                }
                // Free-list take: swap-and-pop, return the block.
                const auto want = free_fast[rng_fast.uniformInt(256)];
                auto it = std::find(free_fast.begin(),
                                    free_fast.end(), want);
                std::swap(*it, free_fast.back());
                free_fast.pop_back();
                free_fast.push_back(want);
            },
            [&] {
                for (int k = 0; k < 64; ++k) {
                    const std::uint32_t b = pickBlock(rng_seed);
                    if (seed.invalid[b] < kMaxCount)
                        ++seed.invalid[b];
                }
                const std::uint32_t v = seed.pick();
                if (v != kNo) {
                    seed.invalid[v] = 0;
                    seed.lru.erase(v);
                    seed.lru.touch(v);
                }
                // Free-list take: middle erase shifts the tail.
                const auto want = free_seed[rng_seed.uniformInt(256)];
                free_seed.erase(std::find(free_seed.begin(),
                                          free_seed.end(), want));
                free_seed.push_back(want);
            });
        record("gc_heavy", us_new);
        record("gc_heavy_seed", us_seed);
        ratios.push_back({"gc_heavy", us_seed / us_new});
    }

    if (sink == 0xDEADBEEF)
        std::printf("(unlikely)\n");

    std::printf("\nspeedup vs seed structures:\n");
    for (const auto& r : ratios)
        std::printf("  %-22s %6.2fx\n", r.name.c_str(), r.usPerOp);

    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"flashcache-bench-cache-v1\",\n");
    std::fprintf(f, "  \"phases\": {\n");
    for (std::size_t i = 0; i < phases.size(); ++i) {
        std::fprintf(f,
            "    \"%s\": {\"us_per_op\": %.4f, \"ops_per_s\": %.0f}%s\n",
            phases[i].name.c_str(), phases[i].usPerOp,
            1e6 / phases[i].usPerOp,
            i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"speedup_vs_seed\": {\n");
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        std::fprintf(f, "    \"%s\": %.2f%s\n", ratios[i].name.c_str(),
                     ratios[i].usPerOp,
                     i + 1 < ratios.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
