/**
 * @file
 * Figure 6(a): BCH decode latency (syndrome + Chien components)
 * versus the number of correctable errors, from the accelerator
 * timing model (100 MHz embedded core, 16 GF lanes, 2 KB block).
 *
 * Also reproduces the section 4.1.1 observation that motivated the
 * accelerator: a software decoder is orders of magnitude slower, by
 * timing the real BchCode implementation on this host.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/ecc_timing.hh"
#include "util/rng.hh"

using namespace flashcache;

int
main()
{
    const EccTimingModel model;

    std::printf("=== Figure 6(a): accelerated BCH decode latency vs "
                "code strength ===\n\n");
    std::printf("%4s %14s %14s %14s %12s\n", "t", "syndrome (us)",
                "chien (us)", "berlekamp(us)", "total (us)");
    for (unsigned t = 2; t <= 11; ++t) {
        const BchLatency lat = model.decodeLatency(t);
        std::printf("%4u %14.1f %14.1f %14.2f %12.1f\n", t,
                    lat.syndrome * 1e6, lat.chien * 1e6,
                    lat.berlekamp * 1e6, lat.total() * 1e6);
    }
    std::printf("\nExpected shape: ~linear in t, roughly 60-400 us over "
                "the range (Table 3: 58-400 us),\nBerlekamp negligible "
                "(omitted from the paper's figure).\n");

    // Section 4.1.1: software decode on a host CPU, per 2 KB page.
    // Both codec generations are timed: the bit-serial seed decoder
    // stands in for the paper's "unoptimized C" measurement, and the
    // word-parallel rewrite shows how far table-driven software can
    // close the gap (see BENCH_ecc.json for the recorded trajectory).
    std::printf("\n--- software BCH decode on this host (real codec, "
                "2 KB page) ---\n");
    std::printf("%4s %18s %22s %22s\n", "t", "errors injected",
                "bit-serial (us)", "word-parallel (us)");
    Rng rng(3);
    for (unsigned t : {2u, 6u, 10u}) {
        BchCode code(15, t, 2048 * 8);
        std::vector<std::uint8_t> data(2048);
        for (auto& b : data)
            b = static_cast<std::uint8_t>(rng.uniformInt(256));
        std::vector<std::uint8_t> parity(code.parityBytes(), 0);
        code.encode(data.data(), parity.data());
        // Inject t errors.
        for (unsigned e = 0; e < t; ++e)
            data[100 * e + 7] ^= 1;

        const int reps = 20;
        double us_ref = 0.0;
        double us_fast = 0.0;
        for (int i = 0; i < reps; ++i) {
            auto d = data;
            auto p = parity;
            auto start = std::chrono::steady_clock::now();
            const auto res = code.decodeReference(d.data(), p.data());
            auto stop = std::chrono::steady_clock::now();
            if (!res.ok)
                std::printf("unexpected decode failure\n");
            us_ref += std::chrono::duration<double, std::micro>(
                stop - start).count();

            auto d2 = data;
            auto p2 = parity;
            start = std::chrono::steady_clock::now();
            const auto res2 = code.decode(d2.data(), p2.data());
            stop = std::chrono::steady_clock::now();
            if (!res2.ok)
                std::printf("unexpected decode failure\n");
            us_fast += std::chrono::duration<double, std::micro>(
                stop - start).count();
        }
        std::printf("%4u %18u %22.0f %22.1f\n", t, t, us_ref / reps,
                    us_fast / reps);
    }
    std::printf("\nThe paper measured 0.1-1 s per page on a 3.4 GHz "
                "Pentium 4 (unoptimized C), motivating\nthe ~1 mm^2 "
                "hardware accelerator the timing model above "
                "represents. The bit-serial\ncolumn is our equivalent "
                "of that unoptimized software point; the word-parallel "
                "column\nis the table-driven rewrite this simulator "
                "actually runs.\n");
    return 0;
}
