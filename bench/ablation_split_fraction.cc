/**
 * @file
 * Ablation: the read/write region split ratio.
 *
 * The paper dedicates 90% of the flash to the read region "based on
 * the observed write behavior" (section 3.5). This sweep varies the
 * fraction on the dbt2 model and reports read miss rate and GC
 * effort, showing the basin around the paper's choice.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

struct Result
{
    double missRate;
    double gcShare;
    std::uint64_t flushes;
};

Result
run(double read_fraction)
{
    CellLifetimeModel lifetime;
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(48));
    FlashDevice device(geom, FlashTiming(), lifetime, 15);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.readRegionFraction = read_fraction;
    FlashCache cache(ctrl, store, cfg);

    auto gen = makeMacro(macroConfig("dbt2", 0.125));
    Rng rng(3);
    for (int i = 0; i < 800000; ++i) {
        const TraceRecord r = gen->next(rng);
        if (r.isWrite)
            cache.write(r.lba);
        else
            cache.read(r.lba);
    }
    return {cache.stats().fgst.reads.missRate(),
            cache.gcOverheadFraction(),
            cache.stats().evictionFlushes};
}

} // namespace

int
main()
{
    std::printf("=== Ablation: read-region fraction of the split flash "
                "cache (dbt2 model, 48 MB flash) ===\n\n");
    std::printf("%14s %14s %12s %14s\n", "read fraction",
                "read miss", "GC share", "dirty flushes");
    for (const double f : {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98}) {
        const Result r = run(f);
        std::printf("%13.0f%% %13.1f%% %11.1f%% %14llu\n", f * 100.0,
                    r.missRate * 100.0, r.gcShare * 100.0,
                    static_cast<unsigned long long>(r.flushes));
    }
    std::printf("\nThe optimum tracks the write intensity — the paper "
                "picked 90/10 \"based on the observed\nwrite "
                "behavior\" of its traces; this 35%%-write OLTP model "
                "prefers a larger write region,\nand pushing the read "
                "share higher only starves the log and multiplies "
                "flushes.\n");
    return 0;
}
