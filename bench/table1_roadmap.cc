/**
 * @file
 * Table 1: ITRS 2007 roadmap for memory technology — the density
 * and endurance constants the area and wear models consume.
 */

#include <cstdio>

#include "flash/flash_spec.hh"

using namespace flashcache;

int
main()
{
    std::printf("=== Table 1: ITRS 2007 roadmap for memory technology "
                "===\n\n");
    std::printf("%-34s", "");
    for (const auto& r : itrsRoadmap())
        std::printf("%10d", r.year);
    std::printf("\n");

    std::printf("%-34s", "NAND Flash-SLC (um^2/bit)");
    for (const auto& r : itrsRoadmap())
        std::printf("%10.4f", r.slcUm2PerBit);
    std::printf("\n");

    std::printf("%-34s", "NAND Flash-MLC (um^2/bit)");
    for (const auto& r : itrsRoadmap())
        std::printf("%10.4f", r.mlcUm2PerBit);
    std::printf("\n");

    std::printf("%-34s", "DRAM cell density (um^2/bit)");
    for (const auto& r : itrsRoadmap())
        std::printf("%10.4f", r.dramUm2PerBit);
    std::printf("\n");

    std::printf("%-34s", "W/E cycles SLC/MLC");
    for (const auto& r : itrsRoadmap()) {
        std::printf("  %.0e/%.0e", r.slcEnduranceCycles,
                    r.mlcEnduranceCycles);
    }
    std::printf("\n");

    std::printf("%-34s", "Data retention (years)");
    for (const auto& r : itrsRoadmap())
        std::printf("     %2d-%2d", r.retentionYearsLo,
                    r.retentionYearsHi);
    std::printf("\n");

    // The derived trend the paper highlights: flash is headed to ~8x
    // the density of DRAM by 2015.
    const auto& last = itrsRoadmap().back();
    std::printf("\nDerived: 2015 DRAM/MLC area ratio = %.1fx "
                "(paper expects ~8x)\n",
                last.dramUm2PerBit / last.mlcUm2PerBit);
    return 0;
}
