/**
 * @file
 * Extension study: projecting the programmable controller across the
 * ITRS roadmap (Table 1).
 *
 * The paper's lifetime claims are anchored at the 2007 endurance
 * figures (SLC 1e5, MLC 1e4 W/E). Table 1 projects SLC endurance to
 * 1e6 by 2011 while MLC stays at 1e4 — widening the very gap the
 * density controller exploits. This bench re-anchors the wear model
 * at each roadmap year and reports the maximum tolerable W/E cycles
 * per ECC strength, plus the years of service at the paper's own
 * write intensity — section 7.4 describes a workload that wears a
 * BCH-1 flash out in six months, i.e. ~820 erases per block per day.
 */

#include <cstdio>

#include "flash/flash_spec.hh"
#include "reliability/wear_model.hh"

using namespace flashcache;

int
main()
{
    std::printf("=== Extension: ECC-extended lifetime across the ITRS "
                "roadmap (Table 1 anchors) ===\n\n");
    const unsigned page_bits = (2048 + 64) * 8;
    // Calibrated to section 7.4: BCH-1 (~1.5e5 tolerable
    // cycles) exhausted in six months.
    const double block_cycles_per_year = 822.0 * 365.0;

    std::printf("%6s %12s %14s %14s %14s %16s\n", "year",
                "SLC anchor", "tol. @ t=1", "tol. @ t=6",
                "tol. @ t=12", "service @ t=12");
    for (const ItrsRow& row : itrsRoadmap()) {
        WearParams wp;
        wp.nominalCycles = row.slcEnduranceCycles;
        const CellLifetimeModel model(wp);
        const double t1 = model.maxTolerableCycles(1, page_bits, 0.0);
        const double t6 = model.maxTolerableCycles(6, page_bits, 0.0);
        const double t12 = model.maxTolerableCycles(12, page_bits, 0.0);
        std::printf("%6d %12.0e %14.3g %14.3g %14.3g %13.0f yr\n",
                    row.year, row.slcEnduranceCycles, t1, t6, t12,
                    t12 / block_cycles_per_year);
    }

    std::printf("\nMLC endurance stays at 1e4 across the roadmap "
                "(Table 1), so the SLC/MLC endurance gap\ngrows from "
                "10x to 100x — the programmable controller's density "
                "switch becomes *more*\nvaluable over time, and "
                "ECC-extended SLC outlives the server itself from "
                "2011 on.\n");
    return 0;
}
