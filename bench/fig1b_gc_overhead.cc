/**
 * @file
 * Figure 1(b): garbage collection overhead versus occupied flash
 * space.
 *
 * The paper fills a 2 GB flash log to a target live occupancy and
 * measures the share of time spent garbage collecting, normalized so
 * that a 10% overhead reads as 1.0; GC becomes overwhelming well
 * before the device is full (the eNVy study [26] could only use 80%
 * of its capacity). We run the same experiment on a 64 MB device —
 * the curve depends on occupancy, not absolute size.
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

double
gcOverheadAtOccupancy(double used_fraction)
{
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(64));
    CellLifetimeModel lifetime;
    FlashDevice device(geom, FlashTiming(), lifetime, 42);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.splitRegions = false; // the whole device is one write log
    cfg.wearLeveling = false;
    cfg.hotPageMigration = false;
    cfg.adaptiveReconfig = false;
    // Figure 1(b) is about flash *storage* (eNVy / flash file
    // systems), which cannot evict data — GC must always relocate.
    cfg.gcMinInvalidFraction = 0.0;
    FlashCache cache(ctrl, store, cfg);

    const auto live_pages = static_cast<Lba>(
        used_fraction * static_cast<double>(cache.capacityPages()));
    Rng rng(7);

    // Warm to the target occupancy, then measure steady state.
    for (Lba l = 0; l < live_pages; ++l)
        cache.write(l);
    const Seconds warm_gc = cache.stats().gcTime;
    const Seconds warm_busy = cache.stats().flashBusyTime;

    const std::uint64_t ops = 4 * cache.capacityPages();
    for (std::uint64_t i = 0; i < ops; ++i)
        cache.write(rng.uniformInt(live_pages));

    // Overhead = GC time relative to useful (non-GC) flash work;
    // this is the product of GC frequency and latency the paper
    // plots, and it diverges as free space vanishes.
    const Seconds gc = cache.stats().gcTime - warm_gc;
    const Seconds busy = cache.stats().flashBusyTime - warm_busy;
    const Seconds useful = busy - gc;
    return useful > 0.0 ? gc / useful : 0.0;
}

} // namespace

int
main()
{
    std::printf("=== Figure 1(b): GC overhead vs used flash space ===\n");
    std::printf("(steady-state uniform overwrites of the live set; "
                "normalized so 10%% time overhead = 1.0)\n\n");
    std::printf("%12s %16s %12s\n", "used space", "GC/useful work",
                "normalized");
    for (const double u : {0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70,
                           0.80, 0.85, 0.90, 0.95}) {
        const double overhead = gcOverheadAtOccupancy(u);
        std::printf("%11.0f%% %15.1f%% %12.2f\n", u * 100.0,
                    overhead * 100.0, overhead / 0.10);
    }
    std::printf("\nExpected shape: negligible below ~50%%, a knee past "
                "80%%, overwhelming by ~95%%.\n");
    return 0;
}
