/**
 * @file
 * Ablation: wear-level-aware replacement (section 3.6).
 *
 * Compares erase-count spread and device lifetime with wear-leveling
 * disabled, and across migration thresholds. The policy erases all
 * blocks more uniformly at the cost of occasional content
 * migrations, which is exactly what buys lifetime on skewed
 * workloads.
 */

#include <algorithm>
#include <cstdio>

#include "core/flash_cache.hh"
#include "workload/synthetic.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

struct Result
{
    double maxOverMeanErase;
    std::uint64_t migrations;
    std::uint64_t accessesToFirstRetire;
};

Result
run(bool wear_leveling, double threshold)
{
    WearParams wear;
    wear.nominalCycles = 120;
    wear.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wear);

    FlashGeometry geom;
    geom.numBlocks = 32;
    geom.framesPerBlock = 16;
    FlashDevice device(geom, FlashTiming(), lifetime, 77);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.wearLeveling = wear_leveling;
    cfg.wearThreshold = threshold;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    // Skewed traffic: hot overwrites plus a cold resident set.
    Rng rng(5);
    ZipfSampler zipf(800, 1.3);
    Result out{};
    std::uint64_t n = 0;
    while (n < 3000000) {
        const Lba l = zipf.sample(rng);
        if (rng.bernoulli(0.5))
            cache.write(l);
        else
            cache.read(l);
        ++n;
        if (cache.stats().retiredBlocks > 0) {
            out.accessesToFirstRetire = n;
            break;
        }
    }
    if (out.accessesToFirstRetire == 0)
        out.accessesToFirstRetire = n; // survived the whole run

    std::uint32_t max_e = 0;
    std::uint64_t sum_e = 0;
    for (std::uint32_t b = 0; b < geom.numBlocks; ++b) {
        max_e = std::max(max_e, device.blockEraseCount(b));
        sum_e += device.blockEraseCount(b);
    }
    const double mean = static_cast<double>(sum_e) / geom.numBlocks;
    out.maxOverMeanErase = mean > 0 ? max_e / mean : 0.0;
    out.migrations = cache.stats().wearMigrations;
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: wear-level aware replacement "
                "(zipf 1.3, 50%% writes, accelerated wear) ===\n\n");
    std::printf("%-22s %14s %12s %22s\n", "configuration",
                "max/mean erase", "migrations", "accesses to 1st "
                "retire");

    const Result off = run(false, 0.0);
    std::printf("%-22s %14.2f %12llu %22llu\n", "wear-leveling OFF",
                off.maxOverMeanErase,
                static_cast<unsigned long long>(off.migrations),
                static_cast<unsigned long long>(
                    off.accessesToFirstRetire));

    for (const double thr : {256.0, 64.0, 16.0}) {
        const Result on = run(true, thr);
        std::printf("threshold %-12.0f %14.2f %12llu %22llu\n", thr,
                    on.maxOverMeanErase,
                    static_cast<unsigned long long>(on.migrations),
                    static_cast<unsigned long long>(
                        on.accessesToFirstRetire));
    }

    std::printf("\nLower thresholds level erases more tightly (more "
                "migrations) and postpone the first\nblock retirement "
                "— the section 3.6 trade-off.\n");
    return 0;
}
