/**
 * @file
 * Figure 10: average throughput (relative bandwidth) as a function
 * of uniform BCH code strength, for SPECWeb99 and dbt2 on a 256 MB
 * DRAM + 1 GB flash system (scaled 1/4 here).
 *
 * Every flash page runs the same ECC strength, as the paper assumes;
 * strengths beyond the controller's 12-bit limit extrapolate the
 * accelerator model, exactly as the paper measured "code strengths
 * beyond our Flash memory controller's capabilities to fully capture
 * the performance trends".
 */

#include <cstdio>
#include <vector>

#include "sim/system_sim.hh"
#include "workload/macro.hh"

using namespace flashcache;

namespace {

double
throughputAt(const char* workload, std::uint8_t strength)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(32);   // 256 MB / 8
    cfg.flashBytes = mib(128); // 1 GB / 8
    cfg.uniformEccStrength = strength;
    cfg.seed = 19;
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig(workload, 0.125));
    // Warm the flash tier fully so throughput reflects the flash
    // access path (the paper's runs were warmed snapshots).
    sim.run(*gen, 2500000);
    return sim.stats().throughput();
}

} // namespace

int
main()
{
    std::printf("=== Figure 10: relative bandwidth vs uniform BCH "
                "strength (x0.125 scale) ===\n\n");
    const std::vector<std::uint8_t> strengths =
        {0, 1, 5, 10, 15, 20, 30, 40, 50};

    for (const char* wl : {"SPECWeb99", "dbt2"}) {
        std::printf("--- %s ---\n", wl);
        std::printf("%10s %22s\n", "strength", "relative bandwidth");
        const double base = throughputAt(wl, 1);
        for (const std::uint8_t t : strengths) {
            std::printf("%10u %22.3f\n", t, throughputAt(wl, t) / base);
        }
        std::printf("\n");
    }
    std::printf("Expected shape: throughput degrades slowly with code "
                "strength once the ECC engine becomes\nthe binding "
                "resource. t=0 runs *below* t=1: unprotected pages die "
                "at the first bad cell and\nretire whole blocks "
                "(section 5.2), shrinking the cache. In our bottleneck "
                "model dbt2 stays\ndisk-bound across the sweep, so its "
                "curve is flatter than the paper's (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
