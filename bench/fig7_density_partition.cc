/**
 * @file
 * Figure 7: optimal SLC/MLC partition and the resulting average
 * access latency versus flash die area, for the Financial2 and
 * WebSearch1 trace models.
 *
 * Methodology mirrors section 4.2: take the trace's page popularity
 * profile, and for each die area evaluate every SLC fraction f —
 * SLC cells are twice the area of MLC but read twice as fast — with
 * the hottest resident pages placed in the SLC region. Report the
 * latency-minimizing partition. Workloads run at 1/4 footprint
 * scale; the x-axis area is scaled to match so the shapes align with
 * the paper's 0-100 mm^2 (Financial2) and 0-1000 mm^2 (WebSearch1)
 * ranges.
 */

#include <cstdio>
#include <vector>

#include "flash/flash_spec.hh"
#include "workload/macro.hh"
#include "workload/stack_distance.hh"

using namespace flashcache;

namespace {

struct Point
{
    double latencyUs;
    double slcFraction; ///< of die area
};

/** Average access latency with the given partition, hottest pages in
 *  SLC, next-hottest in MLC, the rest on disk. */
double
avgLatencyUs(const std::vector<std::uint64_t>& pop,
             std::uint64_t slc_pages, std::uint64_t mlc_pages)
{
    const FlashTiming ft;
    const DiskSpec disk;
    double total = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < pop.size(); ++i) {
        const double cnt = static_cast<double>(pop[i]);
        total += cnt;
        Seconds lat;
        if (i < slc_pages)
            lat = ft.slcReadLatency;
        else if (i < slc_pages + mlc_pages)
            lat = ft.mlcReadLatency;
        else
            lat = disk.avgAccessLatency;
        weighted += cnt * lat;
    }
    return total > 0.0 ? weighted / total * 1e6 : 0.0;
}

Point
bestPartition(const std::vector<std::uint64_t>& pop, double area_mm2,
              const FlashAreaModel& am)
{
    Point best{1e18, 0.0};
    for (int i = 0; i <= 20; ++i) {
        const double f = i / 20.0;
        const double slc_area = area_mm2 * f;
        const std::uint64_t slc_pages =
            am.capacityBytes(slc_area, 1.0) / 2048;
        const std::uint64_t mlc_pages =
            am.capacityBytes(area_mm2 - slc_area, 0.0) / 2048;
        const double lat = avgLatencyUs(pop, slc_pages, mlc_pages);
        if (lat < best.latencyUs)
            best = {lat, f};
    }
    return best;
}

void
runWorkload(const char* name, double scale, int area_points)
{
    const MacroConfig cfg = macroConfig(name, scale);
    auto gen = makeMacro(cfg);
    Rng rng(17);

    // Sample enough accesses to shape the popularity profile.
    std::vector<Lba> reads;
    const std::uint64_t samples = 4000000;
    for (std::uint64_t i = 0; i < samples; ++i) {
        const TraceRecord r = gen->next(rng);
        if (!r.isWrite)
            reads.push_back(r.lba);
    }
    const auto pop = popularityProfile(reads);

    const FlashAreaModel am;
    const double ws_bytes = static_cast<double>(cfg.readPages) * 2048.0;
    const double max_area = am.areaForMlcBytes(
        static_cast<std::uint64_t>(ws_bytes));

    std::printf("\n%s: working set %.1f MB (x%.2f scale), area sweep to "
                "%.0f mm^2 (paper: x%.0f)\n", name,
                ws_bytes / (1024 * 1024), scale, max_area, 1.0 / scale);
    std::printf("%14s %16s %18s\n", "area (mm^2)", "latency (us)",
                "optimal SLC frac");
    for (int i = 1; i <= area_points; ++i) {
        const double area = max_area * i / area_points;
        const Point p = bestPartition(pop, area, am);
        std::printf("%14.1f %16.1f %17.0f%%\n", area, p.latencyUs,
                    p.slcFraction * 100.0);
    }
}

} // namespace

int
main()
{
    std::printf("=== Figure 7: optimal access latency and SLC/MLC "
                "partition vs die area ===\n");

    runWorkload("Financial2", 0.25, 10);
    runWorkload("WebSearch1", 0.25, 10);

    std::printf("\nExpected shape: latency falls with area; the optimal "
                "partition is hybrid, trending to all-SLC\nas the cache "
                "approaches the working set. Financial2 (short tail) "
                "prefers mostly SLC at half the\nworking set; WebSearch1 "
                "(long tail) stays mostly MLC until capacity nears the "
                "working set.\n");
    return 0;
}
