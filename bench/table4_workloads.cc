/**
 * @file
 * Table 4: the benchmark catalog, with measured characteristics of
 * each generator (write fraction, footprint) from a short sample
 * trace so the substitution models can be audited at a glance.
 */

#include <cstdio>

#include "workload/macro.hh"
#include "workload/synthetic.hh"

using namespace flashcache;

namespace {

void
row(const std::string& name, const std::string& type,
    const std::string& desc, WorkloadGenerator& gen)
{
    Rng rng(11);
    const Trace t = gen.generate(rng, 50000);
    const TraceSummary s = summarizeTrace(t);
    std::printf("%-12s %-7s %6.1f%%wr %8.1f MB max   %s\n", name.c_str(),
                type.c_str(), 100.0 * s.writeFraction(),
                static_cast<double>(gen.workingSetPages()) * 2048.0 /
                    (1024 * 1024),
                desc.c_str());
}

} // namespace

int
main()
{
    std::printf("=== Table 4: benchmark descriptions (measured from "
                "50k-record samples) ===\n\n");
    std::printf("%-12s %-7s %9s %12s      %s\n", "name", "type",
                "writes", "footprint", "description");

    for (const auto& cfg : table4MicroConfigs()) {
        auto gen = makeSynthetic(cfg);
        std::string desc;
        switch (cfg.shape) {
          case TailShape::Uniform:
            desc = "uniform distribution of size 512MB";
            break;
          case TailShape::Zipf:
            desc = "zipf distribution of size 512MB, alpha=" +
                std::to_string(cfg.alpha).substr(0, 3);
            break;
          case TailShape::Exponential:
            desc = "exponential distribution of size 512MB, lambda=" +
                std::to_string(cfg.lambda).substr(0, 4);
            break;
        }
        row(cfg.name, "micro", desc, *gen);
    }

    for (const auto& cfg : table4MacroConfigs()) {
        auto gen = makeMacro(cfg);
        row(cfg.name, "macro", cfg.description, *gen);
    }

    std::printf("\nMacro generators are characteristic-matched stand-ins "
                "for dbt2/SPECWeb99 runs and the\nUMass WebSearch/"
                "Financial traces (see DESIGN.md substitutions).\n");
    return 0;
}
