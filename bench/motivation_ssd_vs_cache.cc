/**
 * @file
 * Section 2.2's motivating comparison: flash as a solid-state disk
 * (page-mapped FTL, the eNVy [26] design) versus flash as a disk
 * cache, on the same device and the same traffic.
 *
 * The paper's two arguments, made executable:
 *  1. GC overhead: the SSD can never evict, so its garbage collection
 *     grows with utilization until only ~80% of the capacity is
 *     usable; the cache evicts cold blocks and keeps GC bounded.
 *  2. Metadata: the FTL's mapping table covers the whole logical
 *     space; the cache's tables are bounded by the flash size
 *     (< 2% of it, section 3).
 */

#include <cstdio>

#include "core/flash_cache.hh"
#include "ssd/ftl.hh"
#include "util/rng.hh"

using namespace flashcache;

namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

WearParams
noWear()
{
    WearParams wp;
    wp.nominalCycles = 1e9;
    return wp;
}

double
ssdGcOverhead(double utilization)
{
    CellLifetimeModel lifetime(noWear());
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(32));
    FlashDevice device(geom, FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    const auto logical = static_cast<std::uint64_t>(
        utilization * static_cast<double>(geom.numBlocks) *
        geom.framesPerBlock * 2);
    FlashTranslationLayer ftl(ctrl, logical);

    Rng rng(7);
    for (Lba l = 0; l < logical; ++l)
        ftl.write(l);
    for (std::uint64_t i = 0; i < 4ull * logical; ++i)
        ftl.write(rng.uniformInt(logical));
    return ftl.stats().gcOverheadFraction();
}

double
cacheGcOverhead(double utilization)
{
    CellLifetimeModel lifetime(noWear());
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(32));
    FlashDevice device(geom, FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    const auto live = static_cast<Lba>(
        utilization * static_cast<double>(cache.capacityPages()));
    Rng rng(7);
    for (Lba l = 0; l < live; ++l)
        cache.write(l);
    for (std::uint64_t i = 0; i < 4ull * live; ++i)
        cache.write(rng.uniformInt(live));
    const Seconds useful =
        cache.stats().flashBusyTime - cache.stats().gcTime;
    return useful > 0.0 ? cache.stats().gcTime / useful : 0.0;
}

} // namespace

int
main()
{
    std::printf("=== Section 2.2: flash-as-SSD (eNVy-style FTL) vs "
                "flash-as-disk-cache ===\n\n");
    std::printf("--- GC overhead (GC time / useful time) under "
                "uniform overwrites, 32 MB flash ---\n");
    std::printf("%12s %14s %18s\n", "live data", "SSD (FTL)",
                "disk cache");
    for (const double u : {0.50, 0.70, 0.80, 0.90, 0.94}) {
        std::printf("%11.0f%% %13.1f%% %17.1f%%\n", u * 100.0,
                    100.0 * ssdGcOverhead(u),
                    100.0 * cacheGcOverhead(u));
    }

    // Metadata comparison at server scale (computed, not simulated).
    std::printf("\n--- DRAM metadata for a 32 GB flash in front of a "
                "1 TB disk ---\n");
    const double ftl_bytes = (1024.0 * 1024 * 1024 * 1024 / 2048) * 8;
    const double cache_bytes = 32.0 * 1024 * 1024 * 1024 * 0.02;
    std::printf("%-34s %8.1f GB (8 B per logical page of the disk)\n",
                "SSD/file system mapping", ftl_bytes / (1 << 30));
    std::printf("%-34s %8.1f GB (~2%% of the flash, section 3)\n",
                "disk cache tables (FCHT/FPST/...)",
                cache_bytes / (1 << 30));

    std::printf("\nExpected shape: the FTL's GC overhead explodes past "
                "~80%% utilization while the cache's\nstays bounded "
                "(it may evict); the cache's metadata is bounded by "
                "the flash, not the disk.\n");
    return 0;
}
