
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_lifetime.cc" "bench-build/CMakeFiles/fig12_lifetime.dir/fig12_lifetime.cc.o" "gcc" "bench-build/CMakeFiles/fig12_lifetime.dir/fig12_lifetime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/fc_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/fc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/fc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/fc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/fc_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fc_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
