# Empty compiler generated dependencies file for fig12_lifetime.
# This may be replaced when dependencies are built.
