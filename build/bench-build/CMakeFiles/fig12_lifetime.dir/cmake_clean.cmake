file(REMOVE_RECURSE
  "../bench/fig12_lifetime"
  "../bench/fig12_lifetime.pdb"
  "CMakeFiles/fig12_lifetime.dir/fig12_lifetime.cc.o"
  "CMakeFiles/fig12_lifetime.dir/fig12_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
