file(REMOVE_RECURSE
  "../bench/fig9_power_bandwidth"
  "../bench/fig9_power_bandwidth.pdb"
  "CMakeFiles/fig9_power_bandwidth.dir/fig9_power_bandwidth.cc.o"
  "CMakeFiles/fig9_power_bandwidth.dir/fig9_power_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_power_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
