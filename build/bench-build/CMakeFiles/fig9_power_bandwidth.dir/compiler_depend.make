# Empty compiler generated dependencies file for fig9_power_bandwidth.
# This may be replaced when dependencies are built.
