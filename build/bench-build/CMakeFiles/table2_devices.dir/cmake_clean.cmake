file(REMOVE_RECURSE
  "../bench/table2_devices"
  "../bench/table2_devices.pdb"
  "CMakeFiles/table2_devices.dir/table2_devices.cc.o"
  "CMakeFiles/table2_devices.dir/table2_devices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
