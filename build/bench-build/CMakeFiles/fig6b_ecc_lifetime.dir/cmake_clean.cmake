file(REMOVE_RECURSE
  "../bench/fig6b_ecc_lifetime"
  "../bench/fig6b_ecc_lifetime.pdb"
  "CMakeFiles/fig6b_ecc_lifetime.dir/fig6b_ecc_lifetime.cc.o"
  "CMakeFiles/fig6b_ecc_lifetime.dir/fig6b_ecc_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_ecc_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
