# Empty dependencies file for fig6b_ecc_lifetime.
# This may be replaced when dependencies are built.
