file(REMOVE_RECURSE
  "../bench/table1_roadmap"
  "../bench/table1_roadmap.pdb"
  "CMakeFiles/table1_roadmap.dir/table1_roadmap.cc.o"
  "CMakeFiles/table1_roadmap.dir/table1_roadmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
