# Empty dependencies file for table1_roadmap.
# This may be replaced when dependencies are built.
