file(REMOVE_RECURSE
  "../bench/fig10_ecc_throughput"
  "../bench/fig10_ecc_throughput.pdb"
  "CMakeFiles/fig10_ecc_throughput.dir/fig10_ecc_throughput.cc.o"
  "CMakeFiles/fig10_ecc_throughput.dir/fig10_ecc_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ecc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
