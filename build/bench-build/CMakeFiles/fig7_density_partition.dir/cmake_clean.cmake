file(REMOVE_RECURSE
  "../bench/fig7_density_partition"
  "../bench/fig7_density_partition.pdb"
  "CMakeFiles/fig7_density_partition.dir/fig7_density_partition.cc.o"
  "CMakeFiles/fig7_density_partition.dir/fig7_density_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_density_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
