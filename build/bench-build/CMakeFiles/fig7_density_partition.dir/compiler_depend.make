# Empty compiler generated dependencies file for fig7_density_partition.
# This may be replaced when dependencies are built.
