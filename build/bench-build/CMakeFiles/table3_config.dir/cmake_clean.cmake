file(REMOVE_RECURSE
  "../bench/table3_config"
  "../bench/table3_config.pdb"
  "CMakeFiles/table3_config.dir/table3_config.cc.o"
  "CMakeFiles/table3_config.dir/table3_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
