file(REMOVE_RECURSE
  "../bench/motivation_ssd_vs_cache"
  "../bench/motivation_ssd_vs_cache.pdb"
  "CMakeFiles/motivation_ssd_vs_cache.dir/motivation_ssd_vs_cache.cc.o"
  "CMakeFiles/motivation_ssd_vs_cache.dir/motivation_ssd_vs_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_ssd_vs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
