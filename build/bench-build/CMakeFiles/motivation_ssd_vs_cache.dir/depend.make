# Empty dependencies file for motivation_ssd_vs_cache.
# This may be replaced when dependencies are built.
