file(REMOVE_RECURSE
  "../bench/fig11_reconfig_breakdown"
  "../bench/fig11_reconfig_breakdown.pdb"
  "CMakeFiles/fig11_reconfig_breakdown.dir/fig11_reconfig_breakdown.cc.o"
  "CMakeFiles/fig11_reconfig_breakdown.dir/fig11_reconfig_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reconfig_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
