# Empty dependencies file for fig11_reconfig_breakdown.
# This may be replaced when dependencies are built.
