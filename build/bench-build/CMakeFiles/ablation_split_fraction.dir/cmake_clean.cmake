file(REMOVE_RECURSE
  "../bench/ablation_split_fraction"
  "../bench/ablation_split_fraction.pdb"
  "CMakeFiles/ablation_split_fraction.dir/ablation_split_fraction.cc.o"
  "CMakeFiles/ablation_split_fraction.dir/ablation_split_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
