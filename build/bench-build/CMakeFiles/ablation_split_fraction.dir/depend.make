# Empty dependencies file for ablation_split_fraction.
# This may be replaced when dependencies are built.
