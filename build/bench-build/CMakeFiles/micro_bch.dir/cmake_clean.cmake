file(REMOVE_RECURSE
  "../bench/micro_bch"
  "../bench/micro_bch.pdb"
  "CMakeFiles/micro_bch.dir/micro_bch.cc.o"
  "CMakeFiles/micro_bch.dir/micro_bch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
