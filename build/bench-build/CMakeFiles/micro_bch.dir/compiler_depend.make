# Empty compiler generated dependencies file for micro_bch.
# This may be replaced when dependencies are built.
