# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_split_miss_rate.
