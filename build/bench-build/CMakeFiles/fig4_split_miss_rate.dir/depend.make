# Empty dependencies file for fig4_split_miss_rate.
# This may be replaced when dependencies are built.
