# Empty dependencies file for ext_roadmap_lifetime.
# This may be replaced when dependencies are built.
