file(REMOVE_RECURSE
  "../bench/ext_roadmap_lifetime"
  "../bench/ext_roadmap_lifetime.pdb"
  "CMakeFiles/ext_roadmap_lifetime.dir/ext_roadmap_lifetime.cc.o"
  "CMakeFiles/ext_roadmap_lifetime.dir/ext_roadmap_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_roadmap_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
