file(REMOVE_RECURSE
  "../bench/table4_workloads"
  "../bench/table4_workloads.pdb"
  "CMakeFiles/table4_workloads.dir/table4_workloads.cc.o"
  "CMakeFiles/table4_workloads.dir/table4_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
