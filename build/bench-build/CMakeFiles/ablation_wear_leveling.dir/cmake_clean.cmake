file(REMOVE_RECURSE
  "../bench/ablation_wear_leveling"
  "../bench/ablation_wear_leveling.pdb"
  "CMakeFiles/ablation_wear_leveling.dir/ablation_wear_leveling.cc.o"
  "CMakeFiles/ablation_wear_leveling.dir/ablation_wear_leveling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
