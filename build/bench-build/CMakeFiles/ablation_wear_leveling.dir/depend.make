# Empty dependencies file for ablation_wear_leveling.
# This may be replaced when dependencies are built.
