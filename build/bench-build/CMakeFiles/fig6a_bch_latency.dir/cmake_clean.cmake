file(REMOVE_RECURSE
  "../bench/fig6a_bch_latency"
  "../bench/fig6a_bch_latency.pdb"
  "CMakeFiles/fig6a_bch_latency.dir/fig6a_bch_latency.cc.o"
  "CMakeFiles/fig6a_bch_latency.dir/fig6a_bch_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_bch_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
