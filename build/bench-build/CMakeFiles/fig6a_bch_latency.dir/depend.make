# Empty dependencies file for fig6a_bch_latency.
# This may be replaced when dependencies are built.
