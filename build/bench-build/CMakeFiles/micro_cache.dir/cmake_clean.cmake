file(REMOVE_RECURSE
  "../bench/micro_cache"
  "../bench/micro_cache.pdb"
  "CMakeFiles/micro_cache.dir/micro_cache.cc.o"
  "CMakeFiles/micro_cache.dir/micro_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
