# Empty compiler generated dependencies file for fig1b_gc_overhead.
# This may be replaced when dependencies are built.
