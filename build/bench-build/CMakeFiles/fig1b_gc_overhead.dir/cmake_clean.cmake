file(REMOVE_RECURSE
  "../bench/fig1b_gc_overhead"
  "../bench/fig1b_gc_overhead.pdb"
  "CMakeFiles/fig1b_gc_overhead.dir/fig1b_gc_overhead.cc.o"
  "CMakeFiles/fig1b_gc_overhead.dir/fig1b_gc_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_gc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
