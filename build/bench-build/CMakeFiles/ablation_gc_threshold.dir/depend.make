# Empty dependencies file for ablation_gc_threshold.
# This may be replaced when dependencies are built.
