file(REMOVE_RECURSE
  "../bench/ablation_gc_threshold"
  "../bench/ablation_gc_threshold.pdb"
  "CMakeFiles/ablation_gc_threshold.dir/ablation_gc_threshold.cc.o"
  "CMakeFiles/ablation_gc_threshold.dir/ablation_gc_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gc_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
