
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/page_health.cc" "src/reliability/CMakeFiles/fc_reliability.dir/page_health.cc.o" "gcc" "src/reliability/CMakeFiles/fc_reliability.dir/page_health.cc.o.d"
  "/root/repo/src/reliability/wear_model.cc" "src/reliability/CMakeFiles/fc_reliability.dir/wear_model.cc.o" "gcc" "src/reliability/CMakeFiles/fc_reliability.dir/wear_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
