file(REMOVE_RECURSE
  "CMakeFiles/fc_reliability.dir/page_health.cc.o"
  "CMakeFiles/fc_reliability.dir/page_health.cc.o.d"
  "CMakeFiles/fc_reliability.dir/wear_model.cc.o"
  "CMakeFiles/fc_reliability.dir/wear_model.cc.o.d"
  "libfc_reliability.a"
  "libfc_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
