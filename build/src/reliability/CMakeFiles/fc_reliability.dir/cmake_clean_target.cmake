file(REMOVE_RECURSE
  "libfc_reliability.a"
)
