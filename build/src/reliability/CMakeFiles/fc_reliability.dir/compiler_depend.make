# Empty compiler generated dependencies file for fc_reliability.
# This may be replaced when dependencies are built.
