# Empty compiler generated dependencies file for fc_controller.
# This may be replaced when dependencies are built.
