file(REMOVE_RECURSE
  "CMakeFiles/fc_controller.dir/memory_controller.cc.o"
  "CMakeFiles/fc_controller.dir/memory_controller.cc.o.d"
  "CMakeFiles/fc_controller.dir/reconfig_policy.cc.o"
  "CMakeFiles/fc_controller.dir/reconfig_policy.cc.o.d"
  "libfc_controller.a"
  "libfc_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
