file(REMOVE_RECURSE
  "libfc_controller.a"
)
