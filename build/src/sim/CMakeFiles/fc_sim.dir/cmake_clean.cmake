file(REMOVE_RECURSE
  "CMakeFiles/fc_sim.dir/power_report.cc.o"
  "CMakeFiles/fc_sim.dir/power_report.cc.o.d"
  "CMakeFiles/fc_sim.dir/system_sim.cc.o"
  "CMakeFiles/fc_sim.dir/system_sim.cc.o.d"
  "libfc_sim.a"
  "libfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
