# Empty dependencies file for fc_ecc.
# This may be replaced when dependencies are built.
