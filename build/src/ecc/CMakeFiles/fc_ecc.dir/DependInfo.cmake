
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cc" "src/ecc/CMakeFiles/fc_ecc.dir/bch.cc.o" "gcc" "src/ecc/CMakeFiles/fc_ecc.dir/bch.cc.o.d"
  "/root/repo/src/ecc/crc32.cc" "src/ecc/CMakeFiles/fc_ecc.dir/crc32.cc.o" "gcc" "src/ecc/CMakeFiles/fc_ecc.dir/crc32.cc.o.d"
  "/root/repo/src/ecc/ecc_timing.cc" "src/ecc/CMakeFiles/fc_ecc.dir/ecc_timing.cc.o" "gcc" "src/ecc/CMakeFiles/fc_ecc.dir/ecc_timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/fc_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
