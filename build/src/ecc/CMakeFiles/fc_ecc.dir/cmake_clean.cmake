file(REMOVE_RECURSE
  "CMakeFiles/fc_ecc.dir/bch.cc.o"
  "CMakeFiles/fc_ecc.dir/bch.cc.o.d"
  "CMakeFiles/fc_ecc.dir/crc32.cc.o"
  "CMakeFiles/fc_ecc.dir/crc32.cc.o.d"
  "CMakeFiles/fc_ecc.dir/ecc_timing.cc.o"
  "CMakeFiles/fc_ecc.dir/ecc_timing.cc.o.d"
  "libfc_ecc.a"
  "libfc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
