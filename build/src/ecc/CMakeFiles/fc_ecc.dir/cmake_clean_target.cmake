file(REMOVE_RECURSE
  "libfc_ecc.a"
)
