file(REMOVE_RECURSE
  "CMakeFiles/fc_gf.dir/gf2_poly.cc.o"
  "CMakeFiles/fc_gf.dir/gf2_poly.cc.o.d"
  "CMakeFiles/fc_gf.dir/gf2m.cc.o"
  "CMakeFiles/fc_gf.dir/gf2m.cc.o.d"
  "CMakeFiles/fc_gf.dir/gf_poly.cc.o"
  "CMakeFiles/fc_gf.dir/gf_poly.cc.o.d"
  "libfc_gf.a"
  "libfc_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
