# Empty compiler generated dependencies file for fc_gf.
# This may be replaced when dependencies are built.
