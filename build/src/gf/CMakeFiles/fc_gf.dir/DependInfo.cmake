
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/gf2_poly.cc" "src/gf/CMakeFiles/fc_gf.dir/gf2_poly.cc.o" "gcc" "src/gf/CMakeFiles/fc_gf.dir/gf2_poly.cc.o.d"
  "/root/repo/src/gf/gf2m.cc" "src/gf/CMakeFiles/fc_gf.dir/gf2m.cc.o" "gcc" "src/gf/CMakeFiles/fc_gf.dir/gf2m.cc.o.d"
  "/root/repo/src/gf/gf_poly.cc" "src/gf/CMakeFiles/fc_gf.dir/gf_poly.cc.o" "gcc" "src/gf/CMakeFiles/fc_gf.dir/gf_poly.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
