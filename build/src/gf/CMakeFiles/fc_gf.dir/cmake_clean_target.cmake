file(REMOVE_RECURSE
  "libfc_gf.a"
)
