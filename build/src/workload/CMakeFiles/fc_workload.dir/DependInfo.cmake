
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/macro.cc" "src/workload/CMakeFiles/fc_workload.dir/macro.cc.o" "gcc" "src/workload/CMakeFiles/fc_workload.dir/macro.cc.o.d"
  "/root/repo/src/workload/stack_distance.cc" "src/workload/CMakeFiles/fc_workload.dir/stack_distance.cc.o" "gcc" "src/workload/CMakeFiles/fc_workload.dir/stack_distance.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/fc_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/fc_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/fc_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/fc_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
