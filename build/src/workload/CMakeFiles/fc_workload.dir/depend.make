# Empty dependencies file for fc_workload.
# This may be replaced when dependencies are built.
