file(REMOVE_RECURSE
  "CMakeFiles/fc_workload.dir/macro.cc.o"
  "CMakeFiles/fc_workload.dir/macro.cc.o.d"
  "CMakeFiles/fc_workload.dir/stack_distance.cc.o"
  "CMakeFiles/fc_workload.dir/stack_distance.cc.o.d"
  "CMakeFiles/fc_workload.dir/synthetic.cc.o"
  "CMakeFiles/fc_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/fc_workload.dir/trace.cc.o"
  "CMakeFiles/fc_workload.dir/trace.cc.o.d"
  "libfc_workload.a"
  "libfc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
