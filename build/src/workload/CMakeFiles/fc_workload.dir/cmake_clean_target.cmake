file(REMOVE_RECURSE
  "libfc_workload.a"
)
