file(REMOVE_RECURSE
  "libfc_util.a"
)
