file(REMOVE_RECURSE
  "CMakeFiles/fc_util.dir/log.cc.o"
  "CMakeFiles/fc_util.dir/log.cc.o.d"
  "CMakeFiles/fc_util.dir/mathx.cc.o"
  "CMakeFiles/fc_util.dir/mathx.cc.o.d"
  "CMakeFiles/fc_util.dir/rng.cc.o"
  "CMakeFiles/fc_util.dir/rng.cc.o.d"
  "CMakeFiles/fc_util.dir/serialize.cc.o"
  "CMakeFiles/fc_util.dir/serialize.cc.o.d"
  "CMakeFiles/fc_util.dir/stats.cc.o"
  "CMakeFiles/fc_util.dir/stats.cc.o.d"
  "libfc_util.a"
  "libfc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
