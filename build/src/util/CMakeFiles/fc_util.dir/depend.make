# Empty dependencies file for fc_util.
# This may be replaced when dependencies are built.
