file(REMOVE_RECURSE
  "libfc_flash.a"
)
