file(REMOVE_RECURSE
  "CMakeFiles/fc_flash.dir/flash_device.cc.o"
  "CMakeFiles/fc_flash.dir/flash_device.cc.o.d"
  "CMakeFiles/fc_flash.dir/flash_spec.cc.o"
  "CMakeFiles/fc_flash.dir/flash_spec.cc.o.d"
  "libfc_flash.a"
  "libfc_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
