# Empty dependencies file for fc_flash.
# This may be replaced when dependencies are built.
