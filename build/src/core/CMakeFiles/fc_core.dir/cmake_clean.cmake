file(REMOVE_RECURSE
  "CMakeFiles/fc_core.dir/flash_cache.cc.o"
  "CMakeFiles/fc_core.dir/flash_cache.cc.o.d"
  "CMakeFiles/fc_core.dir/tables.cc.o"
  "CMakeFiles/fc_core.dir/tables.cc.o.d"
  "libfc_core.a"
  "libfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
