
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/disk.cc" "src/devices/CMakeFiles/fc_devices.dir/disk.cc.o" "gcc" "src/devices/CMakeFiles/fc_devices.dir/disk.cc.o.d"
  "/root/repo/src/devices/dram.cc" "src/devices/CMakeFiles/fc_devices.dir/dram.cc.o" "gcc" "src/devices/CMakeFiles/fc_devices.dir/dram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/fc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/fc_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
