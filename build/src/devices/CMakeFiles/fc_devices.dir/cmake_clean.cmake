file(REMOVE_RECURSE
  "CMakeFiles/fc_devices.dir/disk.cc.o"
  "CMakeFiles/fc_devices.dir/disk.cc.o.d"
  "CMakeFiles/fc_devices.dir/dram.cc.o"
  "CMakeFiles/fc_devices.dir/dram.cc.o.d"
  "libfc_devices.a"
  "libfc_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
