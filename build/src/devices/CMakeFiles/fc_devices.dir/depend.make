# Empty dependencies file for fc_devices.
# This may be replaced when dependencies are built.
