file(REMOVE_RECURSE
  "libfc_devices.a"
)
