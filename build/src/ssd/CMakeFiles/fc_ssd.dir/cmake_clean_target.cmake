file(REMOVE_RECURSE
  "libfc_ssd.a"
)
