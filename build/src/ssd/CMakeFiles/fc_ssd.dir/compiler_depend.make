# Empty compiler generated dependencies file for fc_ssd.
# This may be replaced when dependencies are built.
