file(REMOVE_RECURSE
  "CMakeFiles/fc_ssd.dir/ftl.cc.o"
  "CMakeFiles/fc_ssd.dir/ftl.cc.o.d"
  "libfc_ssd.a"
  "libfc_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
