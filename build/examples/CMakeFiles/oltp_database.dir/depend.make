# Empty dependencies file for oltp_database.
# This may be replaced when dependencies are built.
