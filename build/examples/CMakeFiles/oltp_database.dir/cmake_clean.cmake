file(REMOVE_RECURSE
  "CMakeFiles/oltp_database.dir/oltp_database.cpp.o"
  "CMakeFiles/oltp_database.dir/oltp_database.cpp.o.d"
  "oltp_database"
  "oltp_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
