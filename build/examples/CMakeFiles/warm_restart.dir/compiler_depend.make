# Empty compiler generated dependencies file for warm_restart.
# This may be replaced when dependencies are built.
