file(REMOVE_RECURSE
  "CMakeFiles/warm_restart.dir/warm_restart.cpp.o"
  "CMakeFiles/warm_restart.dir/warm_restart.cpp.o.d"
  "warm_restart"
  "warm_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
