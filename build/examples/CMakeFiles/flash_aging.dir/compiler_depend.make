# Empty compiler generated dependencies file for flash_aging.
# This may be replaced when dependencies are built.
