file(REMOVE_RECURSE
  "CMakeFiles/flash_aging.dir/flash_aging.cpp.o"
  "CMakeFiles/flash_aging.dir/flash_aging.cpp.o.d"
  "flash_aging"
  "flash_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
