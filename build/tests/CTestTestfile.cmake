# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/bch_test[1]_include.cmake")
include("/root/repo/build/tests/crc_test[1]_include.cmake")
include("/root/repo/build/tests/wear_model_test[1]_include.cmake")
include("/root/repo/build/tests/flash_device_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/tables_test[1]_include.cmake")
include("/root/repo/build/tests/flash_cache_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/system_sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/reconfig_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/soft_error_test[1]_include.cmake")
include("/root/repo/build/tests/config_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/bch_exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/real_data_cache_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/cross_validation_test[1]_include.cmake")
include("/root/repo/build/tests/reporting_test[1]_include.cmake")
include("/root/repo/build/tests/model_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/bad_block_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_test[1]_include.cmake")
