file(REMOVE_RECURSE
  "CMakeFiles/ftl_test.dir/ftl_test.cc.o"
  "CMakeFiles/ftl_test.dir/ftl_test.cc.o.d"
  "ftl_test"
  "ftl_test.pdb"
  "ftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
