# Empty dependencies file for model_agreement_test.
# This may be replaced when dependencies are built.
