file(REMOVE_RECURSE
  "CMakeFiles/model_agreement_test.dir/model_agreement_test.cc.o"
  "CMakeFiles/model_agreement_test.dir/model_agreement_test.cc.o.d"
  "model_agreement_test"
  "model_agreement_test.pdb"
  "model_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
