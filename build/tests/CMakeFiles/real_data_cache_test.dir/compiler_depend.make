# Empty compiler generated dependencies file for real_data_cache_test.
# This may be replaced when dependencies are built.
