file(REMOVE_RECURSE
  "CMakeFiles/real_data_cache_test.dir/real_data_cache_test.cc.o"
  "CMakeFiles/real_data_cache_test.dir/real_data_cache_test.cc.o.d"
  "real_data_cache_test"
  "real_data_cache_test.pdb"
  "real_data_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_data_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
