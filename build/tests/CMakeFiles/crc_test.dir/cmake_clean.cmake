file(REMOVE_RECURSE
  "CMakeFiles/crc_test.dir/crc_test.cc.o"
  "CMakeFiles/crc_test.dir/crc_test.cc.o.d"
  "crc_test"
  "crc_test.pdb"
  "crc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
