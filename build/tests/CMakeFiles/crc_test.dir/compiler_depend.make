# Empty compiler generated dependencies file for crc_test.
# This may be replaced when dependencies are built.
