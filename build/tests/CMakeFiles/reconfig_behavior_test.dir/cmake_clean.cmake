file(REMOVE_RECURSE
  "CMakeFiles/reconfig_behavior_test.dir/reconfig_behavior_test.cc.o"
  "CMakeFiles/reconfig_behavior_test.dir/reconfig_behavior_test.cc.o.d"
  "reconfig_behavior_test"
  "reconfig_behavior_test.pdb"
  "reconfig_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
