# Empty compiler generated dependencies file for reconfig_behavior_test.
# This may be replaced when dependencies are built.
