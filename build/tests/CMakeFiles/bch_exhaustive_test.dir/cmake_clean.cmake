file(REMOVE_RECURSE
  "CMakeFiles/bch_exhaustive_test.dir/bch_exhaustive_test.cc.o"
  "CMakeFiles/bch_exhaustive_test.dir/bch_exhaustive_test.cc.o.d"
  "bch_exhaustive_test"
  "bch_exhaustive_test.pdb"
  "bch_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bch_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
