# Empty dependencies file for bch_exhaustive_test.
# This may be replaced when dependencies are built.
