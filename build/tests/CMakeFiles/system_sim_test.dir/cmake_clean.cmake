file(REMOVE_RECURSE
  "CMakeFiles/system_sim_test.dir/system_sim_test.cc.o"
  "CMakeFiles/system_sim_test.dir/system_sim_test.cc.o.d"
  "system_sim_test"
  "system_sim_test.pdb"
  "system_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
