# Empty dependencies file for system_sim_test.
# This may be replaced when dependencies are built.
