file(REMOVE_RECURSE
  "CMakeFiles/bad_block_test.dir/bad_block_test.cc.o"
  "CMakeFiles/bad_block_test.dir/bad_block_test.cc.o.d"
  "bad_block_test"
  "bad_block_test.pdb"
  "bad_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bad_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
