# Empty dependencies file for bad_block_test.
# This may be replaced when dependencies are built.
