file(REMOVE_RECURSE
  "CMakeFiles/flash_device_test.dir/flash_device_test.cc.o"
  "CMakeFiles/flash_device_test.dir/flash_device_test.cc.o.d"
  "flash_device_test"
  "flash_device_test.pdb"
  "flash_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
