# Empty dependencies file for flash_device_test.
# This may be replaced when dependencies are built.
