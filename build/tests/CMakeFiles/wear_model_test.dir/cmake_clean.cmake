file(REMOVE_RECURSE
  "CMakeFiles/wear_model_test.dir/wear_model_test.cc.o"
  "CMakeFiles/wear_model_test.dir/wear_model_test.cc.o.d"
  "wear_model_test"
  "wear_model_test.pdb"
  "wear_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
