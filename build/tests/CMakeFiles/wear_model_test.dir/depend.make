# Empty dependencies file for wear_model_test.
# This may be replaced when dependencies are built.
