# Empty dependencies file for soft_error_test.
# This may be replaced when dependencies are built.
