file(REMOVE_RECURSE
  "CMakeFiles/soft_error_test.dir/soft_error_test.cc.o"
  "CMakeFiles/soft_error_test.dir/soft_error_test.cc.o.d"
  "soft_error_test"
  "soft_error_test.pdb"
  "soft_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
