file(REMOVE_RECURSE
  "CMakeFiles/bch_test.dir/bch_test.cc.o"
  "CMakeFiles/bch_test.dir/bch_test.cc.o.d"
  "bch_test"
  "bch_test.pdb"
  "bch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
