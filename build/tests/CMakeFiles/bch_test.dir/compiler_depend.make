# Empty compiler generated dependencies file for bch_test.
# This may be replaced when dependencies are built.
