file(REMOVE_RECURSE
  "CMakeFiles/flash_cache_test.dir/flash_cache_test.cc.o"
  "CMakeFiles/flash_cache_test.dir/flash_cache_test.cc.o.d"
  "flash_cache_test"
  "flash_cache_test.pdb"
  "flash_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
