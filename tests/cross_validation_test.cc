/**
 * @file
 * Cross-validation between independent implementations: the flash
 * cache's measured miss rate is bracketed using the stack-distance
 * analyzer's ideal page-LRU curve, and the FTL and disk cache agree
 * on flash-level accounting for the same traffic.
 */

#include <gtest/gtest.h>

#include "core/flash_cache.hh"
#include "ssd/ftl.hh"
#include "util/rng.hh"
#include "workload/stack_distance.hh"
#include "workload/synthetic.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

TEST(CrossValidationTest, CacheMissRateBracketsIdealLru)
{
    // Read-only zipf stream. The flash cache evicts at *block*
    // granularity, so it cannot beat an ideal page-LRU of the same
    // capacity, but it should stay within a reasonable factor of an
    // ideal LRU at ~60% of its capacity.
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel lifetime(no_wear);
    FlashGeometry g;
    g.numBlocks = 16;
    g.framesPerBlock = 8; // 256 pages
    FlashDevice device(g, FlashTiming(), lifetime, 2);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.splitRegions = false; // whole capacity for reads
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(5);
    ZipfSampler zipf(1200, 1.0);
    StackDistance sd;
    for (int i = 0; i < 60000; ++i) {
        const Lba l = zipf.sample(rng);
        cache.read(l);
        sd.access(l);
    }

    const double measured = cache.stats().fgst.reads.missRate();
    const double ideal_full = sd.missRateAtSize(cache.capacityPages());
    const double ideal_partial = sd.missRateAtSize(
        cache.capacityPages() * 6 / 10);
    EXPECT_GE(measured, ideal_full - 0.01)
        << "cache cannot beat ideal LRU of equal capacity";
    EXPECT_LE(measured, ideal_partial + 0.05)
        << "block-granularity overhead larger than expected";
}

TEST(CrossValidationTest, SequentialScanBothAgree)
{
    // A repeated scan larger than the cache defeats LRU completely:
    // both the analyzer and the cache must report ~100% misses.
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel lifetime(no_wear);
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 8; // 128 pages
    FlashDevice device(g, FlashTiming(), lifetime, 3);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    FlashCache cache(ctrl, store, cfg);

    StackDistance sd;
    for (int rep = 0; rep < 40; ++rep) {
        for (Lba l = 0; l < 200; ++l) { // 200 > 128-page capacity
            cache.read(l);
            sd.access(l);
        }
    }
    EXPECT_GT(sd.missRateAtSize(128), 0.99);
    EXPECT_GT(cache.stats().fgst.reads.missRate(), 0.95);
}

TEST(CrossValidationTest, FtlAndCacheShareDeviceAccounting)
{
    // Identical write traffic through the FTL and through a unified
    // cache on identical devices: both must agree that every write
    // costs at least one program, and that GC never destroys the
    // program/erase balance (programs >= writes; every erase frees
    // what programs consumed).
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel lifetime(no_wear);
    FlashGeometry g;
    g.numBlocks = 16;
    g.framesPerBlock = 8;

    Rng rng(9);
    std::vector<Lba> writes;
    for (int i = 0; i < 8000; ++i)
        writes.push_back(rng.uniformInt(180));

    FlashDevice dev_a(g, FlashTiming(), lifetime, 4);
    FlashMemoryController ctrl_a(dev_a);
    FlashTranslationLayer ftl(ctrl_a, 200);
    for (const Lba l : writes)
        ftl.write(l);
    ftl.checkInvariants();

    FlashDevice dev_b(g, FlashTiming(), lifetime, 4);
    FlashMemoryController ctrl_b(dev_b);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl_b, store, cfg);
    for (const Lba l : writes)
        cache.write(l);
    cache.checkInvariants();

    for (const FlashDevice* dev : {&dev_a, &dev_b}) {
        EXPECT_GE(dev->stats().programs, writes.size());
        // Programs never exceed what erases plus virgin capacity
        // provide.
        const std::uint64_t capacity =
            static_cast<std::uint64_t>(g.numBlocks) * g.framesPerBlock *
            2;
        EXPECT_LE(dev->stats().programs,
                  capacity * (dev->stats().erases / g.numBlocks + 2));
    }
}

} // namespace
} // namespace flashcache
