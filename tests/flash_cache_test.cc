/**
 * @file
 * Flash based disk cache tests: hit/miss behaviour, out-of-place
 * writes, garbage collection, eviction with dirty flush, split vs
 * unified regions, wear-leveling migration, reconfiguration under
 * aging, and full invariant checks under randomized workloads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

/** Records every backing-store access. */
class FakeStore : public BackingStore
{
  public:
    Seconds
    read(Lba lba) override
    {
        reads.push_back(lba);
        return milliseconds(4.2);
    }

    Seconds
    write(Lba lba) override
    {
        writes.push_back(lba);
        return milliseconds(4.2);
    }

    std::vector<Lba> reads;
    std::vector<Lba> writes;
};

FlashGeometry
geom(std::uint32_t blocks, std::uint16_t frames = 8)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = frames;
    return g;
}

/** Bundles a full stack with convenient defaults. */
struct Stack
{
    explicit Stack(std::uint32_t blocks = 16,
                   const FlashCacheConfig& cfg = FlashCacheConfig(),
                   const WearParams& wp = WearParams(),
                   std::uint16_t frames = 8)
        : lifetime(wp),
          device(geom(blocks, frames), FlashTiming(), lifetime, 77),
          controller(device),
          cache(controller, store, cfg)
    {
    }

    CellLifetimeModel lifetime;
    FlashDevice device;
    FlashMemoryController controller;
    FakeStore store;
    FlashCache cache;
};

TEST(FlashCacheTest, ReadMissFillsThenHits)
{
    Stack s;
    const auto miss = s.cache.read(1234);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.latency, milliseconds(4.2));
    ASSERT_EQ(s.store.reads.size(), 1u);
    EXPECT_EQ(s.store.reads[0], 1234u);

    const auto hit = s.cache.read(1234);
    EXPECT_TRUE(hit.hit);
    EXPECT_LT(hit.latency, milliseconds(1));
    EXPECT_EQ(s.store.reads.size(), 1u); // no second disk access
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, WriteThenReadHitsWithoutDisk)
{
    Stack s;
    s.cache.write(55);
    const auto r = s.cache.read(55);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(s.store.reads.empty());
    EXPECT_TRUE(s.store.writes.empty()); // still dirty in flash
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, FlushWritesAllDirtyPages)
{
    Stack s;
    for (Lba l = 0; l < 10; ++l)
        s.cache.write(l);
    s.cache.flushAll();
    EXPECT_EQ(s.store.writes.size(), 10u);
    // A second flush writes nothing (pages now clean).
    s.cache.flushAll();
    EXPECT_EQ(s.store.writes.size(), 10u);
}

TEST(FlashCacheTest, OutOfPlaceUpdateInvalidatesOldPage)
{
    Stack s;
    s.cache.write(7);
    const std::uint64_t valid_before = s.cache.validPages();
    s.cache.write(7); // update
    EXPECT_EQ(s.cache.validPages(), valid_before);
    EXPECT_EQ(s.cache.invalidPages(), 1u);
    EXPECT_EQ(s.cache.stats().fgst.writes.hits(), 1u);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, WriteUpdateOfReadCachedPageMovesToWriteRegion)
{
    Stack s;
    s.cache.read(99);  // fill read region
    s.cache.write(99); // must invalidate read copy, go to write log
    const auto r = s.cache.read(99);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(s.cache.invalidPages(), 1u);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, WriteRegionGcReclaimsSpace)
{
    // Overwrite a small hot set many times: the write log fills with
    // invalid pages and GC must reclaim blocks instead of evicting.
    Stack s;
    for (int round = 0; round < 60; ++round)
        for (Lba l = 0; l < 8; ++l)
            s.cache.write(l);
    EXPECT_GT(s.cache.stats().gcRuns, 0u);
    EXPECT_GT(s.cache.stats().gcErases, 0u);
    EXPECT_GT(s.cache.stats().gcTime, 0.0);
    // The hot set stays resident through GC.
    for (Lba l = 0; l < 8; ++l)
        EXPECT_TRUE(s.cache.read(l).hit) << l;
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, EvictionFlushesDirtyData)
{
    // Distinct LBAs exceeding write-region capacity force LRU block
    // evictions, which must flush dirty pages to disk.
    FlashCacheConfig cfg;
    cfg.wearLeveling = false;
    Stack s(16, cfg);
    // Write region = ~2 blocks x 8 frames x 2 = 32 MLC pages.
    for (Lba l = 0; l < 400; ++l)
        s.cache.write(l);
    EXPECT_GT(s.cache.stats().evictions +
              s.cache.stats().evictionFlushes, 0u);
    EXPECT_FALSE(s.store.writes.empty());
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, ReadRegionLruEviction)
{
    FlashCacheConfig cfg;
    cfg.wearLeveling = false;
    Stack s(8, cfg);
    // Read capacity ~ 6 blocks x 16 pages = 96; stream many LBAs.
    for (Lba l = 0; l < 300; ++l)
        s.cache.read(l);
    EXPECT_GT(s.cache.stats().evictions, 0u);
    // Recently read pages hit, the oldest were evicted.
    EXPECT_TRUE(s.cache.read(299).hit);
    const auto old = s.cache.read(0);
    EXPECT_FALSE(old.hit);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, CleanEvictionsDoNotTouchDisk)
{
    FlashCacheConfig cfg;
    cfg.wearLeveling = false;
    Stack s(8, cfg);
    for (Lba l = 0; l < 300; ++l)
        s.cache.read(l);
    // Read-region evictions drop clean cache copies silently.
    EXPECT_TRUE(s.store.writes.empty());
}

TEST(FlashCacheTest, OccupancyAndCapacity)
{
    Stack s;
    EXPECT_EQ(s.cache.capacityPages(), 16u * 8 * 2);
    EXPECT_DOUBLE_EQ(s.cache.occupancy(), 0.0);
    for (Lba l = 0; l < 20; ++l)
        s.cache.read(l);
    EXPECT_EQ(s.cache.validPages(), 20u);
    EXPECT_NEAR(s.cache.occupancy(), 20.0 / 256.0, 1e-12);
}

TEST(FlashCacheTest, FgstTracksRatesAndLatencies)
{
    Stack s;
    s.cache.read(1);
    s.cache.read(1);
    s.cache.read(2);
    const Fgst& g = s.cache.stats().fgst;
    EXPECT_EQ(g.reads.hits(), 1u);
    EXPECT_EQ(g.reads.misses(), 2u);
    EXPECT_GT(g.avgMissPenalty(), milliseconds(4));
    EXPECT_GT(g.avgHitLatency(), 0.0);
    EXPECT_LT(g.avgHitLatency(), milliseconds(1));
}

TEST(FlashCacheTest, UnifiedModeWorks)
{
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    Stack s(8, cfg);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const Lba l = rng.uniformInt(100);
        if (rng.bernoulli(0.3))
            s.cache.write(l);
        else
            s.cache.read(l);
    }
    s.cache.checkInvariants();
    EXPECT_GT(s.cache.stats().fgst.reads.hits(), 0u);
}

TEST(FlashCacheTest, SplitBeatsUnifiedOnDiskLevelWorkload)
{
    // Figure 4's mechanism: out-of-place writes pollute a unified
    // cache with invalid pages and GC churn; the split design
    // isolates the read region. The workload must be disk-level:
    // reads of recently written pages are absorbed by the DRAM
    // primary disk cache above, so at this layer the read stream
    // and the write-back stream touch mostly different pages.
    auto run = [](bool split) {
        FlashCacheConfig cfg;
        cfg.splitRegions = split;
        Stack s(16, cfg);
        Rng rng(9);
        ZipfSampler read_zipf(320, 0.9);
        ZipfSampler write_zipf(150, 0.9);
        for (int i = 0; i < 30000; ++i) {
            if (rng.bernoulli(0.3))
                s.cache.write(300 + write_zipf.sample(rng));
            else
                s.cache.read(read_zipf.sample(rng));
        }
        s.cache.checkInvariants();
        return s.cache.stats().fgst.reads.missRate();
    };
    const double unified = run(false);
    const double split = run(true);
    EXPECT_LT(split, unified);
}

TEST(FlashCacheTest, WearLevelingMigratesUnderSkew)
{
    FlashCacheConfig cfg;
    cfg.wearThreshold = 8.0;
    cfg.hotPageMigration = false;
    Stack s(8, cfg);
    // Hammer overwrites of a tiny set: write-region blocks wear fast
    // and eventually trigger the newest-block migration path.
    for (int round = 0; round < 3000; ++round)
        for (Lba l = 0; l < 4; ++l)
            s.cache.write(l);
    // Some reads keep a read-region block around as "newest".
    for (Lba l = 1000; l < 1020; ++l)
        s.cache.read(l);
    for (int round = 0; round < 3000; ++round)
        for (Lba l = 0; l < 4; ++l)
            s.cache.write(l);
    EXPECT_GT(s.cache.stats().wearMigrations, 0u);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, WearLevelingNarrowsEraseSpread)
{
    auto spread = [](bool wl) {
        FlashCacheConfig cfg;
        cfg.wearLeveling = wl;
        cfg.wearThreshold = 8.0;
        cfg.splitRegions = false;
        cfg.hotPageMigration = false;
        Stack s(8, cfg);
        for (Lba l = 200; l < 280; ++l)
            s.cache.read(l); // cold resident data
        for (int round = 0; round < 4000; ++round)
            for (Lba l = 0; l < 4; ++l)
                s.cache.write(l); // hot overwrites
        std::uint32_t max_e = 0;
        std::uint64_t total = 0;
        for (std::uint32_t b = 0; b < 8; ++b) {
            max_e = std::max(max_e, s.device.blockEraseCount(b));
            total += s.device.blockEraseCount(b);
        }
        return static_cast<double>(max_e) /
            (static_cast<double>(total) / 8.0);
    };
    // Max/mean erase ratio should be tighter with wear-leveling.
    EXPECT_LT(spread(true), spread(false));
}

TEST(FlashCacheTest, HotPageMigratesToSlc)
{
    FlashCacheConfig cfg;
    cfg.accessSaturation = 16;
    Stack s(16, cfg);
    s.cache.read(42);
    for (int i = 0; i < 40; ++i)
        s.cache.read(42);
    EXPECT_GT(s.cache.stats().hotMigrations, 0u);
    // The page still hits and now lives in an SLC page.
    EXPECT_TRUE(s.cache.read(42).hit);
    const std::uint64_t id = s.cache.fcht().find(42);
    ASSERT_NE(id, Fcht::npos);
    EXPECT_EQ(s.cache.fpstEntry(id).mode, DensityMode::SLC);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, AgedFlashTriggersReconfiguration)
{
    WearParams wp;
    wp.nominalCycles = 20;
    wp.sigmaDecades = 0.8;
    FlashCacheConfig cfg;
    cfg.accessSaturation = 255; // keep hot migration out of the way
    cfg.hotPageMigration = false;
    Stack s(8, cfg, wp);
    Rng rng(13);
    for (int i = 0; i < 40000 && !s.cache.failed(); ++i) {
        const Lba l = rng.uniformInt(64);
        if (rng.bernoulli(0.5))
            s.cache.write(l);
        else
            s.cache.read(l);
    }
    const auto& st = s.cache.stats();
    EXPECT_GT(st.eccReconfigs + st.densityReconfigs, 0u);
    s.cache.checkInvariants();
}

TEST(FlashCacheTest, ExhaustedFlashFailsGracefully)
{
    WearParams wp;
    wp.nominalCycles = 5;
    wp.sigmaDecades = 0.4;
    FlashCacheConfig cfg;
    cfg.maxEccStrength = 2; // few knobs: dies fast
    Stack s(6, cfg, wp, 4);
    Rng rng(17);
    int i = 0;
    for (; i < 2000000 && !s.cache.failed(); ++i) {
        const Lba l = rng.uniformInt(32);
        if (rng.bernoulli(0.7))
            s.cache.write(l);
        else
            s.cache.read(l);
    }
    EXPECT_TRUE(s.cache.failed()) << "survived " << i << " accesses";
    EXPECT_GT(s.cache.stats().retiredBlocks, 0u);
}

TEST(FlashCacheTest, AdaptiveControllerOutlivesFixedBch1)
{
    // Figure 12 in miniature: accesses to failure, programmable
    // controller vs fixed single-error correction.
    auto lifetime = [](bool adaptive) {
        WearParams wp;
        wp.nominalCycles = 10;
        wp.sigmaDecades = 0.6;
        FlashCacheConfig cfg;
        cfg.adaptiveReconfig = adaptive;
        cfg.hotPageMigration = false;
        cfg.initialEccStrength = 1;
        if (!adaptive)
            cfg.maxEccStrength = 1;
        Stack s(8, cfg, wp, 4);
        Rng rng(21);
        std::uint64_t n = 0;
        while (n < 5000000 && !s.cache.failed()) {
            const Lba l = rng.uniformInt(24);
            if (rng.bernoulli(0.7))
                s.cache.write(l);
            else
                s.cache.read(l);
            ++n;
        }
        return n;
    };
    const auto fixed = lifetime(false);
    const auto adaptive = lifetime(true);
    EXPECT_GT(adaptive, 2 * fixed);
}

TEST(FlashCacheTest, RandomizedInvariantSweep)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        FlashCacheConfig cfg;
        cfg.accessSaturation = 32;
        cfg.wearThreshold = 16.0;
        Stack s(12, cfg);
        Rng rng(seed);
        for (int i = 0; i < 4000; ++i) {
            const Lba l = rng.uniformInt(300);
            if (rng.bernoulli(0.4))
                s.cache.write(l);
            else
                s.cache.read(l);
            if (i % 500 == 499)
                s.cache.checkInvariants();
        }
        s.cache.flushAll();
        s.cache.checkInvariants();
    }
}

TEST(FlashCacheTest, GcOverheadGrowsWithOccupancy)
{
    // Figure 1(b)'s mechanism at unit scale: higher live occupancy
    // of the log leaves fewer invalid pages per GC'd block, raising
    // the time share of garbage collection.
    auto overhead = [](Lba working_set) {
        FlashCacheConfig cfg;
        cfg.splitRegions = false;
        cfg.wearLeveling = false;
        cfg.hotPageMigration = false;
        Stack s(8, cfg);
        Rng rng(31);
        for (int i = 0; i < 20000; ++i)
            s.cache.write(rng.uniformInt(working_set));
        return s.cache.gcOverheadFraction();
    };
    // Capacity is 256 pages; compare 35% vs 85% live occupancy.
    const double low = overhead(90);
    const double high = overhead(218);
    EXPECT_GT(high, low);
}

} // namespace
} // namespace flashcache
