/**
 * @file
 * Exhaustive BCH correction proofs on small codes: every single- and
 * double-error pattern of a t=2 code, and every single-error pattern
 * of the t=1 code, must decode to exactly the transmitted word. This
 * complements the randomized sweeps in bch_test.cc with complete
 * coverage of a code's error space.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ecc/bch.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

void
flip(std::vector<std::uint8_t>& data, std::vector<std::uint8_t>& parity,
     std::uint32_t parity_bits, std::uint32_t pos)
{
    if (pos < parity_bits)
        parity[pos / 8] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    else {
        const std::uint32_t q = pos - parity_bits;
        data[q / 8] ^= static_cast<std::uint8_t>(1u << (q % 8));
    }
}

TEST(BchExhaustiveTest, EverySingleErrorOfT1Code)
{
    // BCH(m=5, t=1), 16 data bits: 21-bit codeword; all 21 single
    // errors across 16 random messages.
    BchCode code(5, 1, 16);
    Rng rng(1);
    for (int msg = 0; msg < 16; ++msg) {
        std::vector<std::uint8_t> data = {
            static_cast<std::uint8_t>(rng.uniformInt(256)),
            static_cast<std::uint8_t>(rng.uniformInt(256))};
        std::vector<std::uint8_t> parity(code.parityBytes(), 0);
        code.encode(data.data(), parity.data());
        const auto ref_d = data;
        const auto ref_p = parity;

        for (std::uint32_t pos = 0; pos < code.codewordBits(); ++pos) {
            auto d = ref_d;
            auto p = ref_p;
            flip(d, p, code.parityBits(), pos);
            const auto res = code.decode(d.data(), p.data());
            ASSERT_TRUE(res.ok) << "msg=" << msg << " pos=" << pos;
            EXPECT_EQ(res.correctedBits, 1u);
            EXPECT_EQ(d, ref_d) << "pos=" << pos;
            EXPECT_EQ(p, ref_p) << "pos=" << pos;
        }
    }
}

TEST(BchExhaustiveTest, EveryDoubleErrorOfT2Code)
{
    // BCH(m=5, t=2), 8 data bits: all C(n,2) double-error patterns.
    BchCode code(5, 2, 8);
    const std::uint32_t n = code.codewordBits();
    std::vector<std::uint8_t> data = {0xB7};
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    const auto ref_d = data;
    const auto ref_p = parity;

    int patterns = 0;
    for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = a + 1; b < n; ++b) {
            auto d = ref_d;
            auto p = ref_p;
            flip(d, p, code.parityBits(), a);
            flip(d, p, code.parityBits(), b);
            const auto res = code.decode(d.data(), p.data());
            ASSERT_TRUE(res.ok) << a << "," << b;
            EXPECT_EQ(res.correctedBits, 2u) << a << "," << b;
            EXPECT_EQ(d, ref_d) << a << "," << b;
            EXPECT_EQ(p, ref_p) << a << "," << b;
            ++patterns;
        }
    }
    EXPECT_EQ(patterns, static_cast<int>(n * (n - 1) / 2));
}

TEST(BchExhaustiveTest, EverySingleErrorOfPageCode)
{
    // The production GF(2^15) page code with a stride of single-bit
    // errors covering every byte lane and the parity region.
    BchCode code(15, 4, 2048 * 8);
    Rng rng(3);
    std::vector<std::uint8_t> data(2048);
    for (auto& b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    const auto ref_d = data;
    const auto ref_p = parity;

    for (std::uint32_t pos = 0; pos < code.codewordBits(); pos += 97) {
        auto d = ref_d;
        auto p = ref_p;
        flip(d, p, code.parityBits(), pos);
        const auto res = code.decode(d.data(), p.data());
        ASSERT_TRUE(res.ok) << pos;
        EXPECT_EQ(res.correctedBits, 1u) << pos;
        EXPECT_EQ(d, ref_d) << pos;
    }
}

TEST(BchExhaustiveTest, ShorteningRejectsOutOfRangeLocators)
{
    // A three-error pattern on a t=2 code must never decode "ok"
    // with the wrong data: either detected, or (rarely) miscorrected
    // to a different codeword which the CRC layer catches — but the
    // decoder must not return ok with the original data unchanged
    // minus fewer than the injected errors.
    BchCode code(5, 2, 8);
    const std::uint32_t n = code.codewordBits();
    std::vector<std::uint8_t> data = {0x4C};
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    const auto ref_d = data;
    const auto ref_p = parity;

    int detected = 0, miscorrected = 0, total = 0;
    for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = a + 1; b < n; ++b) {
            for (std::uint32_t c = b + 1; c < n; c += 3) {
                auto d = ref_d;
                auto p = ref_p;
                flip(d, p, code.parityBits(), a);
                flip(d, p, code.parityBits(), b);
                flip(d, p, code.parityBits(), c);
                const auto res = code.decode(d.data(), p.data());
                ++total;
                if (!res.ok) {
                    ++detected;
                } else {
                    // ok => decoder settled on *some* codeword; it
                    // must not be the original (3 != corrected).
                    EXPECT_FALSE(d == ref_d && p == ref_p)
                        << a << "," << b << "," << c;
                    ++miscorrected;
                }
            }
        }
    }
    EXPECT_EQ(detected + miscorrected, total);
    EXPECT_GT(detected, 0);
}

} // namespace
} // namespace flashcache
