/**
 * @file
 * Warm-restart persistence tests (section 3: the management tables
 * are "read from the hard disk drive and stored in DRAM at
 * run-time"): a saved device+cache pair restored into fresh objects
 * must behave identically — same hits, same wear, same contents.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds
    read(Lba lba) override
    {
        reads.push_back(lba);
        return milliseconds(4.2);
    }

    Seconds write(Lba) override { return milliseconds(4.2); }

    std::vector<Lba> reads;
};

FlashGeometry
geom()
{
    FlashGeometry g;
    g.numBlocks = 12;
    g.framesPerBlock = 8;
    return g;
}

TEST(PersistenceTest, WarmRestartPreservesCacheContents)
{
    CellLifetimeModel lifetime;
    std::stringstream dev_state, cache_state;
    std::vector<Lba> hot;
    for (Lba l = 0; l < 50; ++l)
        hot.push_back(l * 3);

    std::vector<Lba> cached_before;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 99);
        FlashMemoryController ctrl(device);
        NullStore store;
        FlashCache cache(ctrl, store);

        Rng rng(1);
        for (int i = 0; i < 8000; ++i) {
            const Lba l = hot[rng.uniformInt(hot.size())];
            if (rng.bernoulli(0.3))
                cache.write(l);
            else
                cache.read(l);
        }
        cache.flushAll();
        cache.checkInvariants();
        for (const Lba l : hot) {
            if (cache.fcht().find(l) != Fcht::npos)
                cached_before.push_back(l);
        }
        device.saveState(dev_state);
        cache.saveState(cache_state);
    }
    ASSERT_GT(cached_before.size(), 10u);

    // "Reboot": fresh objects, state loaded back.
    FlashDevice device(geom(), FlashTiming(), lifetime, 99);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCache cache(ctrl, store);
    device.loadState(dev_state);
    cache.loadState(cache_state);
    cache.checkInvariants();

    // Exactly the pages that were cached before the restart still
    // hit, without touching the disk.
    for (const Lba l : cached_before)
        EXPECT_TRUE(cache.read(l).hit) << l;
    EXPECT_TRUE(store.reads.empty());
}

TEST(PersistenceTest, WearSurvivesRestart)
{
    WearParams wp;
    wp.nominalCycles = 200;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wp);
    std::stringstream dev_state;

    unsigned errors_before;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 7);
        for (int i = 0; i < 4000; ++i)
            device.eraseBlock(3);
        device.programPage({3, 2, 0});
        errors_before = device.readPage({3, 2, 0}).hardBitErrors;
        EXPECT_GT(errors_before, 0u);
        device.saveState(dev_state);
    }

    FlashDevice device(geom(), FlashTiming(), lifetime, 7);
    device.loadState(dev_state);
    EXPECT_EQ(device.blockEraseCount(3), 4000u);
    EXPECT_DOUBLE_EQ(device.frameDamage(3, 2), 4000.0);
    EXPECT_TRUE(device.isProgrammed({3, 2, 0}));
    EXPECT_EQ(device.readPage({3, 2, 0}).hardBitErrors, errors_before);
}

TEST(PersistenceTest, DensityModesSurviveRestart)
{
    CellLifetimeModel lifetime;
    std::stringstream dev_state;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 5);
        for (std::uint16_t f = 0; f < 8; ++f)
            device.requestFrameMode(2, f, DensityMode::SLC);
        device.eraseBlock(2);
        device.requestFrameMode(4, 1, DensityMode::SLC); // still pending
        device.saveState(dev_state);
    }
    FlashDevice device(geom(), FlashTiming(), lifetime, 5);
    device.loadState(dev_state);
    EXPECT_EQ(device.frameMode(2, 0), DensityMode::SLC);
    EXPECT_EQ(device.frameMode(4, 1), DensityMode::MLC);
    device.eraseBlock(4); // pending request applies after restart
    EXPECT_EQ(device.frameMode(4, 1), DensityMode::SLC);
}

TEST(PersistenceTest, RealDataPayloadsSurviveRestart)
{
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel lifetime(no_wear);
    std::stringstream dev_state;

    std::vector<std::uint8_t> content(2048);
    for (std::size_t i = 0; i < content.size(); ++i)
        content[i] = static_cast<std::uint8_t>(i * 31);

    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 3, 0.0,
                           true);
        FlashMemoryController ctrl(device);
        PageDescriptor desc{4, DensityMode::MLC};
        ctrl.writePageReal({0, 0, 0}, desc, content.data());
        device.saveState(dev_state);
    }

    FlashDevice device(geom(), FlashTiming(), lifetime, 3, 0.0, true);
    FlashMemoryController ctrl(device);
    device.loadState(dev_state);
    std::vector<std::uint8_t> out(2048);
    PageDescriptor desc{4, DensityMode::MLC};
    const auto res = ctrl.readPageReal({0, 0, 0}, desc, out.data());
    EXPECT_NE(res.status, ReadStatus::Uncorrectable);
    EXPECT_EQ(out, content);
}

TEST(PersistenceTest, GeometryMismatchIsFatal)
{
    CellLifetimeModel lifetime;
    std::stringstream dev_state;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 1);
        device.saveState(dev_state);
    }
    FlashGeometry other = geom();
    other.numBlocks = 6;
    FlashDevice device(other, FlashTiming(), lifetime, 1);
    EXPECT_DEATH(device.loadState(dev_state), "geometry mismatch");
}

TEST(PersistenceTest, CacheKeepsWorkingAfterRestart)
{
    // The restored cache must keep allocating, GCing and evicting
    // correctly — cursors and free lists were part of the state.
    CellLifetimeModel lifetime;
    std::stringstream dev_state, cache_state;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 12);
        FlashMemoryController ctrl(device);
        NullStore store;
        FlashCache cache(ctrl, store);
        Rng rng(2);
        for (int i = 0; i < 5000; ++i) {
            const Lba l = rng.uniformInt(150);
            if (rng.bernoulli(0.4))
                cache.write(l);
            else
                cache.read(l);
        }
        device.saveState(dev_state);
        cache.saveState(cache_state);
    }

    FlashDevice device(geom(), FlashTiming(), lifetime, 12);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCache cache(ctrl, store);
    device.loadState(dev_state);
    cache.loadState(cache_state);

    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Lba l = rng.uniformInt(400); // larger set: force churn
        if (rng.bernoulli(0.4))
            cache.write(l);
        else
            cache.read(l);
    }
    cache.checkInvariants();
    EXPECT_GT(cache.stats().gcRuns + cache.stats().evictions, 0u);
}


TEST(PersistenceTest, TruncatedStateIsFatal)
{
    CellLifetimeModel lifetime;
    std::stringstream dev_state;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 1);
        device.saveState(dev_state);
    }
    const std::string full = dev_state.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    FlashDevice device(geom(), FlashTiming(), lifetime, 1);
    EXPECT_DEATH(device.loadState(truncated), "truncated");
}

TEST(PersistenceTest, WrongMagicIsFatal)
{
    CellLifetimeModel lifetime;
    std::stringstream cache_junk("NOTMAGICxxxxxxxxxxxxxxxx");
    FlashDevice device(geom(), FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    class NS : public BackingStore
    {
      public:
        Seconds read(Lba) override { return 0; }
        Seconds write(Lba) override { return 0; }
    } store;
    FlashCache cache(ctrl, store);
    EXPECT_DEATH(cache.loadState(cache_junk), "magic");
}

TEST(PersistenceTest, SplitModeMismatchIsFatal)
{
    CellLifetimeModel lifetime;
    std::stringstream dev_state, cache_state;
    class NS : public BackingStore
    {
      public:
        Seconds read(Lba) override { return 0; }
        Seconds write(Lba) override { return 0; }
    } store;
    {
        FlashDevice device(geom(), FlashTiming(), lifetime, 1);
        FlashMemoryController ctrl(device);
        FlashCache cache(ctrl, store); // split (default)
        cache.saveState(cache_state);
    }
    FlashDevice device(geom(), FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    FlashCache unified(ctrl, store, cfg);
    EXPECT_DEATH(unified.loadState(cache_state), "split-mode");
}

} // namespace
} // namespace flashcache
