/**
 * @file
 * Flash device model tests: geometry, program/erase discipline,
 * density modes, latency/energy accounting, and wear-driven errors.
 */

#include <gtest/gtest.h>

#include "flash/flash_device.hh"
#include "flash/flash_spec.hh"
#include "flash/geometry.hh"

namespace flashcache {
namespace {

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.numBlocks = 4;
    g.framesPerBlock = 4;
    return g;
}

class FlashDeviceTest : public ::testing::Test
{
  protected:
    FlashDeviceTest()
        : lifetime_(), dev_(smallGeom(), FlashTiming(), lifetime_, 42)
    {
    }

    CellLifetimeModel lifetime_;
    FlashDevice dev_;
};

TEST(FlashGeometryTest, CapacityAndPagesPerBlock)
{
    FlashGeometry g; // 1024 blocks x 64 frames
    EXPECT_EQ(g.pagesPerBlock(DensityMode::SLC), 64u);
    EXPECT_EQ(g.pagesPerBlock(DensityMode::MLC), 128u);
    EXPECT_EQ(g.capacityBytes(DensityMode::MLC),
              1024ull * 128 * 2048); // 256 MB
    EXPECT_EQ(g.capacityBytes(DensityMode::SLC),
              g.capacityBytes(DensityMode::MLC) / 2);
    EXPECT_EQ(g.pageBits(), (2048u + 64u) * 8u);
}

TEST(FlashGeometryTest, ForMlcCapacityRoundsUp)
{
    const auto g = FlashGeometry::forMlcCapacity(gib(1));
    EXPECT_GE(g.capacityBytes(DensityMode::MLC), gib(1));
    EXPECT_LT(g.capacityBytes(DensityMode::MLC), gib(1) + mib(1));
    EXPECT_GE(FlashGeometry::forMlcCapacity(1).numBlocks, 1u);
}

TEST_F(FlashDeviceTest, ProgramReadEraseCycle)
{
    const PageAddress a{0, 0, 0};
    EXPECT_FALSE(dev_.isProgrammed(a));
    dev_.programPage(a);
    EXPECT_TRUE(dev_.isProgrammed(a));
    const auto r = dev_.readPage(a);
    EXPECT_EQ(r.hardBitErrors, 0u); // fresh device
    dev_.eraseBlock(0);
    EXPECT_FALSE(dev_.isProgrammed(a));
    dev_.programPage(a); // reprogram after erase is legal
}

TEST_F(FlashDeviceTest, DoubleProgramPanics)
{
    const PageAddress a{1, 2, 0};
    dev_.programPage(a);
    EXPECT_DEATH(dev_.programPage(a), "already-programmed");
}

TEST_F(FlashDeviceTest, ReadUnprogrammedPanics)
{
    EXPECT_DEATH(dev_.readPage({0, 1, 0}), "unprogrammed");
}

TEST_F(FlashDeviceTest, ModeChangeAppliesAtErase)
{
    EXPECT_EQ(dev_.frameMode(2, 1), DensityMode::MLC);
    dev_.requestFrameMode(2, 1, DensityMode::SLC);
    EXPECT_EQ(dev_.frameMode(2, 1), DensityMode::MLC); // not yet
    dev_.eraseBlock(2);
    EXPECT_EQ(dev_.frameMode(2, 1), DensityMode::SLC); // applied
}

TEST_F(FlashDeviceTest, SlcFrameRejectsSecondSubPage)
{
    dev_.requestFrameMode(3, 0, DensityMode::SLC);
    dev_.eraseBlock(3);
    dev_.programPage({3, 0, 0});
    EXPECT_DEATH(dev_.programPage({3, 0, 1}), "SLC-mode frame");
}

TEST_F(FlashDeviceTest, LatenciesFollowDensityMode)
{
    const FlashTiming t;
    // MLC (default) timings.
    EXPECT_DOUBLE_EQ(dev_.programPage({0, 0, 0}).latency,
                     t.mlcWriteLatency);
    EXPECT_DOUBLE_EQ(dev_.readPage({0, 0, 0}).latency, t.mlcReadLatency);
    EXPECT_DOUBLE_EQ(dev_.eraseBlock(0).latency, t.mlcEraseLatency);

    // Reformat block 0 to all-SLC.
    for (std::uint16_t f = 0; f < 4; ++f)
        dev_.requestFrameMode(0, f, DensityMode::SLC);
    dev_.eraseBlock(0);
    EXPECT_DOUBLE_EQ(dev_.programPage({0, 0, 0}).latency,
                     t.slcWriteLatency);
    EXPECT_DOUBLE_EQ(dev_.readPage({0, 0, 0}).latency, t.slcReadLatency);
    EXPECT_DOUBLE_EQ(dev_.eraseBlock(0).latency, t.slcEraseLatency);
}

TEST_F(FlashDeviceTest, EraseCountAndDamageAccumulate)
{
    EXPECT_EQ(dev_.blockEraseCount(1), 0u);
    for (int i = 0; i < 5; ++i)
        dev_.eraseBlock(1);
    EXPECT_EQ(dev_.blockEraseCount(1), 5u);
    EXPECT_DOUBLE_EQ(dev_.frameDamage(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(dev_.frameDamage(0, 0), 0.0);
}

TEST_F(FlashDeviceTest, MlcSeesMoreEffectiveWearThanSlc)
{
    dev_.eraseBlock(1);
    const double slc = dev_.effectiveCycles(1, 0, DensityMode::SLC);
    const double mlc = dev_.effectiveCycles(1, 0, DensityMode::MLC);
    EXPECT_DOUBLE_EQ(mlc, slc * lifetime_.params().mlcWearMultiplier);
}

TEST_F(FlashDeviceTest, EnergyAccounting)
{
    const FlashTiming t;
    dev_.programPage({0, 0, 0});
    dev_.readPage({0, 0, 0});
    const auto& s = dev_.stats();
    EXPECT_EQ(s.programs, 1u);
    EXPECT_EQ(s.reads, 1u);
    const Seconds busy = t.mlcWriteLatency + t.mlcReadLatency;
    EXPECT_DOUBLE_EQ(s.busyTime, busy);
    EXPECT_DOUBLE_EQ(s.activeEnergy, busy * t.activePower);
    // Over one second of wall clock, idle power covers the rest.
    const Joules e = dev_.energyOver(1.0);
    EXPECT_NEAR(e, busy * t.activePower + (1.0 - busy) * t.idlePower,
                1e-12);
}

TEST(FlashDeviceWearTest, AcceleratedAgingProducesErrors)
{
    // Scale the endurance down so wear-out shows within a few
    // hundred erases, as the lifetime benches do.
    WearParams wp;
    wp.nominalCycles = 100;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel m(wp);
    FlashDevice dev(smallGeom(), FlashTiming(), m, 7);

    for (int i = 0; i < 3000; ++i)
        dev.eraseBlock(0);
    dev.programPage({0, 0, 0});
    const auto r = dev.readPage({0, 0, 0});
    EXPECT_GT(r.hardBitErrors, 0u);

    // An SLC read of equally damaged cells sees no more errors than
    // the MLC read did.
    dev.requestFrameMode(0, 0, DensityMode::SLC);
    dev.eraseBlock(0);
    dev.programPage({0, 0, 0});
    const auto r2 = dev.readPage({0, 0, 0});
    EXPECT_LE(r2.hardBitErrors, r.hardBitErrors + 1);
}

TEST(FlashDeviceWearTest, DeterministicPerSeed)
{
    WearParams wp;
    wp.nominalCycles = 100;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel m(wp);
    FlashDevice d1(smallGeom(), FlashTiming(), m, 99);
    FlashDevice d2(smallGeom(), FlashTiming(), m, 99);
    for (int i = 0; i < 2000; ++i) {
        d1.eraseBlock(2);
        d2.eraseBlock(2);
    }
    d1.programPage({2, 3, 0});
    d2.programPage({2, 3, 0});
    EXPECT_EQ(d1.readPage({2, 3, 0}).hardBitErrors,
              d2.readPage({2, 3, 0}).hardBitErrors);
}

TEST(FlashDeviceDataTest, StoreDataRoundTrip)
{
    CellLifetimeModel m;
    FlashDevice dev(smallGeom(), FlashTiming(), m, 1, 0.0, true);
    std::vector<std::uint8_t> data(2048, 0xAB);
    std::vector<std::uint8_t> spare(64, 0xCD);
    dev.programPage({0, 0, 0}, data.data(), spare.data());
    const PageBytes stored = dev.pageData({0, 0, 0});
    ASSERT_TRUE(stored);
    ASSERT_EQ(stored.size, 2048u + 64u);
    EXPECT_EQ(stored.data[0], 0xAB);
    EXPECT_EQ(stored.data[2048], 0xCD);
    dev.eraseBlock(0);
    EXPECT_FALSE(dev.pageData({0, 0, 0}));
}

TEST(FlashAreaModelTest, CapacityScalesWithAreaAndDensity)
{
    FlashAreaModel area;
    // Anchor from [12]: ~1 GB of MLC in 146 mm^2.
    EXPECT_NEAR(static_cast<double>(area.capacityBytes(146.0, 0.0)),
                static_cast<double>(gib(1)), 1e6);
    // Pure SLC halves capacity.
    EXPECT_NEAR(static_cast<double>(area.capacityBytes(146.0, 1.0)),
                static_cast<double>(gib(1)) / 2, 1e6);
    // Round trip.
    EXPECT_NEAR(area.areaForMlcBytes(area.capacityBytes(50.0, 0.0)), 50.0,
                0.01);
    EXPECT_NEAR(area.areaForSlcBytes(area.capacityBytes(50.0, 1.0)), 50.0,
                0.01);
}

TEST(ItrsTest, RoadmapRowsSane)
{
    const auto& rows = itrsRoadmap();
    EXPECT_EQ(rows.size(), 5u);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        // Density improves (area per bit shrinks) over time.
        EXPECT_LT(rows[i].slcUm2PerBit, rows[i - 1].slcUm2PerBit);
        EXPECT_LT(rows[i].mlcUm2PerBit, rows[i - 1].mlcUm2PerBit);
        // MLC is always denser than SLC; SLC outlasts MLC.
        EXPECT_LT(rows[i].mlcUm2PerBit, rows[i].slcUm2PerBit);
        EXPECT_GT(rows[i].slcEnduranceCycles, rows[i].mlcEnduranceCycles);
    }
}

} // namespace
} // namespace flashcache
