/**
 * @file
 * Behavioural tests for the runtime statistics and reconfiguration
 * mechanics added by section 5.2: FGST recency-weighted estimators,
 * access-count carry-over across out-of-place updates, GC victim
 * thresholds, the free-block reserve, and the policy decision
 * counters that back Figure 11.
 */

#include <gtest/gtest.h>

#include "core/flash_cache.hh"
#include "core/tables.hh"
#include "util/rng.hh"
#include "workload/synthetic.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

FlashGeometry
geom(std::uint32_t blocks, std::uint16_t frames = 8)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = frames;
    return g;
}

struct Stack
{
    explicit Stack(std::uint32_t blocks = 16,
                   const FlashCacheConfig& cfg = FlashCacheConfig(),
                   const WearParams& wp = WearParams(),
                   std::uint16_t frames = 8)
        : lifetime(wp),
          device(geom(blocks, frames), FlashTiming(), lifetime, 123),
          controller(device),
          cache(controller, store, cfg)
    {
    }

    CellLifetimeModel lifetime;
    FlashDevice device;
    FlashMemoryController controller;
    NullStore store;
    FlashCache cache;
};

TEST(FgstEwmaTest, RecentMissRateTracksRegimeChanges)
{
    Fgst g;
    // A long miss-heavy warmup...
    for (int i = 0; i < 20000; ++i)
        g.recordRead(false);
    EXPECT_GT(g.recentMissRate(), 0.9);
    // ...followed by a long all-hit phase: the cumulative rate stays
    // poisoned but the EWMA converges to the new regime.
    for (int i = 0; i < 40000; ++i)
        g.recordRead(true);
    EXPECT_GT(g.missRate(), 0.3);
    EXPECT_LT(g.recentMissRate(), 0.01);
}

TEST(FgstEwmaTest, MarginalHitFractionSeparatesTailShapes)
{
    Fgst hot, cold;
    // Short tail: hits land on pages that already have high counts.
    for (int i = 0; i < 20000; ++i)
        hot.recordHitPageCount(200);
    // Long tail: hits land on pages with counts 0/1.
    for (int i = 0; i < 20000; ++i)
        cold.recordHitPageCount(i % 2);
    EXPECT_LT(hot.marginalHitFraction(), 0.01);
    EXPECT_GT(cold.marginalHitFraction(), 0.99);
}

TEST(ReconfigBehaviorTest, AccessCountCarriesAcrossUpdates)
{
    Stack s;
    s.cache.write(42);
    for (int i = 0; i < 5; ++i)
        s.cache.read(42);
    s.cache.write(42); // out-of-place update
    const std::uint64_t id = s.cache.fcht().find(42);
    ASSERT_NE(id, Fcht::npos);
    // 1 (install) + 5 reads + 1 (update) = 7.
    EXPECT_EQ(s.cache.fpstEntry(id).accessCount, 7);
}

TEST(ReconfigBehaviorTest, FreshWriteStartsCold)
{
    Stack s;
    s.cache.write(77);
    const std::uint64_t id = s.cache.fcht().find(77);
    ASSERT_NE(id, Fcht::npos);
    EXPECT_EQ(s.cache.fpstEntry(id).accessCount, 1);
}

TEST(ReconfigBehaviorTest, PolicyCountersSubsetOfReconfigCounters)
{
    WearParams wp;
    wp.nominalCycles = 30;
    wp.sigmaDecades = 0.8;
    FlashCacheConfig cfg;
    cfg.hotPageMigration = false;
    Stack s(8, cfg, wp);
    Rng rng(4);
    for (int i = 0; i < 60000 && !s.cache.failed(); ++i) {
        const Lba l = rng.uniformInt(96);
        if (rng.bernoulli(0.5))
            s.cache.write(l);
        else
            s.cache.read(l);
    }
    const auto& st = s.cache.stats();
    // Every policy choice is also counted in the descriptor-update
    // totals, which additionally include forced responses.
    EXPECT_LE(st.policyEccChoices, st.eccReconfigs);
    EXPECT_LE(st.policyDensityChoices, st.densityReconfigs);
    EXPECT_GT(st.policyEccChoices + st.policyDensityChoices, 0u);
    // The diagnostics sample one row per policy evaluation (ECC,
    // density and retire decisions alike).
    EXPECT_GE(st.faultPageFreq.count(),
              st.policyEccChoices + st.policyDensityChoices);
    EXPECT_EQ(st.faultEccCost.count(), st.faultPageFreq.count());
    EXPECT_EQ(st.faultDensityCost.count(), st.faultPageFreq.count());
}

TEST(GcPolicyTest, ThresholdZeroNeverEvictsUnderOverwrites)
{
    // Storage-log mode (Figure 1(b)): GC always relocates, eviction
    // should never fire while invalid pages exist.
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    cfg.wearLeveling = false;
    cfg.hotPageMigration = false;
    cfg.adaptiveReconfig = false;
    cfg.gcMinInvalidFraction = 0.0;
    WearParams no_wear;
    no_wear.nominalCycles = 1e9; // isolate GC behaviour from wear
    Stack s(16, cfg, no_wear); // 16 x 8 x 2 = 256 MLC pages
    Rng rng(6);
    const Lba live = 180; // ~70% of 256 pages
    for (int i = 0; i < 20000; ++i)
        s.cache.write(rng.uniformInt(live));
    EXPECT_EQ(s.cache.stats().evictions, 0u);
    EXPECT_GT(s.cache.stats().gcRuns, 0u);
    // Live data is preserved through all that GC.
    EXPECT_EQ(s.cache.validPages(), live);
    s.cache.checkInvariants();
}

TEST(GcPolicyTest, HighThresholdPrefersEvictionForColdValidBlocks)
{
    // Cache mode with a high GC bar: distinct one-shot writes leave
    // blocks full of valid-but-cold pages; reclaiming them must go
    // through eviction (flush) rather than endless copying.
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    cfg.wearLeveling = false;
    cfg.hotPageMigration = false;
    cfg.gcMinInvalidFraction = 0.9;
    Stack s(8, cfg);
    for (Lba l = 0; l < 2000; ++l)
        s.cache.write(l); // never overwritten: no invalid pages
    EXPECT_GT(s.cache.stats().evictions, 0u);
    EXPECT_EQ(s.cache.stats().gcPageCopies, 0u);
    s.cache.checkInvariants();
}

TEST(GcPolicyTest, ReserveKeepsGcRelocationFed)
{
    // At moderate occupancy the reserve guarantees GC can relocate:
    // no page should be dropped to disk by a starved GC.
    FlashCacheConfig cfg;
    cfg.splitRegions = false;
    cfg.wearLeveling = false;
    cfg.hotPageMigration = false;
    cfg.gcMinInvalidFraction = 0.0;
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    Stack s(16, cfg, no_wear); // 256 MLC pages
    Rng rng(8);
    const Lba live = 160; // ~62% occupancy
    for (int i = 0; i < 30000; ++i)
        s.cache.write(rng.uniformInt(live));
    // GC ran a lot, and dirty data only reaches the store via
    // flushAll (no starvation fallbacks).
    EXPECT_GT(s.cache.stats().gcRuns, 50u);
    EXPECT_EQ(s.cache.stats().evictionFlushes, 0u);
    s.cache.checkInvariants();
}

TEST(HotMigrationTest, CreatesSlcFramesOnDemand)
{
    FlashCacheConfig cfg;
    cfg.accessSaturation = 8;
    Stack s(16, cfg);
    // Touch several pages hot enough to saturate their counters.
    for (Lba l = 0; l < 6; ++l)
        s.cache.read(l);
    for (int round = 0; round < 20; ++round)
        for (Lba l = 0; l < 6; ++l)
            s.cache.read(l);
    EXPECT_GE(s.cache.stats().hotMigrations, 6u);
    // The migrated pages now answer with SLC read latency.
    const std::uint64_t id = s.cache.fcht().find(3);
    ASSERT_NE(id, Fcht::npos);
    EXPECT_EQ(s.cache.fpstEntry(id).mode, DensityMode::SLC);
    const auto hit = s.cache.read(3);
    EXPECT_TRUE(hit.hit);
    EXPECT_LT(hit.latency,
              FlashTiming().mlcReadLatency +
                  s.controller.decodeLatency(1) + 1e-9);
    s.cache.checkInvariants();
}

TEST(HotMigrationTest, DisabledMeansNoSlcFrames)
{
    FlashCacheConfig cfg;
    cfg.accessSaturation = 8;
    cfg.hotPageMigration = false;
    Stack s(16, cfg);
    for (int round = 0; round < 30; ++round)
        for (Lba l = 0; l < 6; ++l)
            s.cache.read(l);
    EXPECT_EQ(s.cache.stats().hotMigrations, 0u);
}

TEST(RetirementTest, RetiredBlocksNeverComeBack)
{
    WearParams wp;
    wp.nominalCycles = 8;
    wp.sigmaDecades = 0.5;
    FlashCacheConfig cfg;
    cfg.maxEccStrength = 2;
    Stack s(6, cfg, wp, 4);
    Rng rng(10);
    for (int i = 0; i < 500000 && !s.cache.failed(); ++i) {
        const Lba l = rng.uniformInt(24);
        if (rng.bernoulli(0.7))
            s.cache.write(l);
        else
            s.cache.read(l);
    }
    const auto retired = s.cache.stats().retiredBlocks;
    EXPECT_GT(retired, 0u);
    EXPECT_EQ(s.cache.liveBlocks(), 6u - retired);
    s.cache.checkInvariants();
}

} // namespace
} // namespace flashcache
