/**
 * @file
 * Coverage for the reporting and serialization utilities: power
 * report formatting, histogram rendering, and the binary scalar /
 * vector round-trips that back state persistence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system_sim.hh"
#include "sim/power_report.hh"
#include "workload/synthetic.hh"
#include "util/serialize.hh"
#include "util/stats.hh"

namespace flashcache {
namespace {

TEST(PowerReportTest, TotalsAndFormatting)
{
    PowerReport p;
    p.memRead = 0.1;
    p.memWrite = 0.2;
    p.memIdle = 0.3;
    p.flash = 0.05;
    p.disk = 1.0;
    EXPECT_DOUBLE_EQ(p.total(), 1.65);
    const std::string s = p.toString();
    EXPECT_NE(s.find("mem RD 0.100 W"), std::string::npos);
    EXPECT_NE(s.find("disk 1.000 W"), std::string::npos);
    EXPECT_NE(s.find("total 1.650 W"), std::string::npos);
}

TEST(PowerReportTest, DefaultIsZero)
{
    PowerReport p;
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(HistogramRenderingTest, SkipsEmptyBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(1.5);
    h.add(1.7);
    h.add(8.2);
    const std::string s = h.toString();
    EXPECT_NE(s.find("1..2: 2"), std::string::npos);
    EXPECT_NE(s.find("8..9: 1"), std::string::npos);
    EXPECT_EQ(s.find("3..4"), std::string::npos);
}

TEST(SerializeTest, ScalarRoundTrips)
{
    std::stringstream ss;
    putScalar<std::uint8_t>(ss, 0xAB);
    putScalar<std::uint64_t>(ss, 0x1122334455667788ull);
    putScalar<float>(ss, 3.5f);
    putScalar<double>(ss, -1.25);
    putScalar<std::int8_t>(ss, -7);

    EXPECT_EQ(getScalar<std::uint8_t>(ss), 0xAB);
    EXPECT_EQ(getScalar<std::uint64_t>(ss), 0x1122334455667788ull);
    EXPECT_FLOAT_EQ(getScalar<float>(ss), 3.5f);
    EXPECT_DOUBLE_EQ(getScalar<double>(ss), -1.25);
    EXPECT_EQ(getScalar<std::int8_t>(ss), -7);
}

TEST(SerializeTest, VectorRoundTrip)
{
    std::stringstream ss;
    const std::vector<std::uint32_t> v = {1, 2, 3, 0xFFFFFFFF};
    putVector(ss, v);
    putVector(ss, std::vector<float>{});
    EXPECT_EQ(getVector<std::uint32_t>(ss), v);
    EXPECT_TRUE(getVector<float>(ss).empty());
}

TEST(SerializeTest, MagicRoundTrip)
{
    std::stringstream ss;
    putMagic(ss, "TESTMAG1");
    expectMagic(ss, "TESTMAG1"); // no fatal
    SUCCEED();
}

TEST(SerializeDeathTest, TruncatedScalarIsFatal)
{
    std::stringstream ss;
    putScalar<std::uint8_t>(ss, 1);
    getScalar<std::uint8_t>(ss);
    EXPECT_DEATH(getScalar<std::uint64_t>(ss), "truncated");
}

TEST(SerializeDeathTest, ImplausibleVectorLengthIsFatal)
{
    std::stringstream ss;
    putScalar<std::uint64_t>(ss, 1ull << 40); // absurd element count
    EXPECT_DEATH(getVector<std::uint8_t>(ss), "implausible");
}

TEST(SerializeDeathTest, MagicMismatchIsFatal)
{
    std::stringstream ss;
    putMagic(ss, "AAAABBBB");
    EXPECT_DEATH(expectMagic(ss, "CCCCDDDD"), "magic");
}


TEST(StatsDumpTest, ContainsAllSections)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(4);
    cfg.flashBytes = mib(8);
    cfg.seed = 2;
    SystemSimulator sim(cfg);
    SyntheticConfig wl;
    wl.workingSetPages = 2000;
    auto gen = makeSynthetic(wl);
    sim.run(*gen, 20000);

    std::stringstream ss;
    sim.dumpStats(ss);
    const std::string s = ss.str();
    for (const char* key :
         {"system.requests", "system.throughput", "pdc.read_hit_rate",
          "disk.accesses", "cache.read_hit_rate", "cache.gc_runs",
          "ecc.busy", "power.total"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    // Sanity: the request count renders as the number we ran.
    EXPECT_NE(s.find("20000"), std::string::npos);
}

} // namespace
} // namespace flashcache
