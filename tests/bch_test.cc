/**
 * @file
 * BCH codec tests: known-code structure checks, exhaustive small-code
 * correction, and randomized property sweeps on the production
 * GF(2^15) page code — "inject <= t errors, decode exactly; inject
 * more, never pretend success undetectably past the CRC".
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/crc32.hh"
#include "ecc/ecc_timing.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

std::vector<std::uint8_t>
randomBytes(Rng& rng, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (auto& b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return v;
}

/** Flip k distinct random bits across the (data, parity) pair. */
std::set<std::uint32_t>
injectErrors(Rng& rng, std::vector<std::uint8_t>& data,
             std::vector<std::uint8_t>& parity, std::uint32_t parity_bits,
             unsigned k)
{
    const std::uint32_t total = static_cast<std::uint32_t>(
        data.size() * 8) + parity_bits;
    std::set<std::uint32_t> picks;
    while (picks.size() < k)
        picks.insert(static_cast<std::uint32_t>(rng.uniformInt(total)));
    for (std::uint32_t p : picks) {
        if (p < parity_bits)
            parity[p / 8] ^= static_cast<std::uint8_t>(1u << (p % 8));
        else {
            const std::uint32_t q = p - parity_bits;
            data[q / 8] ^= static_cast<std::uint8_t>(1u << (q % 8));
        }
    }
    return picks;
}

TEST(BchCodeTest, ClassicBch15_5_7Generator)
{
    // The t = 3, m = 4 BCH code is the textbook (15,5,7) code with
    // g(x) = x^10 + x^8 + x^5 + x^4 + x^2 + x + 1 (Lin & Costello).
    BchCode code(4, 3, 0);
    EXPECT_EQ(code.generator(), Gf2Poly::fromMask(0b10100110111));
    EXPECT_EQ(code.parityBits(), 10u);
}

TEST(BchCodeTest, GeneratorDegreeMatchesParity)
{
    BchCode code(6, 2, 48);
    EXPECT_EQ(code.parityBits(),
              static_cast<std::uint32_t>(code.generator().degree()));
    EXPECT_LE(code.parityBits(), 2u * 6u);
}

TEST(BchCodeTest, GeneratorDividesEveryCodeword)
{
    BchCode code(5, 2, 16);
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        auto data = randomBytes(rng, 2);
        std::vector<std::uint8_t> parity(code.parityBytes(), 0);
        code.encode(data.data(), parity.data());
        // Reassemble codeword polynomial and verify g | c.
        Gf2Poly cw;
        for (std::uint32_t i = 0; i < code.parityBits(); ++i)
            if ((parity[i / 8] >> (i % 8)) & 1)
                cw.setCoeff(i, true);
        for (std::uint32_t i = 0; i < code.dataBits(); ++i)
            if ((data[i / 8] >> (i % 8)) & 1)
                cw.setCoeff(code.parityBits() + i, true);
        EXPECT_TRUE(cw.mod(code.generator()).isZero());
    }
}

TEST(BchCodeTest, CleanWordDecodesClean)
{
    BchCode code(8, 4, 128);
    Rng rng(2);
    auto data = randomBytes(rng, 16);
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    EXPECT_TRUE(code.isCodewordClean(data.data(), parity.data()));
    const auto orig = data;
    const auto res = code.decode(data.data(), parity.data());
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedBits, 0u);
    EXPECT_EQ(data, orig);
}

/** Parameterized over (m, t, data_bytes). */
struct CodeParams
{
    unsigned m;
    unsigned t;
    std::uint32_t dataBytes;
};

class BchPropertyTest : public ::testing::TestWithParam<CodeParams>
{
};

TEST_P(BchPropertyTest, CorrectsUpToTErrors)
{
    const auto [m, t, nbytes] = GetParam();
    BchCode code(m, t, nbytes * 8);
    Rng rng(1000 + m * 31 + t);
    for (unsigned k = 0; k <= t; ++k) {
        for (int trial = 0; trial < 8; ++trial) {
            auto data = randomBytes(rng, nbytes);
            const auto orig = data;
            std::vector<std::uint8_t> parity(code.parityBytes(), 0);
            code.encode(data.data(), parity.data());
            const auto orig_parity = parity;

            injectErrors(rng, data, parity, code.parityBits(), k);
            const auto res = code.decode(data.data(), parity.data());
            ASSERT_TRUE(res.ok) << "m=" << m << " t=" << t << " k=" << k;
            EXPECT_EQ(res.correctedBits, k);
            EXPECT_EQ(data, orig);
            EXPECT_EQ(parity, orig_parity);
        }
    }
}

TEST_P(BchPropertyTest, BeyondTNeverCorruptsSilentlyPastCrc)
{
    const auto [m, t, nbytes] = GetParam();
    BchCode code(m, t, nbytes * 8);
    Rng rng(9000 + m * 31 + t);
    int detected = 0, miscorrected = 0;
    const int trials = 30;
    for (int trial = 0; trial < trials; ++trial) {
        auto data = randomBytes(rng, nbytes);
        const auto orig = data;
        const std::uint32_t crc = crc32(data.data(), data.size());
        std::vector<std::uint8_t> parity(code.parityBytes(), 0);
        code.encode(data.data(), parity.data());

        injectErrors(rng, data, parity, code.parityBits(), t + 2);
        const auto res = code.decode(data.data(), parity.data());
        if (!res.ok) {
            ++detected;
            continue;
        }
        // Decoder claimed success with > t injected errors: that is a
        // miscorrection. The CRC layer must catch it.
        if (data != orig) {
            ++miscorrected;
            EXPECT_NE(crc32(data.data(), data.size()), crc);
        }
    }
    // Every overflow either got flagged by the decoder or, when the
    // decoder miscorrected, the CRC caught it (asserted above). Weak
    // codes (small t) miscorrect often — that is exactly why the
    // paper adds the CRC layer; stronger codes should mostly detect.
    EXPECT_GT(detected + miscorrected, 0);
    if (t >= 3) {
        EXPECT_GE(detected, trials / 3);
    }
}

INSTANTIATE_TEST_SUITE_P(CodeSweep, BchPropertyTest,
    ::testing::Values(CodeParams{5, 1, 2}, CodeParams{6, 2, 4},
                      CodeParams{8, 3, 16}, CodeParams{10, 4, 64},
                      CodeParams{13, 6, 512}, CodeParams{15, 2, 2048},
                      CodeParams{15, 8, 2048}, CodeParams{15, 12, 2048}));

TEST(BchPageCodeTest, PaperParityBudget)
{
    // Section 4.1: t = 12 over a 2 KB page must need at most 23 bytes
    // of check bits, leaving room for CRC32 in the 64-byte spare.
    BchCode code(15, 12, 2048 * 8);
    EXPECT_LE(code.parityBytes(), 23u);
    EXPECT_EQ(code.parityBits(), 15u * 12u);
}

TEST(BchPageCodeTest, ErrorsInParityAreAlsoCorrected)
{
    BchCode code(15, 4, 2048 * 8);
    Rng rng(5);
    auto data = randomBytes(rng, 2048);
    const auto orig = data;
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    const auto orig_parity = parity;
    // Flip bits only inside the parity region.
    parity[0] ^= 0x3; // two bit errors
    const auto res = code.decode(data.data(), parity.data());
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedBits, 2u);
    EXPECT_EQ(data, orig);
    EXPECT_EQ(parity, orig_parity);
}

TEST(BchPageCodeTest, BurstErrorWithinStrength)
{
    BchCode code(15, 12, 2048 * 8);
    Rng rng(6);
    auto data = randomBytes(rng, 2048);
    const auto orig = data;
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    // A clustered 12-bit burst (spatially-correlated bad cells,
    // section 4.1.3).
    data[100] ^= 0xFF;
    data[101] ^= 0x0F;
    const auto res = code.decode(data.data(), parity.data());
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedBits, 12u);
    EXPECT_EQ(data, orig);
}

TEST(EccTimingTest, MatchesPaperRange)
{
    // Table 3: BCH code latency 58 us ~ 400 us over the strengths the
    // controller uses.
    EccTimingModel model;
    const Seconds lo = model.decodeLatency(2).total();
    const Seconds hi = model.decodeLatency(12).total();
    EXPECT_GT(lo, microseconds(40));
    EXPECT_LT(lo, microseconds(90));
    EXPECT_GT(hi, microseconds(300));
    EXPECT_LT(hi, microseconds(450));
}

TEST(EccTimingTest, MonotoneAndChienSyndromeDominated)
{
    EccTimingModel model;
    Seconds prev = 0.0;
    for (unsigned t = 1; t <= 50; ++t) {
        const auto lat = model.decodeLatency(t);
        EXPECT_GT(lat.total(), prev);
        prev = lat.total();
        // Berlekamp is "insignificant" (section 4.1.1).
        EXPECT_LT(lat.berlekamp, 0.05 * lat.total());
    }
}

TEST(EccTimingTest, ZeroStrengthIsFree)
{
    EccTimingModel model;
    EXPECT_DOUBLE_EQ(model.decodeLatency(0).total(), 0.0);
}

TEST(EccTimingTest, EncodeMuchCheaperThanDecode)
{
    EccTimingModel model;
    for (unsigned t : {1u, 6u, 12u})
        EXPECT_LT(model.encodeLatency(t), model.decodeLatency(t).total());
}

} // namespace
} // namespace flashcache
