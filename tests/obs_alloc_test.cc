/**
 * @file
 * Steady-state allocation guarantee of the tracer ring: once the
 * Tracer is constructed, recording spans, leaves and instants —
 * including after the ring wraps — performs zero heap allocations
 * (global operator new/delete are replaced with counting versions,
 * as in allocation_test.cc).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "obs/trace.hh"

// ---------------------------------------------------------------------
// Counting allocator overrides (global scope, required by [new.delete]).
// The replacement new uses malloc and the replacement delete frees it;
// GCC cannot see the pairing across the replacement boundary, so the
// mismatch warning is a false positive here.
// ---------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::uint64_t g_allocCount = 0;
} // namespace

void*
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return operator new(n);
}

void*
operator new(std::size_t n, const std::nothrow_t&) noexcept
{
    ++g_allocCount;
    return std::malloc(n ? n : 1);
}

void*
operator new[](std::size_t n, const std::nothrow_t& t) noexcept
{
    return operator new(n, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

namespace flashcache {
namespace obs {
namespace {

TEST(TracerAllocTest, RecordingNeverAllocates)
{
    Tracer t(1024); // construction preallocates the ring
    // Warm one full lap so any lazy setup is behind us.
    for (int i = 0; i < 1024; ++i)
        t.leaf("warm", "c", 1e-6);

    const std::uint64_t before = g_allocCount;
    // Four laps of mixed recording: wraps, drops, nesting.
    for (int i = 0; i < 1024; ++i) {
        SpanGuard outer(&t, "outer", "c");
        t.leaf("leaf", "c", 1e-6);
        t.instant("mark", "c");
        {
            SpanGuard inner(&t, "inner", "c");
            t.leaf("deep", "c", 1e-7);
        }
    }
    EXPECT_EQ(g_allocCount, before);
    EXPECT_EQ(t.size(), t.capacity());
    EXPECT_GT(t.dropped(), 0u);
}

TEST(TracerAllocTest, NullTracerSitesNeverAllocate)
{
    Tracer* none = nullptr;
    const std::uint64_t before = g_allocCount;
    for (int i = 0; i < 4096; ++i) {
        FC_SPAN(none, "s", "c");
        FC_LEAF(none, "l", "c", 1e-6);
        FC_INSTANT(none, "i", "c");
    }
    EXPECT_EQ(g_allocCount, before);
}

} // namespace
} // namespace obs
} // namespace flashcache
