/**
 * @file
 * Event-scheduler tests: exact virtual-time ordering on scripted
 * demand chains, background two-level scheduling, determinism,
 * queue/utilization invariants under seeded multi-client fuzz, and
 * the 1-client/1-channel equivalence between the event wall clock
 * and the retired analytic approximation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "sched/demand.hh"
#include "sched/scheduler.hh"
#include "sim/system_sim.hh"
#include "util/rng.hh"
#include "workload/macro.hh"

namespace flashcache {
namespace sched {
namespace {

using Completion = std::tuple<Seconds, Seconds, Seconds>;

TEST(LogHistogramTest, PercentilesLandInTheRightBucket)
{
    LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(1e-6);
    h.record(1e-3);
    EXPECT_EQ(h.count(), 101u);
    // Geometric bucket midpoints: ~19% wide, so allow a loose band.
    EXPECT_GT(h.percentile(50), 0.7e-6);
    EXPECT_LT(h.percentile(50), 1.4e-6);
    EXPECT_GT(h.percentile(100), 0.7e-3);
    EXPECT_LT(h.percentile(100), 1.4e-3);
    EXPECT_LE(h.percentile(50), h.percentile(95));
    EXPECT_LE(h.percentile(95), h.percentile(99));
}

TEST(LogHistogramTest, MergeSumsCounts)
{
    LogHistogram a, b;
    a.record(1e-6);
    b.record(1e-3);
    b.record(2e-3);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_GT(a.percentile(99), 1e-4); // tail came from b
}

TEST(LogHistogramTest, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(ClosedLoopTest, TwoClientsShareOneDiskExactTimes)
{
    SchedConfig cfg;
    cfg.clients = 2;
    cfg.flashChannels = 1;
    cfg.eccUnits = 1;
    cfg.dramPorts = 1;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);

    int issued = 0;
    const auto source = [&](Seconds& compute) {
        if (issued >= 2)
            return false;
        ++issued;
        compute = 0.001;
        sink.record(ResourceKind::Disk, 0, 0.002);
        return true;
    };
    std::vector<Completion> done;
    loop.run(source, [&](Seconds c, Seconds i, Seconds t) {
        done.push_back({c, i, t});
    });

    // Both clients issue at 1 ms; the single disk serves them back to
    // back: completions at 3 ms and 5 ms, the second one having
    // queued for 2 ms.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(std::get<0>(done[0]), 0.001);
    EXPECT_DOUBLE_EQ(std::get<1>(done[0]), 0.001);
    EXPECT_DOUBLE_EQ(std::get<2>(done[0]), 0.003);
    EXPECT_DOUBLE_EQ(std::get<2>(done[1]), 0.005);
    EXPECT_DOUBLE_EQ(loop.wallClock(), 0.005);
    EXPECT_EQ(loop.requestsCompleted(), 2u);
    EXPECT_DOUBLE_EQ(loop.busySeconds(Group::Disk), 0.004);
    EXPECT_DOUBLE_EQ(loop.utilization(Group::Disk), 0.8);
    EXPECT_EQ(loop.maxQueueDepth(Group::Disk), 1u);
    EXPECT_EQ(loop.served(Group::Disk), 2u);
    EXPECT_EQ(loop.backgroundServed(Group::Disk), 0u);
}

TEST(ClosedLoopTest, OneClientWalksStagesSerially)
{
    SchedConfig cfg;
    cfg.clients = 1;
    cfg.flashChannels = 2;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);

    // Three requests over every resource class; with one client there
    // is never contention, so the wall clock is the plain serial sum.
    struct Req
    {
        Seconds compute;
        std::vector<Demand> demands;
    };
    const std::vector<Req> script = {
        {100e-6,
         {{ResourceKind::FlashChannel, 0, 50e-6, false},
          {ResourceKind::Ecc, 0, 10e-6, false}}},
        {200e-6, {{ResourceKind::Disk, 0, 4200e-6, false}}},
        {50e-6,
         {{ResourceKind::DramPort, 0, 1e-6, false},
          {ResourceKind::FlashChannel, 1, 60e-6, false}}},
    };
    std::size_t next = 0;
    const auto source = [&](Seconds& compute) {
        if (next >= script.size())
            return false;
        compute = script[next].compute;
        for (const Demand& d : script[next].demands)
            sink.record(d.kind, d.channel, d.service);
        ++next;
        return true;
    };
    Seconds expected = 0;
    for (const Req& r : script) {
        expected += r.compute;
        for (const Demand& d : r.demands)
            expected += d.service;
    }
    loop.run(source, [](Seconds, Seconds, Seconds) {});
    EXPECT_DOUBLE_EQ(loop.wallClock(), expected);
    EXPECT_EQ(loop.requestsCompleted(), 3u);
    EXPECT_GT(loop.utilization(Group::Disk), 0.0);
    EXPECT_GT(loop.busySeconds(Group::Flash), 0.0);
}

TEST(ClosedLoopTest, ComputeOnlyRequestCompletesAtIssue)
{
    SchedConfig cfg;
    cfg.clients = 1;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);
    int issued = 0;
    const auto source = [&](Seconds& compute) {
        if (issued >= 2)
            return false;
        compute = issued == 0 ? 0.001 : 0.002;
        ++issued;
        return true; // PDC hit served above the device models
    };
    std::vector<Completion> done;
    loop.run(source, [&](Seconds c, Seconds i, Seconds t) {
        done.push_back({c, i, t});
    });
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(std::get<1>(done[0]), std::get<2>(done[0]));
    EXPECT_DOUBLE_EQ(std::get<2>(done[1]), 0.003);
    EXPECT_DOUBLE_EQ(loop.wallClock(), 0.003);
}

TEST(ClosedLoopTest, BackgroundFillsIdleTimeAndExtendsTheWall)
{
    SchedConfig cfg;
    cfg.clients = 1;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);

    // Request 1 is compute-only but kicks off a 5 ms background disk
    // write-back; request 2 needs the disk in the foreground and must
    // wait behind the non-preemptible background op.
    int issued = 0;
    const auto source = [&](Seconds& compute) {
        if (issued == 0) {
            compute = 0.001;
            sink.pushBackground();
            sink.record(ResourceKind::Disk, 0, 0.005);
            sink.popBackground();
        } else if (issued == 1) {
            compute = 0.001;
            sink.record(ResourceKind::Disk, 0, 0.001);
        } else {
            return false;
        }
        ++issued;
        return true;
    };
    std::vector<Completion> done;
    loop.run(source, [&](Seconds c, Seconds i, Seconds t) {
        done.push_back({c, i, t});
    });

    // t=1ms: bg starts (disk idle). Request 2 issues at 2 ms, waits
    // until 6 ms, served 6..7 ms. The wall includes the bg runoff.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(std::get<2>(done[0]), 0.001);
    EXPECT_DOUBLE_EQ(std::get<1>(done[1]), 0.002);
    EXPECT_DOUBLE_EQ(std::get<2>(done[1]), 0.007);
    EXPECT_DOUBLE_EQ(loop.wallClock(), 0.007);
    EXPECT_EQ(loop.backgroundServed(Group::Disk), 1u);
    EXPECT_DOUBLE_EQ(loop.busySeconds(Group::Disk), 0.006);
}

TEST(ClosedLoopTest, FreedServerPrefersForegroundOverQueuedBackground)
{
    SchedConfig cfg;
    cfg.clients = 1;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);

    // One request records two 5 ms background ops and a 2 ms
    // foreground stage. The first bg op reaches the idle disk first
    // (same timestamp, earlier submission); when it finishes at 6 ms
    // the foreground stage must be taken before the second bg op.
    int issued = 0;
    const auto source = [&](Seconds& compute) {
        if (issued >= 1)
            return false;
        ++issued;
        compute = 0.001;
        sink.pushBackground();
        sink.record(ResourceKind::Disk, 0, 0.005);
        sink.popBackground();
        sink.record(ResourceKind::Disk, 0, 0.002);
        sink.pushBackground();
        sink.record(ResourceKind::Disk, 0, 0.005);
        sink.popBackground();
        return true;
    };
    std::vector<Completion> done;
    loop.run(source, [&](Seconds c, Seconds i, Seconds t) {
        done.push_back({c, i, t});
    });

    // fg: arrives 1 ms, waits for bg#1 (1..6 ms), served 6..8 ms.
    // bg#2: queued since 1 ms, only starts after the fg at 8..13 ms.
    ASSERT_EQ(done.size(), 1u);
    EXPECT_DOUBLE_EQ(std::get<2>(done[0]), 0.008);
    EXPECT_DOUBLE_EQ(loop.wallClock(), 0.013);
    EXPECT_EQ(loop.backgroundServed(Group::Disk), 2u);
    EXPECT_EQ(loop.served(Group::Disk), 3u);
    EXPECT_EQ(loop.maxQueueDepth(Group::Disk), 2u);
}

TEST(ClosedLoopTest, ScriptedChannelScaling)
{
    // 400 flash ops of 100 us round-robined over 4 channel indices:
    // one channel serializes them, four channels overlap them.
    const auto runWith = [](std::uint32_t channels) {
        SchedConfig cfg;
        cfg.clients = 8;
        cfg.flashChannels = channels;
        DemandSink sink;
        ClosedLoop loop(cfg, sink);
        int issued = 0;
        const auto source = [&](Seconds& compute) {
            if (issued >= 400)
                return false;
            compute = 0;
            sink.record(ResourceKind::FlashChannel,
                        static_cast<std::uint16_t>(issued % 4), 100e-6);
            ++issued;
            return true;
        };
        loop.run(source, [](Seconds, Seconds, Seconds) {});
        return loop.wallClock();
    };
    const Seconds wall1 = runWith(1);
    const Seconds wall4 = runWith(4);
    EXPECT_NEAR(wall1, 400 * 100e-6, 1e-9); // fully serialized
    EXPECT_GE(wall4, 100 * 100e-6 - 1e-9);  // 100 ops per channel
    EXPECT_GE(wall1 / wall4, 3.0);
}

/** Seeded random closed-loop run; returns a full result fingerprint. */
struct FuzzResult
{
    Seconds wall = 0;
    std::vector<Completion> completions;
    Seconds busy[4] = {0, 0, 0, 0};
    std::uint64_t served[4] = {0, 0, 0, 0};

    bool
    operator==(const FuzzResult& o) const
    {
        if (wall != o.wall || completions != o.completions)
            return false;
        for (int g = 0; g < 4; ++g) {
            if (busy[g] != o.busy[g] || served[g] != o.served[g])
                return false;
        }
        return true;
    }
};

FuzzResult
fuzzRun(std::uint64_t seed, std::uint64_t requests)
{
    SchedConfig cfg;
    cfg.clients = 5;
    cfg.flashChannels = 3;
    cfg.eccUnits = 2;
    cfg.dramPorts = 2;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);
    Rng rng(seed);
    std::uint64_t issued = 0;
    std::uint64_t demands = 0;
    const auto source = [&](Seconds& compute) {
        if (issued >= requests)
            return false;
        ++issued;
        compute = rng.uniform(0.0, 100e-6);
        const std::uint64_t n = rng.uniformInt(5);
        for (std::uint64_t d = 0; d < n; ++d) {
            const bool bg = rng.bernoulli(0.3);
            if (bg)
                sink.pushBackground();
            const auto kind =
                static_cast<ResourceKind>(rng.uniformInt(4));
            sink.record(kind,
                        static_cast<std::uint16_t>(rng.uniformInt(8)),
                        rng.uniform(1e-6, 200e-6));
            if (bg)
                sink.popBackground();
            ++demands;
        }
        return true;
    };
    FuzzResult res;
    loop.run(source, [&](Seconds c, Seconds i, Seconds t) {
        res.completions.push_back({c, i, t});
    });
    res.wall = loop.wallClock();
    const Group groups[4] = {Group::Flash, Group::Disk, Group::Ecc,
                             Group::Dram};
    for (int g = 0; g < 4; ++g) {
        res.busy[g] = loop.busySeconds(groups[g]);
        res.served[g] = loop.served(groups[g]);
    }
    (void)demands;
    return res;
}

TEST(ClosedLoopTest, SeededFuzzIsBitDeterministic)
{
    for (std::uint64_t seed : {1ull, 42ull, 977ull}) {
        const FuzzResult a = fuzzRun(seed, 300);
        const FuzzResult b = fuzzRun(seed, 300);
        EXPECT_TRUE(a == b) << "seed " << seed;
        EXPECT_EQ(a.completions.size(), 300u);
    }
}

TEST(ClosedLoopTest, FuzzInvariantsHold)
{
    SchedConfig cfg;
    cfg.clients = 5;
    cfg.flashChannels = 3;
    cfg.eccUnits = 2;
    cfg.dramPorts = 2;
    DemandSink sink;
    ClosedLoop loop(cfg, sink);
    Rng rng(2026);
    std::uint64_t issued = 0;
    std::uint64_t byGroup[4] = {0, 0, 0, 0};
    const auto source = [&](Seconds& compute) {
        if (issued >= 1000)
            return false;
        ++issued;
        compute = rng.uniform(0.0, 50e-6);
        const std::uint64_t n = rng.uniformInt(4);
        for (std::uint64_t d = 0; d < n; ++d) {
            const bool bg = rng.bernoulli(0.25);
            if (bg)
                sink.pushBackground();
            const std::uint64_t kind = rng.uniformInt(4);
            sink.record(static_cast<ResourceKind>(kind),
                        static_cast<std::uint16_t>(rng.uniformInt(6)),
                        rng.uniform(1e-6, 300e-6));
            if (bg)
                sink.popBackground();
            ++byGroup[kind];
        }
        return true;
    };
    Seconds last_completion = 0;
    loop.run(source, [&](Seconds, Seconds issue, Seconds t) {
        EXPECT_GE(t, issue);
        last_completion = std::max(last_completion, t);
    });

    EXPECT_EQ(loop.requestsCompleted(), 1000u);
    EXPECT_GE(loop.wallClock(), last_completion);
    const struct
    {
        Group g;
        std::uint64_t servers;
    } groups[4] = {{Group::Flash, 3},
                   {Group::Disk, 1},
                   {Group::Ecc, 2},
                   {Group::Dram, 2}};
    for (int g = 0; g < 4; ++g) {
        // Every submitted demand was served exactly once.
        EXPECT_EQ(loop.served(groups[g].g), byGroup[g]);
        // No server group can exceed full utilization, and the wall
        // clock must cover each group's per-server busy share.
        EXPECT_LE(loop.utilization(groups[g].g), 1.0 + 1e-9);
        EXPECT_GE(loop.wallClock() + 1e-9,
                  loop.busySeconds(groups[g].g) /
                      static_cast<double>(groups[g].servers));
        // Percentiles are monotone.
        const double p50 = loop.sojournPercentile(groups[g].g, 50);
        const double p95 = loop.sojournPercentile(groups[g].g, 95);
        const double p99 = loop.sojournPercentile(groups[g].g, 99);
        EXPECT_LE(p50, p95 + 1e-12);
        EXPECT_LE(p95, p99 + 1e-12);
    }
}

TEST(SystemSchedTest, OneClientOneChannelMatchesAnalyticWall)
{
    // With one client and every resource serialized, the event engine
    // degenerates to the retired analytic model: compute + latency
    // sums with no overlap. The Figure 9 macro workload must agree
    // within 5% (it agrees exactly; the band allows for model drift).
    SystemConfig cfg;
    cfg.dramBytes = mib(32);
    cfg.flashBytes = mib(64);
    cfg.computeTime = milliseconds(1.5);
    cfg.clients = 1;
    cfg.flashChannels = 1;
    cfg.eccUnits = 1;
    cfg.dramPorts = 1;
    cfg.seed = 13;
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("dbt2", 0.05));
    sim.run(*gen, 20000);
    ASSERT_GT(sim.analyticWallClock(), 0.0);
    const double ratio =
        sim.stats().wallClock / sim.analyticWallClock();
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.05);
}

TEST(SystemSchedTest, MoreClientsOverlapTheWall)
{
    const auto wallWith = [](unsigned clients) {
        SystemConfig cfg;
        cfg.dramBytes = mib(16);
        cfg.flashBytes = mib(32);
        cfg.computeTime = milliseconds(4.0);
        cfg.clients = clients;
        cfg.seed = 5;
        SystemSimulator sim(cfg);
        auto gen = makeMacro(macroConfig("dbt2", 0.02));
        sim.run(*gen, 20000);
        return sim.stats().wallClock;
    };
    // Compute dominates this configuration, so doubling the client
    // count should nearly halve the wall clock.
    const Seconds w4 = wallWith(4);
    const Seconds w8 = wallWith(8);
    EXPECT_LT(w8, w4);
    EXPECT_GT(w4 / w8, 1.5);
}

TEST(SystemSchedTest, SchedMetricsAppearInStatsJson)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(16);
    cfg.flashBytes = mib(32);
    cfg.seed = 3;
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("dbt2", 0.02));
    sim.run(*gen, 5000);
    std::ostringstream os;
    sim.writeStatsJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"sched.clients\""), std::string::npos);
    EXPECT_NE(json.find("\"sched.flash.sojourn_p99\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sched.disk.utilization\""),
              std::string::npos);
    EXPECT_NE(json.find("\"system.analytic_wall_clock\""),
              std::string::npos);
    EXPECT_GT(sim.stats().wallClock, 0.0);
}

} // namespace
} // namespace sched
} // namespace flashcache
