/**
 * @file
 * Differential tests for the word-parallel ECC hot path: the
 * table-driven encoder, byte-wise syndromes and incremental Chien
 * search must agree bit-for-bit with the retained bit-serial
 * reference (encodeReference/decodeReference) for every controller
 * strength t = 1..12 over randomized 2 KB pages with 0..t+1 injected
 * errors — including the t+1 overflow case, where both decoders must
 * detect or miscorrect identically. Also enforces the "no heap
 * allocation in steady-state encode/decode" contract by counting
 * global operator new calls around the hot path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/crc32.hh"
#include "util/rng.hh"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

} // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flashcache {
namespace {

std::vector<std::uint8_t>
randomBytes(Rng& rng, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (auto& b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return v;
}

void
injectErrors(Rng& rng, std::vector<std::uint8_t>& data,
             std::vector<std::uint8_t>& parity, std::uint32_t parity_bits,
             unsigned k)
{
    const std::uint32_t total = static_cast<std::uint32_t>(
        data.size() * 8) + parity_bits;
    std::set<std::uint32_t> picks;
    while (picks.size() < k)
        picks.insert(static_cast<std::uint32_t>(rng.uniformInt(total)));
    for (std::uint32_t p : picks) {
        if (p < parity_bits)
            parity[p / 8] ^= static_cast<std::uint8_t>(1u << (p % 8));
        else {
            const std::uint32_t q = p - parity_bits;
            data[q / 8] ^= static_cast<std::uint8_t>(1u << (q % 8));
        }
    }
}

TEST(BchDifferentialTest, PageEncoderMatchesReferenceForAllStrengths)
{
    Rng rng(71);
    for (unsigned t = 1; t <= 12; ++t) {
        BchCode code(15, t, 2048 * 8);
        for (int trial = 0; trial < 3; ++trial) {
            const auto data = randomBytes(rng, 2048);
            std::vector<std::uint8_t> fast(code.parityBytes(), 0xAA);
            std::vector<std::uint8_t> ref(code.parityBytes(), 0x55);
            code.encode(data.data(), fast.data());
            code.encodeReference(data.data(), ref.data());
            ASSERT_EQ(fast, ref) << "t=" << t << " trial=" << trial;
        }
    }
}

TEST(BchDifferentialTest, PageDecoderMatchesReferenceUpToTPlusOneErrors)
{
    // For k <= t both decoders must fully correct; for k = t + 1 they
    // must behave identically: same ok flag, same corrected count,
    // and bit-identical resulting buffers (detected-or-miscorrected
    // the same way).
    Rng rng(72);
    for (unsigned t = 1; t <= 12; ++t) {
        BchCode code(15, t, 2048 * 8);
        const auto orig = randomBytes(rng, 2048);
        std::vector<std::uint8_t> orig_parity(code.parityBytes(), 0);
        code.encode(orig.data(), orig_parity.data());

        for (unsigned k = 0; k <= t + 1; ++k) {
            auto data = orig;
            auto parity = orig_parity;
            injectErrors(rng, data, parity, code.parityBits(), k);
            auto ref_data = data;
            auto ref_parity = parity;

            const auto res = code.decode(data.data(), parity.data());
            const auto ref = code.decodeReference(ref_data.data(),
                                                  ref_parity.data());

            ASSERT_EQ(res.ok, ref.ok) << "t=" << t << " k=" << k;
            ASSERT_EQ(res.correctedBits, ref.correctedBits)
                << "t=" << t << " k=" << k;
            ASSERT_EQ(data, ref_data) << "t=" << t << " k=" << k;
            ASSERT_EQ(parity, ref_parity) << "t=" << t << " k=" << k;
            for (unsigned i = 0; i < res.correctedBits &&
                 i < BchDecodeResult::kMaxReportedPositions; ++i) {
                EXPECT_EQ(res.positions[i], ref.positions[i])
                    << "t=" << t << " k=" << k << " i=" << i;
            }
            if (k <= t) {
                EXPECT_TRUE(res.ok) << "t=" << t << " k=" << k;
                EXPECT_EQ(res.correctedBits, k);
                EXPECT_EQ(data, orig);
                EXPECT_EQ(parity, orig_parity);
            }
        }
    }
}

TEST(BchDifferentialTest, SmallCodesMatchReferenceToo)
{
    // Sweep small fields, including codes whose parity is not
    // byte-aligned and the r < 8 encoder fallback.
    Rng rng(73);
    const struct { unsigned m, t; std::uint32_t bytes; } params[] = {
        {5, 1, 2}, {5, 2, 1}, {6, 2, 4}, {8, 3, 16}, {10, 4, 64},
        {13, 6, 512},
    };
    for (const auto& pr : params) {
        BchCode code(pr.m, pr.t, pr.bytes * 8);
        for (unsigned k = 0; k <= pr.t + 1; ++k) {
            for (int trial = 0; trial < 4; ++trial) {
                const auto orig = randomBytes(rng, pr.bytes);
                std::vector<std::uint8_t> parity(code.parityBytes(), 0);
                code.encode(orig.data(), parity.data());
                std::vector<std::uint8_t> ref_par(code.parityBytes(), 0);
                code.encodeReference(orig.data(), ref_par.data());
                ASSERT_EQ(parity, ref_par) << "m=" << pr.m;

                auto data = orig;
                injectErrors(rng, data, parity, code.parityBits(), k);
                auto rd = data;
                auto rp = parity;
                const auto res = code.decode(data.data(), parity.data());
                const auto ref = code.decodeReference(rd.data(),
                                                      rp.data());
                ASSERT_EQ(res.ok, ref.ok)
                    << "m=" << pr.m << " t=" << pr.t << " k=" << k;
                ASSERT_EQ(res.correctedBits, ref.correctedBits);
                ASSERT_EQ(data, rd);
                ASSERT_EQ(parity, rp);
            }
        }
    }
}

TEST(BchDifferentialTest, CleanlinessCheckMatchesDecode)
{
    Rng rng(74);
    BchCode code(15, 8, 2048 * 8);
    auto data = randomBytes(rng, 2048);
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);
    code.encode(data.data(), parity.data());
    EXPECT_TRUE(code.isCodewordClean(data.data(), parity.data()));
    data[1234] ^= 0x10;
    EXPECT_FALSE(code.isCodewordClean(data.data(), parity.data()));
}

TEST(BchDifferentialTest, SteadyStateEncodeDecodeDoNotAllocate)
{
    // The acceptance contract of the word-parallel rewrite: after
    // construction, encode and decode (clean, corrected and overflow
    // paths) never touch the heap.
    Rng rng(75);
    BchCode code(15, 12, 2048 * 8);
    auto data = randomBytes(rng, 2048);
    std::vector<std::uint8_t> parity(code.parityBytes(), 0);

    // Warm up every path once (lazy CRC-style statics, etc.).
    code.encode(data.data(), parity.data());
    (void)code.decode(data.data(), parity.data());

    const std::uint64_t before = g_allocations.load();

    code.encode(data.data(), parity.data());

    // Clean decode.
    auto res = code.decode(data.data(), parity.data());
    EXPECT_TRUE(res.ok);

    // Decode with t correctable errors.
    for (unsigned e = 0; e < 12; ++e)
        data[100 * e + 3] ^= 4;
    res = code.decode(data.data(), parity.data());
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedBits, 12u);

    // isCodewordClean rides the same syndrome path.
    EXPECT_TRUE(code.isCodewordClean(data.data(), parity.data()));

    // Overflow (detected or miscorrected): still allocation-free.
    for (unsigned e = 0; e < 14; ++e)
        data[50 * e + 7] ^= 0x20;
    (void)code.decode(data.data(), parity.data());

    EXPECT_EQ(g_allocations.load(), before)
        << "steady-state encode/decode touched the heap";
}

} // namespace
} // namespace flashcache
