/**
 * @file
 * DRAM and disk model tests (Table 2/3 behaviours feeding Figure 9).
 */

#include <gtest/gtest.h>

#include "devices/disk.hh"
#include "devices/dram.hh"
#include "fault/fault_injector.hh"
#include "util/stats.hh"

namespace flashcache {
namespace {

TEST(DramModelTest, DeviceCountFromCapacity)
{
    EXPECT_EQ(DramModel(mib(128)).deviceCount(), 1u);
    EXPECT_EQ(DramModel(mib(256)).deviceCount(), 2u);
    EXPECT_EQ(DramModel(mib(512)).deviceCount(), 4u);
    EXPECT_EQ(DramModel(mib(130)).deviceCount(), 2u); // rounds up
}

TEST(DramModelTest, AccessLatencyIncludesRowCycleAndTransfer)
{
    DramModel d(mib(256));
    const Seconds lat = d.read(2048);
    EXPECT_GT(lat, nanoseconds(50));
    EXPECT_LT(lat, microseconds(2));
    // Bigger transfers take longer.
    EXPECT_GT(d.write(65536), lat);
}

TEST(DramModelTest, EnergySplitsReadWriteIdle)
{
    DramModel d(mib(256));
    for (int i = 0; i < 100; ++i)
        d.read(2048);
    for (int i = 0; i < 50; ++i)
        d.write(2048);
    const DramEnergy e = d.energyOver(1.0);
    EXPECT_GT(e.read, 0.0);
    EXPECT_GT(e.write, 0.0);
    EXPECT_NEAR(e.read / e.write, 2.0, 0.01); // 2x the accesses
    // Idle dominates at this trivial utilization: 2 devices x 80 mW.
    EXPECT_NEAR(e.idle, 0.160, 1e-9);
    EXPECT_GT(e.idle, e.read + e.write);
}

TEST(DramModelTest, MoreCapacityMoreIdlePower)
{
    DramModel small(mib(128)), big(mib(512));
    EXPECT_GT(big.energyOver(1.0).idle, small.energyOver(1.0).idle);
}

TEST(DiskModelTest, RandomAccessMeanNearSpec)
{
    DiskModel disk;
    Rng rng(1);
    RunningStat lat;
    for (int i = 0; i < 20000; ++i)
        lat.add(disk.access(rng.next(), false));
    EXPECT_NEAR(lat.mean(), milliseconds(4.2), milliseconds(0.15));
}

TEST(DiskModelTest, SequentialAccessMuchCheaper)
{
    DiskModel disk;
    const Seconds r = disk.access(1000, false);
    const Seconds s = disk.access(1001, false); // consecutive LBA
    EXPECT_LT(s, r);
    EXPECT_LT(disk.access(5000, true), milliseconds(1));
}

TEST(DiskModelTest, EnergyActivePlusIdle)
{
    DiskSpec spec;
    DiskModel disk(spec);
    disk.access(1, false);
    const Seconds busy = disk.busyTime();
    EXPECT_GT(busy, 0.0);
    const Joules e = disk.energyOver(1.0);
    EXPECT_NEAR(e, busy * spec.activePower + (1.0 - busy) * spec.idlePower,
                1e-12);
    // Idle disk over 1 s burns idle power only.
    DiskModel idle_disk(spec);
    EXPECT_NEAR(idle_disk.energyOver(1.0), spec.idlePower, 1e-12);
    EXPECT_NEAR(idle_disk.powerOver(1.0), spec.idlePower, 1e-12);
}

TEST(DiskModelTest, CountsAccesses)
{
    DiskModel disk;
    for (int i = 0; i < 7; ++i)
        disk.access(i * 100, false);
    EXPECT_EQ(disk.accesses(), 7u);
}

TEST(DiskModelTest, RetrySeeksInvalidateSequentialShortcut)
{
    FaultPlan plan;
    plan.diskFaultRate = 1.0; // every attempt hits a latent error
    plan.diskMaxRetries = 2;
    FaultInjector fault(plan);
    DiskModel disk;
    disk.attachFaultInjector(&fault);

    disk.access(1000, false); // park the head after LBA 1000
    const auto res = disk.accessChecked(1001, false);
    EXPECT_TRUE(res.failed);
    EXPECT_EQ(res.retries, 2u);

    // The retries repositioned the head, so the next consecutive LBA
    // must pay a full seek (>= 0.5x average), not the 0.15x shortcut.
    const Seconds next = disk.access(1002, false);
    EXPECT_GE(next, 0.5 * DiskSpec().avgAccessLatency - 1e-12);

    // With the head parked again the shortcut is back.
    const Seconds seq = disk.access(1003, false);
    EXPECT_NEAR(seq, 0.15 * DiskSpec().avgAccessLatency, 1e-12);
}

TEST(DiskModelTest, RecordsDemandsIncludingRetrySeeks)
{
    sched::DemandSink sink;
    FaultPlan plan;
    plan.diskFaultRate = 1.0;
    plan.diskMaxRetries = 3;
    FaultInjector fault(plan);
    DiskModel disk;
    disk.attachDemandSink(&sink);
    disk.attachFaultInjector(&fault);

    const auto res = disk.accessChecked(42, false);
    ASSERT_EQ(sink.demands().size(), 4u); // initial seek + 3 retries
    Seconds sum = 0.0;
    for (const auto& d : sink.demands()) {
        EXPECT_EQ(d.kind, sched::ResourceKind::Disk);
        EXPECT_FALSE(d.background);
        sum += d.service;
    }
    EXPECT_NEAR(sum, res.latency, 1e-12);
    EXPECT_NEAR(sum, disk.busyTime(), 1e-12);
}

} // namespace
} // namespace flashcache
