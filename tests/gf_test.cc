/**
 * @file
 * Tests for GF(2^m) arithmetic and the polynomial types, including
 * parameterized field-axiom property checks over several degrees.
 */

#include <gtest/gtest.h>

#include "gf/gf2_poly.hh"
#include "gf/gf2m.hh"
#include "gf/gf_poly.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class FieldAxioms : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FieldAxioms, MultiplicationAgainstCarrylessReduce)
{
    const unsigned m = GetParam();
    GaloisField gf(m);
    // Reference multiply: carryless product reduced mod the
    // primitive polynomial.
    auto ref_mul = [&](std::uint32_t a, std::uint32_t b) {
        std::uint64_t prod = 0;
        for (unsigned i = 0; i < m; ++i)
            if (b & (1u << i))
                prod ^= static_cast<std::uint64_t>(a) << i;
        for (int i = 2 * m - 2; i >= static_cast<int>(m); --i)
            if (prod & (1ull << i))
                prod ^= static_cast<std::uint64_t>(gf.primitivePoly())
                    << (i - m);
        return static_cast<std::uint32_t>(prod);
    };
    Rng rng(m);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint32_t>(
            rng.uniformInt(gf.size()));
        const auto b = static_cast<std::uint32_t>(
            rng.uniformInt(gf.size()));
        EXPECT_EQ(gf.mul(a, b), ref_mul(a, b))
            << "a=" << a << " b=" << b << " m=" << m;
    }
}

TEST_P(FieldAxioms, InverseAndDivision)
{
    GaloisField gf(GetParam());
    for (GaloisField::Elem a = 1; a < gf.size(); ++a) {
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
        EXPECT_EQ(gf.div(a, a), 1u);
    }
}

TEST_P(FieldAxioms, DistributivityAndAssociativity)
{
    GaloisField gf(GetParam());
    Rng rng(77);
    for (int i = 0; i < 1000; ++i) {
        const auto a = static_cast<std::uint32_t>(
            rng.uniformInt(gf.size()));
        const auto b = static_cast<std::uint32_t>(
            rng.uniformInt(gf.size()));
        const auto c = static_cast<std::uint32_t>(
            rng.uniformInt(gf.size()));
        EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
        EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
    }
}

TEST_P(FieldAxioms, AlphaPowWraps)
{
    GaloisField gf(GetParam());
    const std::int64_t n = gf.groupOrder();
    EXPECT_EQ(gf.alphaPow(0), 1u);
    EXPECT_EQ(gf.alphaPow(n), 1u);
    EXPECT_EQ(gf.alphaPow(-1), gf.inv(2));
    EXPECT_EQ(gf.alphaPow(1), 2u);
}

TEST_P(FieldAxioms, PowMatchesRepeatedMul)
{
    GaloisField gf(GetParam());
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const auto a = static_cast<std::uint32_t>(
            1 + rng.uniformInt(gf.size() - 1));
        const auto e = rng.uniformInt(20);
        GaloisField::Elem acc = 1;
        for (std::uint64_t j = 0; j < e; ++j)
            acc = gf.mul(acc, a);
        EXPECT_EQ(gf.pow(a, static_cast<std::int64_t>(e)), acc);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, FieldAxioms,
                         ::testing::Values(4u, 8u, 10u, 13u, 15u));

TEST(GaloisFieldTest, ZeroBehaviour)
{
    GaloisField gf(8);
    EXPECT_EQ(gf.mul(0, 123), 0u);
    EXPECT_EQ(gf.mul(123, 0), 0u);
    EXPECT_EQ(gf.pow(0, 0), 1u);
    EXPECT_EQ(gf.pow(0, 5), 0u);
}

TEST(Gf2PolyTest, DegreeAndCoefficients)
{
    Gf2Poly p = Gf2Poly::fromMask(0b10011); // x^4 + x + 1
    EXPECT_EQ(p.degree(), 4);
    EXPECT_TRUE(p.coeff(0));
    EXPECT_TRUE(p.coeff(1));
    EXPECT_FALSE(p.coeff(2));
    EXPECT_TRUE(p.coeff(4));
    EXPECT_EQ(p.toString(), "x^4 + x + 1");
    EXPECT_EQ(Gf2Poly().degree(), -1);
}

TEST(Gf2PolyTest, AddIsXor)
{
    const Gf2Poly a = Gf2Poly::fromMask(0b1011);
    const Gf2Poly b = Gf2Poly::fromMask(0b0110);
    EXPECT_EQ(a + b, Gf2Poly::fromMask(0b1101));
    EXPECT_TRUE((a + a).isZero());
}

TEST(Gf2PolyTest, MultiplyKnownProduct)
{
    // (x + 1)(x^2 + x + 1) = x^3 + 1 over GF(2).
    const Gf2Poly a = Gf2Poly::fromMask(0b11);
    const Gf2Poly b = Gf2Poly::fromMask(0b111);
    EXPECT_EQ(a * b, Gf2Poly::fromMask(0b1001));
}

TEST(Gf2PolyTest, MultiplyAcrossWordBoundary)
{
    const Gf2Poly a = Gf2Poly::monomial(63);
    const Gf2Poly b = Gf2Poly::fromMask(0b11);
    Gf2Poly expect = Gf2Poly::monomial(64) + Gf2Poly::monomial(63);
    EXPECT_EQ(a * b, expect);
}

TEST(Gf2PolyTest, ModMatchesMulRoundTrip)
{
    Rng rng(21);
    for (int trial = 0; trial < 200; ++trial) {
        Gf2Poly g;
        // Random divisor of degree 5..90 (force leading term).
        const std::size_t dg = 5 + rng.uniformInt(86);
        for (std::size_t i = 0; i < dg; ++i)
            g.setCoeff(i, rng.bernoulli(0.5));
        g.setCoeff(dg, true);

        Gf2Poly q;
        const std::size_t dq = rng.uniformInt(200);
        for (std::size_t i = 0; i <= dq; ++i)
            q.setCoeff(i, rng.bernoulli(0.5));

        Gf2Poly r;
        for (std::size_t i = 0; i < dg; ++i)
            r.setCoeff(i, rng.bernoulli(0.5));

        const Gf2Poly dividend = q * g + r;
        EXPECT_EQ(dividend.mod(g), r);
    }
}

TEST(Gf2PolyTest, MinimalPolynomialHasRoot)
{
    GaloisField gf(8);
    for (std::uint32_t e : {1u, 3u, 5u, 7u, 11u}) {
        const Gf2Poly mp = minimalPolynomial(gf, e);
        // alpha^e and all its conjugates are roots.
        EXPECT_EQ(mp.eval(gf, gf.alphaPow(e)), 0u) << e;
        EXPECT_EQ(mp.eval(gf, gf.alphaPow(2 * e)), 0u) << e;
        // Degree divides m.
        EXPECT_EQ(8 % mp.degree(), 0) << e;
    }
}

TEST(GfPolyTest, EvalHorner)
{
    GaloisField gf(4);
    // p(x) = 3 x^2 + x + 7 at x = 2: 3*4 ^ 2 ^ 7.
    GfPoly p(gf, {7, 1, 3});
    const auto expect = GaloisField::add(
        GaloisField::add(gf.mul(3, gf.mul(2, 2)), 2), 7);
    EXPECT_EQ(p.eval(2), expect);
}

TEST(GfPolyTest, DerivativeChar2)
{
    GaloisField gf(4);
    // d/dx (a x^3 + b x^2 + c x + d) = a x^2 + c in char 2.
    GfPoly p(gf, {5, 6, 7, 3});
    GfPoly d = p.derivative();
    EXPECT_EQ(d.coeff(0), 6u);
    EXPECT_EQ(d.coeff(1), 0u);
    EXPECT_EQ(d.coeff(2), 3u);
    EXPECT_EQ(d.degree(), 2);
}

TEST(GfPolyTest, MulDegreeAndZero)
{
    GaloisField gf(4);
    GfPoly a(gf, {1, 2});
    GfPoly zero(gf);
    EXPECT_TRUE((a * zero).isZero());
    GfPoly b(gf, {3, 0, 1});
    EXPECT_EQ((a * b).degree(), 3);
}

TEST(GfPolyTest, ScaleAndShift)
{
    GaloisField gf(8);
    GfPoly p(gf, {1, 2, 3});
    const GfPoly s = p.scale(5);
    for (std::size_t i = 0; i <= 2; ++i)
        EXPECT_EQ(s.coeff(i), gf.mul(p.coeff(i), 5));
    const GfPoly sh = p.shift(3);
    EXPECT_EQ(sh.degree(), 5);
    EXPECT_EQ(sh.coeff(3), 1u);
    EXPECT_EQ(sh.coeff(0), 0u);
}

} // namespace
} // namespace flashcache
