/**
 * @file
 * FTL (flash-as-SSD) tests: mapping correctness, out-of-place write
 * discipline, GC behaviour without eviction, overprovisioning
 * pressure, and the section 2.2 metadata-overhead comparison against
 * the disk cache.
 */

#include <gtest/gtest.h>

#include "core/flash_cache.hh"
#include "ssd/ftl.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

FlashGeometry
geom(std::uint32_t blocks, std::uint16_t frames = 8)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = frames;
    return g;
}

struct SsdStack
{
    explicit SsdStack(std::uint64_t logical_pages,
                      std::uint32_t blocks = 16)
        : lifetime(noWear()),
          device(geom(blocks), FlashTiming(), lifetime, 321),
          controller(device),
          ftl(controller, logical_pages)
    {
    }

    static WearParams
    noWear()
    {
        WearParams wp;
        wp.nominalCycles = 1e9;
        return wp;
    }

    CellLifetimeModel lifetime;
    FlashDevice device;
    FlashMemoryController controller;
    FlashTranslationLayer ftl;
};

TEST(FtlTest, CapacityAndUtilization)
{
    SsdStack s(200); // 16 x 8 x 2 = 256 physical pages
    EXPECT_EQ(s.ftl.physicalPages(), 256u);
    EXPECT_EQ(s.ftl.logicalPages(), 200u);
    EXPECT_NEAR(s.ftl.utilization(), 200.0 / 256.0, 1e-12);
}

TEST(FtlTest, RejectsFullUtilization)
{
    CellLifetimeModel lifetime;
    FlashDevice device(geom(16), FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    EXPECT_DEATH(FlashTranslationLayer(ctrl, 250), "overprovisioning");
}

TEST(FtlTest, ReadOfUnwrittenPageIsFree)
{
    SsdStack s(100);
    EXPECT_DOUBLE_EQ(s.ftl.read(5), 0.0);
}

TEST(FtlTest, WriteThenReadAccessesFlash)
{
    SsdStack s(100);
    const Seconds w = s.ftl.write(7);
    EXPECT_GT(w, 0.0);
    const Seconds r = s.ftl.read(7);
    EXPECT_GT(r, FlashTiming().mlcReadLatency - 1e-12);
    s.ftl.checkInvariants();
}

TEST(FtlTest, OverwritesNeverLoseTheMapping)
{
    SsdStack s(100);
    Rng rng(2);
    for (int i = 0; i < 5000; ++i)
        s.ftl.write(rng.uniformInt(100));
    s.ftl.checkInvariants();
    for (Lba l = 0; l < 100; ++l)
        EXPECT_GT(s.ftl.read(l), 0.0) << l;
}

TEST(FtlTest, GcReclaimsWithoutDataLoss)
{
    SsdStack s(180);
    Rng rng(3);
    // Fill, then sustained overwrites to force many GC cycles.
    for (Lba l = 0; l < 180; ++l)
        s.ftl.write(l);
    for (int i = 0; i < 20000; ++i)
        s.ftl.write(rng.uniformInt(180));
    EXPECT_GT(s.ftl.stats().gcRuns, 10u);
    EXPECT_GT(s.ftl.stats().gcPageCopies, 0u);
    s.ftl.checkInvariants();
}

TEST(FtlTest, GcOverheadExplodesWithUtilization)
{
    // The Figure 1(b) / eNVy result on the FTL itself: the same
    // overwrite traffic costs far more GC at 92% utilization than at
    // 55%.
    auto overhead = [](std::uint64_t logical) {
        SsdStack s(logical);
        Rng rng(4);
        for (Lba l = 0; l < logical; ++l)
            s.ftl.write(l);
        for (int i = 0; i < 20000; ++i)
            s.ftl.write(rng.uniformInt(logical));
        return s.ftl.stats().gcOverheadFraction();
    };
    const double low = overhead(140);  // ~55%
    const double high = overhead(235); // ~92%
    EXPECT_GT(high, 2.0 * low);
}

TEST(FtlTest, MappingTableScalesWithLogicalSpaceNotUse)
{
    // Section 2.2: the SSD's metadata is proportional to the full
    // logical space; the disk cache's is bounded by the flash size.
    SsdStack s(200);
    EXPECT_EQ(s.ftl.mappingTableBytes(), 200u * 8u);
    // A freshly created FTL with nothing written pays the same.
    SsdStack empty(200);
    EXPECT_EQ(empty.ftl.mappingTableBytes(),
              s.ftl.mappingTableBytes());
}

TEST(FtlTest, OutOfRangeAccessIsFatal)
{
    SsdStack s(100);
    EXPECT_DEATH(s.ftl.read(100), "beyond exported capacity");
    EXPECT_DEATH(s.ftl.write(5000), "beyond exported capacity");
}

} // namespace
} // namespace flashcache
