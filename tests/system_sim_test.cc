/**
 * @file
 * System simulator tests: PDC behaviour, the flash tier's effect on
 * disk traffic, power integration (Figure 9's mechanism), throughput
 * accounting, and the uniform-ECC override used by Figure 10.
 */

#include <gtest/gtest.h>

#include "sim/system_sim.hh"
#include "workload/macro.hh"

namespace flashcache {
namespace {

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.dramBytes = mib(8);
    cfg.flashBytes = 0;
    cfg.seed = 3;
    return cfg;
}

SyntheticConfig
smallZipf(double wf = 0.2)
{
    SyntheticConfig wl;
    wl.name = "zipf";
    wl.shape = TailShape::Zipf;
    wl.alpha = 1.0;
    wl.workingSetPages = 16384; // 32 MB, far over the tiny PDC
    wl.writeFraction = wf;
    return wl;
}

TEST(SystemSimTest, PdcAbsorbsHotReads)
{
    SystemConfig cfg = baseConfig();
    SystemSimulator sim(cfg);
    SyntheticConfig wl = smallZipf(0.0);
    wl.workingSetPages = 512; // fits in the PDC
    auto gen = makeSynthetic(wl);
    sim.run(*gen, 20000);
    EXPECT_GT(sim.stats().pdcReads.hitRate(), 0.9);
    // Warm set: the disk only sees the compulsory fills.
    EXPECT_LE(sim.disk().accesses(), 600u);
}

TEST(SystemSimTest, FlashTierCutsDiskTraffic)
{
    // A flash tier big enough for the working set absorbs nearly all
    // PDC misses; only compulsory fills and write-back flushes reach
    // the disk.
    SyntheticConfig wl = smallZipf(0.02);
    auto run_disk_accesses = [&](std::uint64_t flash_bytes) {
        SystemConfig cfg = baseConfig();
        cfg.flashBytes = flash_bytes;
        SystemSimulator sim(cfg);
        auto gen = makeSynthetic(wl);
        // Long enough that recurring misses dominate the one-time
        // compulsory fills.
        sim.run(*gen, 250000);
        return sim.disk().accesses();
    };
    const auto without = run_disk_accesses(0);
    const auto with = run_disk_accesses(mib(64));
    EXPECT_LT(with, without / 2);
}

TEST(SystemSimTest, FlashImprovesThroughputOnDiskBoundLoad)
{
    SyntheticConfig wl = smallZipf();
    auto throughput = [&](std::uint64_t flash_bytes) {
        SystemConfig cfg = baseConfig();
        cfg.flashBytes = flash_bytes;
        SystemSimulator sim(cfg);
        auto gen = makeSynthetic(wl);
        sim.run(*gen, 30000);
        return sim.stats().throughput();
    };
    EXPECT_GT(throughput(mib(24)), throughput(0));
}

TEST(SystemSimTest, PowerReportComponentsPositiveAndDiskDominant)
{
    SystemConfig cfg = baseConfig();
    SystemSimulator sim(cfg);
    auto gen = makeSynthetic(smallZipf());
    sim.run(*gen, 20000);
    const PowerReport p = sim.powerReport();
    EXPECT_GT(p.memIdle, 0.0);
    EXPECT_GT(p.memRead, 0.0);
    EXPECT_GT(p.memWrite, 0.0);
    EXPECT_GT(p.disk, 0.0);
    EXPECT_DOUBLE_EQ(p.flash, 0.0); // no flash configured
    // A disk-bound DRAM-only box: disk power is the biggest share.
    EXPECT_GT(p.disk, p.memRead + p.memWrite);
    EXPECT_GT(p.total(), 0.0);
}

TEST(SystemSimTest, EqualAreaFlashConfigSavesPower)
{
    // Figure 9's mechanism at small scale: trading most of the DRAM
    // for a bigger flash tier cuts memory idle power and disk busy
    // power at equal-or-better bandwidth.
    // Paper-sized memory configurations (Table 3 / Figure 9): a
    // 512 MB DRAM-only box vs 256 MB DRAM + 1 GB flash at roughly
    // equal die area. Halving the DRAM halves its idle power (2 vs
    // 4 devices) while the flash tier keeps the disk quiet.
    SyntheticConfig wl;
    wl.name = "zipf";
    wl.shape = TailShape::Zipf;
    wl.alpha = 1.0;
    wl.workingSetPages = mib(256) / 2048;
    wl.writeFraction = 0.2;
    auto run = [&](std::uint64_t dram, std::uint64_t flash) {
        SystemConfig cfg;
        cfg.dramBytes = dram;
        cfg.flashBytes = flash;
        cfg.seed = 3;
        SystemSimulator sim(cfg);
        auto gen = makeSynthetic(wl);
        sim.run(*gen, 120000);
        return std::pair(sim.powerReport(), sim.stats().throughput());
    };
    const auto [p_dram, t_dram] = run(mib(512), 0);
    const auto [p_flash, t_flash] = run(mib(256), gib(1));
    EXPECT_LT(p_flash.total(), p_dram.total());
    EXPECT_GT(t_flash, 0.8 * t_dram);
}

TEST(SystemSimTest, UniformEccStrengthSlowsThroughput)
{
    // Figure 10's mechanism: higher uniform BCH strength adds decode
    // latency to every flash read. The effect shows once the system
    // is flash-bound (working set cached in flash, disk quiet).
    SyntheticConfig wl = smallZipf(0.02);
    wl.workingSetPages = 4096; // 8 MB: cached entirely in flash
    wl.shape = TailShape::Uniform; // keep traffic below the PDC
    auto throughput = [&](std::uint8_t t) {
        SystemConfig cfg = baseConfig();
        cfg.dramBytes = mib(2); // small PDC so flash sees the reads
        cfg.flashBytes = mib(64);
        cfg.uniformEccStrength = t;
        SystemSimulator sim(cfg);
        auto gen = makeSynthetic(wl);
        sim.run(*gen, 60000);
        return sim.stats().throughput();
    };
    const double weak = throughput(1);
    const double strong = throughput(30);
    EXPECT_LT(strong, weak);
    // But the degradation is graceful (paper: slow decline).
    EXPECT_GT(strong, 0.2 * weak);
}

TEST(SystemSimTest, WritebacksDrainDirtyPages)
{
    SystemConfig cfg = baseConfig();
    cfg.writebackBatch = 8;
    SystemSimulator sim(cfg);
    auto gen = makeSynthetic(smallZipf(0.6));
    sim.run(*gen, 5000);
    EXPECT_GT(sim.stats().writebacks, 0u);
}

TEST(SystemSimTest, TraceReplayMatchesGeneratorPath)
{
    SystemConfig cfg = baseConfig();
    SystemSimulator sim(cfg);
    Trace t;
    for (Lba l = 0; l < 500; ++l)
        t.push_back({l % 50, l % 3 == 0});
    sim.run(t);
    EXPECT_EQ(sim.stats().requests, 500u);
    EXPECT_GT(sim.stats().wallClock, 0.0);
}

TEST(SystemSimTest, MacroWorkloadEndToEnd)
{
    SystemConfig cfg = baseConfig();
    cfg.flashBytes = mib(16);
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("dbt2", 0.02));
    sim.run(*gen, 20000);
    ASSERT_NE(sim.flashCache(), nullptr);
    sim.flashCache()->checkInvariants();
    EXPECT_GT(sim.stats().throughput(), 0.0);
    EXPECT_GT(sim.flashCache()->stats().fgst.reads.total(), 0u);
}

} // namespace
} // namespace flashcache
