/**
 * @file
 * CRC32 tests: known vectors and detection properties.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ecc/crc32.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

TEST(Crc32Test, KnownVectors)
{
    // Standard IEEE CRC-32 check values.
    const char* s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
              0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    EXPECT_EQ(crc32(zero, 4), 0x2144DF1Cu);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    Rng rng(1);
    std::vector<std::uint8_t> buf(1000);
    for (auto& b : buf)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    const std::uint32_t oneshot = crc32(buf.data(), buf.size());
    std::uint32_t inc = 0;
    inc = crc32Update(inc, buf.data(), 100);
    inc = crc32Update(inc, buf.data() + 100, 650);
    inc = crc32Update(inc, buf.data() + 750, 250);
    EXPECT_EQ(inc, oneshot);
}

TEST(Crc32Test, SliceBy8MatchesBytewiseReference)
{
    // The slicing-by-8 fast path must agree with the one-table
    // reference at every length (covers the 8-byte fold, the tail
    // loop, and all alignments of the split point).
    Rng rng(7);
    std::vector<std::uint8_t> buf(4096);
    for (auto& b : buf)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    for (std::size_t len = 0; len <= 64; ++len)
        EXPECT_EQ(crc32(buf.data(), len), crc32Bytewise(buf.data(), len))
            << len;
    for (std::size_t len : {65u, 100u, 1000u, 2047u, 2048u, 4096u})
        EXPECT_EQ(crc32(buf.data(), len), crc32Bytewise(buf.data(), len))
            << len;
    // Incremental forms agree with each other across odd split points.
    std::uint32_t a = 0, b = 0;
    a = crc32Update(a, buf.data(), 13);
    a = crc32Update(a, buf.data() + 13, 2035);
    b = crc32BytewiseUpdate(b, buf.data(), 1024);
    b = crc32BytewiseUpdate(b, buf.data() + 1024, 1024);
    EXPECT_EQ(a, b);
}

TEST(Crc32Test, DetectsSingleBitFlips)
{
    Rng rng(2);
    std::vector<std::uint8_t> buf(2048);
    for (auto& b : buf)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    const std::uint32_t good = crc32(buf.data(), buf.size());
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t bit = rng.uniformInt(2048 * 8);
        buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(crc32(buf.data(), buf.size()), good);
        buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

TEST(Crc32Test, DetectsSmallBursts)
{
    // CRC-32 catches any burst shorter than 32 bits.
    std::vector<std::uint8_t> buf(256, 0xA5);
    const std::uint32_t good = crc32(buf.data(), buf.size());
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        auto copy = buf;
        const std::size_t start = rng.uniformInt(256 * 8 - 31);
        const unsigned len = 1 + static_cast<unsigned>(rng.uniformInt(31));
        for (unsigned i = 0; i < len; ++i) {
            const std::size_t bit = start + i;
            if (i == 0 || i == len - 1 || rng.bernoulli(0.5))
                copy[bit / 8] ^= static_cast<std::uint8_t>(
                    1u << (bit % 8));
        }
        EXPECT_NE(crc32(copy.data(), copy.size()), good);
    }
}

} // namespace
} // namespace flashcache
