/**
 * @file
 * Power-loss recovery fuzzing: drive a randomized workload into a
 * real-data cache, cut the power at seeded points (clean between-op
 * cuts and mid-program cuts that leave a torn page), discard the
 * in-DRAM tables exactly as a real cut would, run
 * FlashCache::recover() over the surviving medium, and differentially
 * verify every page the rebuilt cache serves against the ground-truth
 * model. The workload then runs to completion on the recovered cache
 * and the final flush must leave the backing store bit-exact.
 *
 * The invariant under test: recovery may lose the tail of recent
 * writes (pages torn or never programmed), but it must NEVER serve
 * bytes that do not correspond to some acknowledged version of the
 * page, and the rebuilt DRAM tables must pass checkInvariants().
 *
 * RecoveryFuzzSmoke (tier1) covers a dozen cut points; the full
 * sweep (RecoveryFuzzFull, label `recovery_fuzz`, run by the CI
 * recovery-fuzz job) lands 100+ cuts including mid-program ones.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/flash_cache.hh"
#include "fault/fault_injector.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

constexpr std::uint32_t kPage = 2048;

/** Deterministic page contents; version 0 = never written (zeros). */
std::vector<std::uint8_t>
pageContent(Lba lba, std::uint32_t version)
{
    std::vector<std::uint8_t> v(kPage);
    if (version == 0)
        return v;
    Rng rng(lba * 2654435761u + version);
    for (auto& b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return v;
}

/**
 * In-memory disk with T10-DIF-style generation tags, so recovery can
 * tell a surviving-but-already-flushed flash copy from a newer one.
 */
class VersionedDisk : public PayloadBackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }

    Seconds
    readData(Lba lba, std::uint8_t* out) override
    {
        const auto it = pages_.find(lba);
        if (it == pages_.end())
            std::memset(out, 0, kPage);
        else
            std::memcpy(out, it->second.data(), kPage);
        return milliseconds(4.2);
    }

    Seconds
    writeData(Lba lba, const std::uint8_t* data) override
    {
        pages_[lba].assign(data, data + kPage);
        return milliseconds(4.2);
    }

    Seconds
    writeTagged(Lba lba, const std::uint8_t* data, std::uint64_t seq,
                bool& failed) override
    {
        failed = false;
        gen_[lba] = seq;
        maxGen_ = std::max(maxGen_, seq);
        return writeData(lba, data);
    }

    std::uint64_t
    generation(Lba lba) const override
    {
        const auto it = gen_.find(lba);
        return it == gen_.end() ? 0 : it->second;
    }

    std::uint64_t maxGeneration() const override { return maxGen_; }

    std::map<Lba, std::vector<std::uint8_t>> pages_;
    std::map<Lba, std::uint64_t> gen_;
    std::uint64_t maxGen_ = 0;
};

/**
 * The crash harness. Device, controller, injector and disk persist
 * across a power cut (they are the hardware); the FlashCache object
 * is discarded and rebuilt, losing all DRAM state by construction.
 */
struct CrashStack
{
    explicit CrashStack(const FaultPlan& plan)
    {
        WearParams no_wear;
        no_wear.nominalCycles = 1e9;
        lifetime = std::make_unique<CellLifetimeModel>(no_wear);
        FlashGeometry g;
        g.numBlocks = 16;
        g.framesPerBlock = 4;
        device = std::make_unique<FlashDevice>(g, FlashTiming(),
                                               *lifetime, 2024, 0.0,
                                               /*store_data=*/true);
        inj = std::make_unique<FaultInjector>(plan);
        device->attachFaultInjector(inj.get());
        controller = std::make_unique<FlashMemoryController>(*device);
        cache = std::make_unique<FlashCache>(*controller, disk, cfg());
    }

    static FlashCacheConfig
    cfg()
    {
        FlashCacheConfig c;
        c.realData = true;
        return c;
    }

    /** Power comes back: throw away DRAM, rebuild from the medium. */
    void
    reboot()
    {
        inj->clearPowerLoss();
        cache = std::make_unique<FlashCache>(*controller, disk, cfg());
        cache->recover();
    }

    /** Swap in a fresh injector (a one-shot fires once per injector
     *  lifetime; re-arming models the next scheduled cut). */
    void
    rearm(const FaultPlan& plan)
    {
        inj = std::make_unique<FaultInjector>(plan);
        device->attachFaultInjector(inj.get());
    }

    std::unique_ptr<FaultInjector> inj;
    std::unique_ptr<CellLifetimeModel> lifetime;
    std::unique_ptr<FlashDevice> device;
    std::unique_ptr<FlashMemoryController> controller;
    VersionedDisk disk;
    std::unique_ptr<FlashCache> cache;
};

struct Op
{
    Lba lba;
    bool isWrite;
};

/** The deterministic workload all cut points share. */
std::vector<Op>
makeWorkload(std::size_t n, std::uint64_t seed)
{
    std::vector<Op> ops;
    ops.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        Op op;
        op.lba = rng.uniformInt(60);
        op.isWrite = rng.bernoulli(0.45);
        ops.push_back(op);
    }
    return ops;
}

/**
 * Run the workload over one crash/recover cycle and verify.
 * @return true when the scheduled cut actually landed (one-shots at
 * large ordinals may never fire on short workloads).
 */
bool
runOneCut(const FaultPlan& plan)
{
    CrashStack s(plan);
    const auto ops = makeWorkload(1500, 42);

    // Ground truth: newest acknowledged version per LBA.
    std::map<Lba, std::uint32_t> version;
    std::vector<std::uint8_t> out(kPage);

    std::size_t resume = ops.size();
    bool cut = false;
    Lba inflight_lba = 0;
    std::uint32_t inflight_version = 0;
    bool inflight_write = false;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        try {
            if (op.isWrite) {
                // Not yet acknowledged: only bump the model once the
                // write returns.
                inflight_lba = op.lba;
                inflight_version = version[op.lba] + 1;
                inflight_write = true;
                s.cache->writeData(
                    op.lba,
                    pageContent(op.lba, inflight_version).data());
                version[op.lba] = inflight_version;
                inflight_write = false;
            } else {
                inflight_write = false;
                s.cache->readData(op.lba, out.data());
                const std::uint32_t v =
                    version.count(op.lba) ? version[op.lba] : 0;
                EXPECT_EQ(0, std::memcmp(out.data(),
                                         pageContent(op.lba, v).data(),
                                         kPage))
                    << "pre-cut lba " << op.lba << " op " << i;
            }
        } catch (const PowerLossException&) {
            cut = true;
            resume = i + 1;
            break;
        }
    }

    if (!cut) {
        // The one-shot did not fire during the workload; the final
        // flush still reads flash, so a clean-cut plan can land here.
        try {
            s.cache->flushAll();
            return false;
        } catch (const PowerLossException&) {
            cut = true;
            resume = ops.size();
            inflight_write = false;
        }
    }

    s.reboot();
    s.cache->checkInvariants();
    const auto& rec = s.cache->stats().recovery;
    EXPECT_EQ(rec.scannedPages,
              rec.tornPages + rec.duplicatePages + rec.stalePages +
                  rec.uncorrectablePages + rec.recoveredPages)
        << "recovery scan taxonomy must partition the scanned pages";

    // Differential verification: every LBA must read as some
    // acknowledged version. The single unacknowledged in-flight
    // write may legally surface as old or new; probe which side of
    // the cut it landed on and update the model accordingly.
    if (inflight_write) {
        s.cache->readData(inflight_lba, out.data());
        const auto newer = pageContent(inflight_lba, inflight_version);
        const auto older =
            pageContent(inflight_lba, inflight_version - 1);
        if (std::memcmp(out.data(), newer.data(), kPage) == 0) {
            version[inflight_lba] = inflight_version;
        } else {
            EXPECT_EQ(0, std::memcmp(out.data(), older.data(), kPage))
                << "in-flight write surfaced as neither version, lba "
                << inflight_lba;
        }
    }
    for (Lba lba = 0; lba < 60; ++lba) {
        const std::uint32_t v = version.count(lba) ? version[lba] : 0;
        s.cache->readData(lba, out.data());
        EXPECT_EQ(0, std::memcmp(out.data(),
                                 pageContent(lba, v).data(), kPage))
            << "post-recovery lba " << lba << " version " << v;
    }

    // Life goes on: the remaining workload runs to completion on the
    // recovered cache with the same integrity guarantee.
    for (std::size_t i = resume; i < ops.size(); ++i) {
        const Op& op = ops[i];
        if (op.isWrite) {
            const std::uint32_t v = ++version[op.lba];
            s.cache->writeData(op.lba, pageContent(op.lba, v).data());
        } else {
            s.cache->readData(op.lba, out.data());
            const std::uint32_t v =
                version.count(op.lba) ? version[op.lba] : 0;
            EXPECT_EQ(0, std::memcmp(out.data(),
                                     pageContent(op.lba, v).data(),
                                     kPage))
                << "post-resume lba " << op.lba << " op " << i;
        }
    }

    // Shutdown flush: the disk ends bit-exact for every written LBA.
    s.cache->flushAll();
    for (const auto& [lba, v] : version) {
        const auto want = pageContent(lba, v);
        const auto it = s.disk.pages_.find(lba);
        EXPECT_TRUE(it != s.disk.pages_.end()) << "lba " << lba;
        EXPECT_EQ(it->second, want) << "final disk image, lba " << lba;
    }
    s.cache->checkInvariants();
    return true;
}

/** Mid-program cut at the Nth page program (torn page). */
FaultPlan
programCutPlan(std::uint64_t n)
{
    FaultPlan plan;
    plan.seed = 0xFA17 + n;
    plan.powerCutAtProgram = n;
    return plan;
}

/** Clean cut before the Nth flash operation. */
FaultPlan
opCutPlan(std::uint64_t n)
{
    FaultPlan plan;
    plan.seed = 0x0FF + n;
    plan.powerCutAtOp = n;
    return plan;
}

TEST(RecoveryFuzzSmoke, MidProgramCuts)
{
    unsigned landed = 0;
    for (std::uint64_t n = 5; n <= 605; n += 75)
        landed += runOneCut(programCutPlan(n));
    EXPECT_GE(landed, 6u);
}

TEST(RecoveryFuzzSmoke, CleanCuts)
{
    unsigned landed = 0;
    for (std::uint64_t n = 3; n <= 2403; n += 600)
        landed += runOneCut(opCutPlan(n));
    EXPECT_GE(landed, 3u);
}

TEST(RecoveryFuzzSmoke, ImmediateCutRecoversEmptyCache)
{
    // Cut before anything was programmed: recovery over a blank
    // medium must yield a working, empty cache.
    EXPECT_TRUE(runOneCut(opCutPlan(1)));
}

TEST(RecoveryFuzzSmoke, RecoversMediumWithSlcModeFrames)
{
    // Regression: hot-page migration switches frames to SLC mode,
    // which has no second MLC page; the recovery scan must not
    // address sub-page 1 on such frames (doing so is a device fault).
    FaultPlan quiet;
    CrashStack s(quiet);
    std::vector<std::uint8_t> out(kPage);
    // Fill through read misses so the pages land on MLC read-region
    // slots (fresh writes may already sit on SLC frames).
    for (Lba l = 0; l < 12; ++l) {
        s.disk.writeData(l, pageContent(l, 1).data());
        s.cache->readData(l, out.data());
    }
    // Saturate the access counter of one page (default threshold 64)
    // to force an MLC->SLC migration before the cut.
    for (int i = 0; i < 80; ++i)
        s.cache->readData(3, out.data());
    ASSERT_GE(s.cache->stats().hotMigrations, 1u);

    s.reboot();
    s.cache->checkInvariants();
    for (Lba l = 0; l < 12; ++l) {
        s.cache->readData(l, out.data());
        EXPECT_EQ(0, std::memcmp(out.data(), pageContent(l, 1).data(),
                                 kPage))
            << "lba " << l;
    }
}

TEST(RecoveryFuzzFull, HundredPlusSeededCutPoints)
{
    unsigned landed = 0;
    // 90 mid-program cut points spanning the whole workload...
    for (std::uint64_t n = 1; n <= 891; n += 10)
        landed += runOneCut(programCutPlan(n));
    // ...plus 30 clean between-op cut points.
    for (std::uint64_t n = 1; n <= 2901; n += 100)
        landed += runOneCut(opCutPlan(n));
    // The ISSUE contract: at least 100 cuts actually landed, each
    // followed by recovery, differential verification, and a full
    // re-run of the remaining workload.
    EXPECT_GE(landed, 100u);
}

TEST(RecoveryFuzzFull, RepeatedCrashesOnOneMedium)
{
    // A machine that keeps losing power: crash, recover, re-arm the
    // next cut, crash again on the already-recovered medium.
    FaultPlan plan;
    plan.seed = 7;
    plan.powerCutAtProgram = 120;
    CrashStack s(plan);
    const auto ops = makeWorkload(4000, 99);
    std::map<Lba, std::uint32_t> version;
    std::vector<std::uint8_t> out(kPage);

    std::size_t i = 0;
    unsigned crashes = 0;
    while (i < ops.size()) {
        const Op& op = ops[i];
        try {
            if (op.isWrite) {
                const std::uint32_t v = version[op.lba] + 1;
                s.cache->writeData(op.lba,
                                   pageContent(op.lba, v).data());
                version[op.lba] = v;
            } else {
                s.cache->readData(op.lba, out.data());
                const std::uint32_t v =
                    version.count(op.lba) ? version[op.lba] : 0;
                ASSERT_EQ(0, std::memcmp(out.data(),
                                         pageContent(op.lba, v).data(),
                                         kPage))
                    << "lba " << op.lba << " op " << i << " crash "
                    << crashes;
            }
            ++i;
        } catch (const PowerLossException&) {
            ++crashes;
            // Roll the model back: the op that threw never completed.
            // (Writes bump the model only after returning, so nothing
            // to undo — but its content may legally surface anyway.)
            const Op& cut_op = ops[i];
            s.reboot();
            s.cache->checkInvariants();
            FaultPlan next = plan;
            next.seed = plan.seed + crashes;
            s.rearm(next); // 120 more programs until the next cut
            if (cut_op.isWrite) {
                const std::uint32_t nv = version[cut_op.lba] + 1;
                s.cache->readData(cut_op.lba, out.data());
                if (std::memcmp(out.data(),
                                pageContent(cut_op.lba, nv).data(),
                                kPage) == 0) {
                    version[cut_op.lba] = nv;
                } else {
                    ASSERT_EQ(0,
                              std::memcmp(
                                  out.data(),
                                  pageContent(cut_op.lba,
                                              version[cut_op.lba])
                                      .data(),
                                  kPage))
                        << "torn write surfaced as neither version";
                }
            }
            ++i; // the cut op is consumed either way
        }
    }
    EXPECT_GE(crashes, 3u);
    s.cache->flushAll();
    for (const auto& [lba, v] : version)
        ASSERT_EQ(s.disk.pages_[lba], pageContent(lba, v)) << lba;
}

} // namespace
} // namespace flashcache
