/**
 * @file
 * Tests for the cell-lifetime wear-out model and the per-page
 * order-statistics health sampling (paper section 4.1.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/page_health.hh"
#include "reliability/wear_model.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace flashcache {
namespace {

TEST(CellLifetimeModelTest, AnchorCalibration)
{
    CellLifetimeModel m;
    // The datasheet anchor: P(cell dead by 100k cycles) = 1e-4.
    EXPECT_NEAR(m.cellFailProb(1e5), 1e-4, 1e-6);
}

TEST(CellLifetimeModelTest, FailProbMonotoneInCycles)
{
    CellLifetimeModel m;
    double prev = 0.0;
    for (double c = 1e3; c < 1e9; c *= 3.0) {
        const double p = m.cellFailProb(c);
        EXPECT_GE(p, prev);
        prev = p;
    }
    EXPECT_DOUBLE_EQ(m.cellFailProb(0.0), 0.0);
}

TEST(CellLifetimeModelTest, InverseRoundTrip)
{
    CellLifetimeModel m;
    for (double p : {1e-8, 1e-4, 1e-2, 0.5}) {
        const double c = m.cyclesAtFailProb(p);
        EXPECT_NEAR(m.cellFailProb(c), p, p * 1e-6 + 1e-12);
    }
}

TEST(CellLifetimeModelTest, WeakPageOffsetHurts)
{
    CellLifetimeModel m;
    EXPECT_GT(m.cellFailProb(1e5, -1.0), m.cellFailProb(1e5, 0.0));
    EXPECT_LT(m.cellFailProb(1e5, 1.0), m.cellFailProb(1e5, 0.0));
}

TEST(CellLifetimeModelTest, MaxTolerableMatchesPaperShape)
{
    // Figure 6(b): ~1e5 cycles at t = 1, rising to millions by
    // t = 10 with diminishing returns; spatial variation lowers it.
    CellLifetimeModel m;
    const unsigned page_bits = (2048 + 64) * 8;

    const double n1 = m.maxTolerableCycles(1, page_bits, 0.0);
    const double n10 = m.maxTolerableCycles(10, page_bits, 0.0);
    EXPECT_GT(n1, 3e4);
    EXPECT_LT(n1, 3e5);
    EXPECT_GT(n10 / n1, 10.0);
    EXPECT_LT(n10 / n1, 300.0);

    // Monotone increasing with diminishing ratio.
    double prev = 0.0, prev_ratio = 1e9;
    for (unsigned t = 1; t <= 10; ++t) {
        const double n = m.maxTolerableCycles(t, page_bits, 0.0);
        EXPECT_GT(n, prev) << t;
        if (prev > 0.0) {
            const double ratio = n / prev;
            EXPECT_LE(ratio, prev_ratio * 1.10) << t;
            prev_ratio = ratio;
        }
        prev = n;
    }
}

/** Spatial stddev sweep mirroring the Figure 6(b) series. */
class SpatialSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SpatialSweep, SpatialVariationReducesLifetime)
{
    CellLifetimeModel m;
    const unsigned page_bits = (2048 + 64) * 8;
    const double s = GetParam();
    for (unsigned t : {2u, 6u, 10u}) {
        const double base = m.maxTolerableCycles(t, page_bits, 0.0);
        const double shifted = m.maxTolerableCycles(t, page_bits, s);
        EXPECT_LT(shifted, base) << "t=" << t << " s=" << s;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSeries, SpatialSweep,
                         ::testing::Values(0.05, 0.10, 0.20));

TEST(PageHealthTest, WeakestLifetimesAscending)
{
    CellLifetimeModel m;
    Rng rng(1);
    const auto v = sampleWeakestLifetimes(m, rng, 16896, 16, 0.0);
    ASSERT_EQ(v.size(), 16u);
    for (std::size_t i = 1; i < v.size(); ++i)
        EXPECT_GE(v[i], v[i - 1]);
    EXPECT_GT(v[0], 0.0);
}

TEST(PageHealthTest, HardErrorsMonotoneAndMatchesOnsets)
{
    CellLifetimeModel m;
    Rng rng(2);
    PageHealth ph(m, rng, 16896, 16);
    unsigned prev = 0;
    for (double c = 1e2; c < 1e12; c *= 4.0) {
        const unsigned e = ph.hardErrors(c);
        EXPECT_GE(e, prev);
        prev = e;
    }
    // Just past onset(i), exactly i+1 errors.
    for (unsigned i = 0; i < 4; ++i) {
        const double onset = ph.errorOnset(i);
        if (!std::isfinite(onset))
            break;
        EXPECT_EQ(ph.hardErrors(onset * 1.0000001), i + 1);
    }
    EXPECT_EQ(ph.hardErrors(0.0), 0u);
}

TEST(PageHealthTest, FirstErrorOnsetDistribution)
{
    // The minimum of n cell lifetimes should concentrate around
    // cyclesAtFailProb(1/n): check the empirical median lands within
    // a decade of the analytic one.
    CellLifetimeModel m;
    Rng rng(3);
    const unsigned n = 16896;
    RunningStat log_onset;
    for (int i = 0; i < 300; ++i) {
        PageHealth ph(m, rng, n, 4);
        log_onset.add(std::log10(ph.errorOnset(0)));
    }
    const double analytic = std::log10(m.cyclesAtFailProb(
        1.0 / static_cast<double>(n)));
    EXPECT_NEAR(log_onset.mean(), analytic, 1.0);
}

TEST(PageHealthTest, WeakPagesFailEarlier)
{
    CellLifetimeModel m;
    Rng a(4), b(4);
    PageHealth healthy(m, a, 16896, 8, 0.0);
    PageHealth weak(m, b, 16896, 8, -2.0);
    EXPECT_LT(weak.errorOnset(0), healthy.errorOnset(0));
}

TEST(PageHealthTest, SaturatesAtTrackedCells)
{
    CellLifetimeModel m;
    Rng rng(5);
    PageHealth ph(m, rng, 100, 8);
    EXPECT_EQ(ph.tracked(), 8u);
    EXPECT_EQ(ph.hardErrors(1e300), 8u);
    EXPECT_TRUE(std::isinf(ph.errorOnset(8)));
}

TEST(PageHealthTest, AcceleratedModelForSimulation)
{
    // Benches scale endurance down for fast failure runs; the model
    // must stay well behaved at tiny nominal cycles.
    WearParams p;
    p.nominalCycles = 50;
    p.sigmaDecades = 0.8;
    CellLifetimeModel m(p);
    Rng rng(6);
    PageHealth ph(m, rng, 16896, 16);
    EXPECT_GT(ph.hardErrors(1e6), 0u);
}

} // namespace
} // namespace flashcache
