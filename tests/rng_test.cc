/**
 * @file
 * Tests for the deterministic RNG and its distribution samplers,
 * including shape checks on the Zipf sampler the workload generators
 * depend on (Table 4 of the paper sweeps alpha = 0.8, 1.2, 1.6).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace flashcache {
namespace {

TEST(RngTest, DeterministicForSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIntCoversSupport)
{
    Rng rng(7);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 6000; ++i)
        ++counts[rng.uniformInt(6)];
    EXPECT_EQ(counts.size(), 6u);
    for (const auto& [v, c] : counts) {
        EXPECT_LT(v, 6u);
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(42);
    RunningStat s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(42);
    RunningStat s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.exponential(0.1));
    EXPECT_NEAR(s.mean(), 10.0, 0.2);
}

TEST(RngTest, PoissonMoments)
{
    Rng rng(42);
    for (double mean : {0.5, 4.0, 200.0}) {
        RunningStat s;
        for (int i = 0; i < 50000; ++i)
            s.add(static_cast<double>(rng.poisson(mean)));
        EXPECT_NEAR(s.mean(), mean, 0.05 * mean + 0.05) << mean;
    }
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(9);
    int yes = 0;
    for (int i = 0; i < 100000; ++i)
        yes += rng.bernoulli(0.2);
    EXPECT_NEAR(yes / 100000.0, 0.2, 0.01);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(5);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

/** Zipf sampler property sweep across the paper's alpha values. */
class ZipfTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfTest, RankZeroMostPopular)
{
    const double alpha = GetParam();
    Rng rng(11);
    ZipfSampler zipf(1000, alpha);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 should dominate every sufficiently distant rank.
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[100]);
}

TEST_P(ZipfTest, EmpiricalTailExponent)
{
    const double alpha = GetParam();
    Rng rng(13);
    const std::uint64_t n = 10000;
    ZipfSampler zipf(n, alpha);
    std::vector<double> counts(n, 0.0);
    const int samples = 400000;
    for (int i = 0; i < samples; ++i)
        counts[zipf.sample(rng)] += 1.0;
    // Regress log count against log rank over a mid-range window;
    // slope should approximate -alpha.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int m = 0;
    for (std::uint64_t k = 2; k <= 60; ++k) {
        if (counts[k] < 8)
            continue;
        const double x = std::log(static_cast<double>(k + 1));
        const double y = std::log(counts[k]);
        sx += x; sy += y; sxx += x * x; sxy += x * y;
        ++m;
    }
    ASSERT_GT(m, 10);
    const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    EXPECT_NEAR(-slope, alpha, 0.25) << "alpha = " << alpha;
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, ZipfTest,
                         ::testing::Values(0.8, 1.2, 1.6));

TEST(ZipfTest, AlphaZeroIsUniform)
{
    Rng rng(3);
    ZipfSampler zipf(50, 0.0);
    std::vector<int> counts(50, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 1000, 200);
}

TEST(ZipfTest, AlphaOneSpecialCase)
{
    Rng rng(3);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i) {
        const auto k = zipf.sample(rng);
        ASSERT_LT(k, 100u);
        ++counts[k];
    }
    // P(0)/P(9) should be about 10 for alpha = 1.
    EXPECT_GT(counts[0], 4 * counts[9]);
}

} // namespace
} // namespace flashcache
