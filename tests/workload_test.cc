/**
 * @file
 * Workload substrate tests: trace IO, synthetic generator shapes
 * (Table 4), macro model characteristics, and the stack-distance
 * analyzer against a reference LRU simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_set>

#include "core/lru.hh"
#include "workload/macro.hh"
#include "workload/stack_distance.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace flashcache {
namespace {

TEST(TraceIoTest, RoundTrip)
{
    Trace t = {{10, false}, {20, true}, {10, false}, {99999999, true}};
    const std::string path = ::testing::TempDir() + "trace_rt.csv";
    saveTraceCsv(t, path);
    const Trace back = loadTraceCsv(path);
    EXPECT_EQ(back, t);
    std::remove(path.c_str());
}

TEST(TraceIoTest, Summary)
{
    Trace t = {{1, false}, {2, true}, {1, true}, {7, false}};
    const TraceSummary s = summarizeTrace(t);
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.distinctPages, 3u);
    EXPECT_EQ(s.maxLba, 7u);
    EXPECT_DOUBLE_EQ(s.writeFraction(), 0.5);
    EXPECT_EQ(s.workingSetBytes(), 3u * 2048u);
}

TEST(SyntheticTest, Table4CatalogComplete)
{
    const auto configs = table4MicroConfigs();
    ASSERT_EQ(configs.size(), 6u);
    EXPECT_EQ(configs[0].name, "uniform");
    EXPECT_EQ(configs[1].name, "alpha1");
    EXPECT_EQ(configs[3].name, "alpha3");
    EXPECT_EQ(configs[4].name, "exp1");
    // Table 4: 512 MB footprint = 262144 pages of 2 KB.
    EXPECT_EQ(configs[0].workingSetPages, 262144u);
    EXPECT_DOUBLE_EQ(configs[1].alpha, 0.8);
    EXPECT_DOUBLE_EQ(configs[2].alpha, 1.2);
    EXPECT_DOUBLE_EQ(configs[3].alpha, 1.6);
    EXPECT_DOUBLE_EQ(configs[4].lambda, 0.01);
    EXPECT_DOUBLE_EQ(configs[5].lambda, 0.1);
}

TEST(SyntheticTest, WriteFractionRespected)
{
    SyntheticConfig cfg;
    cfg.workingSetPages = 1000;
    cfg.writeFraction = 0.3;
    auto gen = makeSynthetic(cfg);
    Rng rng(1);
    const Trace t = gen->generate(rng, 20000);
    const auto s = summarizeTrace(t);
    EXPECT_NEAR(s.writeFraction(), 0.3, 0.02);
}

TEST(SyntheticTest, FootprintBounded)
{
    for (auto cfg : table4MicroConfigs(0.01)) {
        auto gen = makeSynthetic(cfg);
        Rng rng(2);
        const Trace t = gen->generate(rng, 5000);
        for (const auto& r : t)
            EXPECT_LT(r.lba, gen->workingSetPages()) << cfg.name;
    }
}

TEST(SyntheticTest, TailShapesOrdered)
{
    // Hot-page concentration: exp2 > alpha3 > alpha1 > uniform. The
    // share of accesses landing on the hottest 1% of the *working
    // set* captures the tail length (the paper orders the micro
    // benchmarks exactly this way in Figure 11's discussion).
    auto top_share = [](const SyntheticConfig& cfg) {
        auto gen = makeSynthetic(cfg);
        Rng rng(3);
        std::vector<Lba> reads;
        for (int i = 0; i < 60000; ++i) {
            const auto r = gen->next(rng);
            if (!r.isWrite)
                reads.push_back(r.lba);
        }
        const auto prof = popularityProfile(reads);
        const std::size_t top = std::max<std::size_t>(
            static_cast<std::size_t>(cfg.workingSetPages / 100), 1);
        std::uint64_t hot = 0, total = 0;
        for (std::size_t i = 0; i < prof.size(); ++i) {
            total += prof[i];
            if (i < top)
                hot += prof[i];
        }
        return static_cast<double>(hot) / static_cast<double>(total);
    };
    const auto configs = table4MicroConfigs(0.02); // ~5243 pages
    const double uniform = top_share(configs[0]);
    const double alpha1 = top_share(configs[1]);
    const double alpha3 = top_share(configs[3]);
    const double exp2 = top_share(configs[5]);
    EXPECT_LT(uniform, alpha1);
    EXPECT_LT(alpha1, alpha3);
    EXPECT_LE(alpha3, exp2 + 0.05);
    EXPECT_GT(exp2, 0.95); // extreme short tail: rank ~ Exp(0.1)
}

TEST(SyntheticTest, ExponentialTailFoldsIntoMonotoneRankHistogram)
{
    // Exp(0.1) over only 16 ranks overflows the range ~20% of the
    // time. Folding keeps the popularity histogram monotone in rank;
    // the old clamp piled the entire overflow mass onto the coldest
    // rank, making the edge page the hottest by far.
    SyntheticConfig cfg;
    cfg.name = "exp-fold";
    cfg.shape = TailShape::Exponential;
    cfg.lambda = 0.1;
    cfg.workingSetPages = 16;
    cfg.writeFraction = 0.0; // reads only: lba == sampled rank
    auto gen = makeSynthetic(cfg);
    Rng rng(7);
    std::vector<std::uint64_t> count(16, 0);
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
        const TraceRecord r = gen->next(rng);
        ASSERT_LT(r.lba, 16u);
        ++count[r.lba];
    }
    // Monotone decreasing rank popularity, with slack for sampling
    // noise (the expected step ratio is e^-0.1 ~ 0.905 per rank).
    for (int i = 0; i + 1 < 16; ++i)
        EXPECT_GE(count[i] * 105 / 100, count[i + 1]) << "rank " << i;
    // The edge bin must stay the coldest end, not a clamp spike.
    EXPECT_LT(count[15], count[0]);
}

TEST(MacroTest, CatalogMatchesTable4)
{
    const auto configs = table4MacroConfigs();
    ASSERT_EQ(configs.size(), 6u);
    std::unordered_set<std::string> names;
    for (const auto& c : configs)
        names.insert(c.name);
    for (const char* n : {"dbt2", "SPECWeb99", "WebSearch1",
                          "WebSearch2", "Financial1", "Financial2"}) {
        EXPECT_TRUE(names.count(n)) << n;
    }
    // Figure 7's working set sizes: Financial2 443.8 MB,
    // WebSearch1 5116.7 MB.
    const auto f2 = macroConfig("Financial2");
    EXPECT_NEAR(static_cast<double>(f2.readPages) * 2048.0,
                443.8 * 1024 * 1024, 0.01 * 443.8 * 1024 * 1024);
    const auto ws1 = macroConfig("WebSearch1");
    EXPECT_NEAR(static_cast<double>(ws1.readPages) * 2048.0,
                5116.7 * 1024 * 1024, 0.01 * 5116.7 * 1024 * 1024);
}

TEST(MacroTest, CharacteristicMixes)
{
    Rng rng(4);
    // Financial1 is write-dominated; WebSearch is almost pure reads.
    auto wf = [&](const char* name) {
        auto gen = makeMacro(macroConfig(name, 0.01));
        Trace t = gen->generate(rng, 20000);
        return summarizeTrace(t).writeFraction();
    };
    EXPECT_GT(wf("Financial1"), 0.6);
    EXPECT_LT(wf("WebSearch1"), 0.05);
    EXPECT_LT(wf("SPECWeb99"), 0.10);
    const double dbt2 = wf("dbt2");
    EXPECT_GT(dbt2, 0.2);
    EXPECT_LT(dbt2, 0.5);
}

TEST(MacroTest, SequentialRunsAppear)
{
    auto gen = makeMacro(macroConfig("SPECWeb99", 0.01));
    Rng rng(5);
    const Trace t = gen->generate(rng, 20000);
    std::uint64_t seq = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        seq += !t[i].isWrite && t[i].lba == t[i - 1].lba + 1;
    // Mean run 4 => a large share of consecutive-page reads.
    EXPECT_GT(static_cast<double>(seq) / t.size(), 0.3);
}

TEST(MacroTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(macroConfig("nope"), "unknown macro workload");
}

TEST(StackDistanceTest, MatchesReferenceLruSimulation)
{
    // Cross-check hits at several sizes against a direct LRU sim.
    Rng rng(6);
    ZipfSampler zipf(500, 1.0);
    std::vector<Lba> seq;
    for (int i = 0; i < 8000; ++i)
        seq.push_back(zipf.sample(rng));

    StackDistance sd;
    for (const Lba l : seq)
        sd.access(l);

    for (const std::uint64_t size : {1ull, 8ull, 64ull, 256ull, 1024ull}) {
        LruList<Lba> lru;
        std::uint64_t hits = 0;
        for (const Lba l : seq) {
            if (lru.contains(l))
                ++hits;
            else if (lru.size() >= size)
                lru.popLru();
            lru.touch(l);
        }
        EXPECT_EQ(sd.hitsAtSize(size), hits) << "size " << size;
    }
}

TEST(StackDistanceTest, ColdMissesAndDistinct)
{
    StackDistance sd;
    for (const Lba l : {1, 2, 3, 1, 2, 3})
        sd.access(l);
    EXPECT_EQ(sd.coldMisses(), 3u);
    EXPECT_EQ(sd.distinctPages(), 3u);
    EXPECT_EQ(sd.accesses(), 6u);
    // Distance-2 accesses hit only caches of size >= 3.
    EXPECT_EQ(sd.hitsAtSize(2), 0u);
    EXPECT_EQ(sd.hitsAtSize(3), 3u);
    EXPECT_DOUBLE_EQ(sd.missRateAtSize(3), 0.5);
}

TEST(StackDistanceTest, MissRateMonotoneInSize)
{
    Rng rng(7);
    StackDistance sd;
    for (int i = 0; i < 5000; ++i)
        sd.access(rng.uniformInt(800));
    double prev = 1.0;
    for (std::uint64_t s = 1; s <= 1024; s *= 2) {
        const double mr = sd.missRateAtSize(s);
        EXPECT_LE(mr, prev + 1e-12);
        prev = mr;
    }
}

TEST(PopularityProfileTest, SortedAndComplete)
{
    const std::vector<Lba> acc = {5, 5, 5, 9, 9, 1};
    const auto prof = popularityProfile(acc);
    ASSERT_EQ(prof.size(), 3u);
    EXPECT_EQ(prof[0], 3u);
    EXPECT_EQ(prof[1], 2u);
    EXPECT_EQ(prof[2], 1u);
}

} // namespace
} // namespace flashcache
