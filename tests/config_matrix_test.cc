/**
 * @file
 * Configuration-matrix property sweep: every combination of the four
 * policy switches (split regions, wear-leveling, adaptive
 * reconfiguration, hot-page migration) must run a mixed workload
 * without violating any table invariant, losing clean data, or
 * breaking basic accounting identities — including under accelerated
 * wear and soft errors.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

using Combo = std::tuple<bool, bool, bool, bool>;

class ConfigMatrixTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(ConfigMatrixTest, InvariantsHoldUnderMixedWorkload)
{
    const auto [split, wear_level, adaptive, hot] = GetParam();

    WearParams wp;
    wp.nominalCycles = 400; // mild aging within the run
    wp.sigmaDecades = 1.0;
    CellLifetimeModel lifetime(wp);

    FlashGeometry geom;
    geom.numBlocks = 12;
    geom.framesPerBlock = 8;
    FlashDevice device(geom, FlashTiming(), lifetime, 55);
    device.setSoftErrorRate(1e-6);
    FlashMemoryController ctrl(device);
    NullStore store;

    FlashCacheConfig cfg;
    cfg.splitRegions = split;
    cfg.wearLeveling = wear_level;
    cfg.adaptiveReconfig = adaptive;
    cfg.hotPageMigration = hot;
    cfg.accessSaturation = 24;
    cfg.wearThreshold = 24.0;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(0xC0DE + (split ? 1 : 0) + (wear_level ? 2 : 0) +
            (adaptive ? 4 : 0) + (hot ? 8 : 0));
    for (int i = 0; i < 25000 && !cache.failed(); ++i) {
        const Lba l = rng.uniformInt(200);
        if (rng.bernoulli(0.35))
            cache.write(l);
        else
            cache.read(l);
        if (i % 5000 == 4999)
            cache.checkInvariants();
    }
    cache.flushAll();
    cache.checkInvariants();

    const FlashCacheStats& st = cache.stats();

    // Accounting identities.
    EXPECT_LE(cache.validPages() + cache.invalidPages(),
              cache.capacityPages());
    EXPECT_GE(st.flashBusyTime, st.gcTime);
    EXPECT_LE(st.fgst.reads.missRate(), 1.0);
    EXPECT_LE(st.fgst.recentMissRate(), 1.0);
    EXPECT_GE(st.fgst.recentMissRate(), 0.0);

    // Feature switches gate their mechanisms.
    if (!wear_level) {
        EXPECT_EQ(st.wearMigrations, 0u);
    }
    if (!hot) {
        EXPECT_EQ(st.hotMigrations, 0u);
    }
    if (!adaptive) {
        EXPECT_EQ(st.policyEccChoices, 0u);
        EXPECT_EQ(st.policyDensityChoices, 0u);
    }

    // The cache still works after all that.
    if (!cache.failed()) {
        cache.write(9999);
        EXPECT_TRUE(cache.read(9999).hit);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, ConfigMatrixTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

} // namespace
} // namespace flashcache
