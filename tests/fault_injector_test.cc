/**
 * @file
 * Fault-injection harness tests: deterministic replay, scheduled
 * one-shots, torn-page power cuts, and the cache's degraded-mode
 * responses (re-program after a program-status failure, retirement
 * after an erase failure, bounded disk retries on latent-sector
 * errors).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "controller/memory_controller.hh"
#include "core/flash_cache.hh"
#include "devices/disk.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

constexpr std::uint32_t kPage = 2048;

/** In-memory payload disk (as in real_data_cache_test). */
class MemoryDisk : public PayloadBackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }

    Seconds
    readData(Lba lba, std::uint8_t* out) override
    {
        const auto it = pages_.find(lba);
        if (it == pages_.end())
            std::memset(out, 0, kPage);
        else
            std::memcpy(out, it->second.data(), kPage);
        return milliseconds(4.2);
    }

    Seconds
    writeData(Lba lba, const std::uint8_t* data) override
    {
        pages_[lba].assign(data, data + kPage);
        return milliseconds(4.2);
    }

    std::map<Lba, std::vector<std::uint8_t>> pages_;
};

std::vector<std::uint8_t>
pageContent(Lba lba, std::uint32_t version)
{
    std::vector<std::uint8_t> v(kPage);
    if (version == 0)
        return v;
    Rng rng(lba * 2654435761u + version);
    for (auto& b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return v;
}

struct FaultStack
{
    explicit FaultStack(const FaultPlan& plan, std::uint32_t blocks = 8,
                        FlashCacheConfig cfg = FlashCacheConfig())
        : inj(plan)
    {
        WearParams no_wear;
        no_wear.nominalCycles = 1e9;
        lifetime = std::make_unique<CellLifetimeModel>(no_wear);
        FlashGeometry g;
        g.numBlocks = blocks;
        g.framesPerBlock = 4;
        device = std::make_unique<FlashDevice>(g, FlashTiming(),
                                               *lifetime, 2024, 0.0,
                                               /*store_data=*/true);
        device->attachFaultInjector(&inj);
        controller = std::make_unique<FlashMemoryController>(*device);
        cfg.realData = true;
        cache = std::make_unique<FlashCache>(*controller, disk, cfg);
    }

    FaultInjector inj;
    std::unique_ptr<CellLifetimeModel> lifetime;
    std::unique_ptr<FlashDevice> device;
    std::unique_ptr<FlashMemoryController> controller;
    MemoryDisk disk;
    std::unique_ptr<FlashCache> cache;
};

TEST(FaultInjectorTest, SeededPlansReplayBitIdentically)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.programFailRate = 0.2;
    plan.eraseFailRate = 0.1;
    plan.readFaultRate = 0.3;
    plan.diskFaultRate = 0.25;

    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 2000; ++i) {
        a.opStart();
        b.opStart();
        EXPECT_EQ(a.onProgram(), b.onProgram());
        EXPECT_EQ(a.onErase(), b.onErase());
        EXPECT_EQ(a.onRead(), b.onRead());
        EXPECT_EQ(a.onDiskAttempt(), b.onDiskAttempt());
    }
    EXPECT_EQ(a.stats().programFails, b.stats().programFails);
    EXPECT_EQ(a.stats().readFaultBits, b.stats().readFaultBits);
    EXPECT_GT(a.stats().programFails, 0u);
    EXPECT_GT(a.stats().eraseFails, 0u);
    EXPECT_GT(a.stats().readFaults, 0u);
    EXPECT_GT(a.stats().diskFaults, 0u);
}

TEST(FaultInjectorTest, ScheduledOneShotsFireExactlyOnce)
{
    FaultPlan plan;
    plan.programFailAt = 3;
    plan.eraseFailAt = 2;
    FaultInjector inj(plan);
    int program_fails = 0, erase_fails = 0;
    for (int i = 0; i < 10; ++i) {
        inj.opStart();
        program_fails += inj.onProgram() == ProgramFault::StatusFail;
        erase_fails += inj.onErase();
    }
    EXPECT_EQ(program_fails, 1);
    EXPECT_EQ(erase_fails, 1);
    EXPECT_EQ(inj.stats().programFails, 1u);
    EXPECT_EQ(inj.stats().eraseFails, 1u);
}

TEST(FaultInjectorTest, InvalidRatesAreFatal)
{
    FaultPlan plan;
    plan.programFailRate = 1.5;
    EXPECT_DEATH({ FaultInjector inj(plan); }, "rate");
}

TEST(FaultInjectorTest, CleanPowerCutThrowsAndBlocksFurtherOps)
{
    FaultPlan plan;
    plan.powerCutAtOp = 4;
    FaultInjector inj(plan);
    for (int i = 0; i < 3; ++i)
        inj.opStart();
    EXPECT_THROW(inj.opStart(), PowerLossException);
    EXPECT_TRUE(inj.powerLost());
    EXPECT_DEATH(inj.opStart(), "power loss");
    inj.clearPowerLoss();
    inj.opStart(); // reboot: accepted again
    EXPECT_EQ(inj.stats().powerCuts, 1u);
}

TEST(FaultInjectorTest, MidProgramCutLeavesATornPage)
{
    FaultPlan plan;
    plan.powerCutAtProgram = 2;
    plan.tornFraction = 0.5;
    FaultStack s(plan);

    const auto a = pageContent(1, 1);
    s.cache->writeData(1, a.data());
    const auto b = pageContent(2, 1);
    EXPECT_THROW(s.cache->writeData(2, b.data()), PowerLossException);

    EXPECT_EQ(s.inj.stats().powerCuts, 1u);
    EXPECT_EQ(s.inj.stats().tornPages, 1u);

    // Exactly one programmed page on the medium is torn, and its
    // stored payload must not be the complete write.
    unsigned torn = 0;
    const auto& geom = s.device->geometry();
    for (std::uint32_t blk = 0; blk < geom.numBlocks; ++blk) {
        for (std::uint16_t f = 0; f < geom.framesPerBlock; ++f) {
            for (std::uint8_t sub = 0; sub < 2; ++sub) {
                const PageAddress addr{blk, f, sub};
                if (!s.device->isProgrammed(addr) ||
                    !s.device->isTorn(addr)) {
                    continue;
                }
                ++torn;
                const PageBytes pb = s.device->pageData(addr);
                ASSERT_TRUE(pb);
                EXPECT_NE(0, std::memcmp(pb.data, b.data(), kPage));
            }
        }
    }
    EXPECT_EQ(torn, 1u);
}

TEST(FaultInjectorTest, ProgramStatusFailureReprogramsElsewhere)
{
    FaultPlan plan;
    plan.programFailAt = 3;
    FaultStack s(plan);

    for (Lba l = 0; l < 6; ++l)
        s.cache->writeData(l, pageContent(l, 1).data());

    EXPECT_EQ(s.cache->stats().programFailReprograms, 1u);
    EXPECT_EQ(s.controller->stats().programFailures, 1u);

    // Every write survives, including the one whose first program
    // failed; the failed block retires once its pages drain.
    std::vector<std::uint8_t> out(kPage);
    for (Lba l = 0; l < 6; ++l) {
        s.cache->readData(l, out.data());
        EXPECT_EQ(0, std::memcmp(out.data(), pageContent(l, 1).data(),
                                 kPage))
            << "lba " << l;
    }
    s.cache->checkInvariants();
    EXPECT_GE(s.cache->stats().retiredBlocks, 1u);
}

TEST(FaultInjectorTest, EraseFailureRetiresTheBlock)
{
    FaultPlan plan;
    plan.eraseFailAt = 1;
    FlashCacheConfig cfg;
    cfg.splitRegions = true;
    FaultStack s(plan, 8, cfg);

    // Small write region: enough write traffic forces GC erases.
    Rng rng(3);
    std::map<Lba, std::uint32_t> version;
    for (int i = 0; i < 300; ++i) {
        const Lba lba = rng.uniformInt(24);
        s.cache->writeData(lba, pageContent(lba, ++version[lba]).data());
    }
    EXPECT_EQ(s.cache->stats().eraseFailRetirements, 1u);
    EXPECT_EQ(s.controller->stats().eraseFailures, 1u);
    EXPECT_GE(s.cache->stats().retiredBlocks, 1u);
    s.cache->checkInvariants();

    // Data integrity survives the capacity shrink.
    std::vector<std::uint8_t> out(kPage);
    for (const auto& [lba, v] : version) {
        s.cache->readData(lba, out.data());
        EXPECT_EQ(0, std::memcmp(out.data(),
                                 pageContent(lba, v).data(), kPage))
            << "lba " << lba;
    }
}

TEST(FaultInjectorTest, DiskRetriesThenReportsHardFailure)
{
    FaultPlan plan;
    plan.diskFaultRate = 1.0; // every attempt fails
    plan.diskMaxRetries = 3;
    FaultInjector inj(plan);
    DiskModel disk;
    disk.attachFaultInjector(&inj);

    const auto res = disk.accessChecked(7, false);
    EXPECT_TRUE(res.failed);
    EXPECT_EQ(res.retries, 3u);
    EXPECT_EQ(inj.stats().diskFaults, 4u); // initial + 3 retries

    // A transient error costs retries but succeeds.
    FaultPlan once;
    once.diskFaultRate = 0.5;
    once.seed = 5;
    FaultInjector inj2(once);
    DiskModel disk2;
    disk2.attachFaultInjector(&inj2);
    unsigned failed = 0, retried = 0;
    for (int i = 0; i < 200; ++i) {
        const auto r = disk2.accessChecked(i, false);
        failed += r.failed;
        retried += r.retries > 0;
    }
    EXPECT_GT(retried, 0u);
    EXPECT_LT(failed, 200u);

    // Without an injector accessChecked degenerates to access().
    DiskModel plain;
    const auto ok = plain.accessChecked(3, false);
    EXPECT_FALSE(ok.failed);
    EXPECT_EQ(ok.retries, 0u);
}

TEST(FaultInjectorTest, DiskFillFailureIsServedAsMissNeverStale)
{
    // A payload store that honours the fault-aware hooks by failing
    // every read, like a disk whose sector went bad.
    class FailingDisk : public MemoryDisk
    {
      public:
        Seconds
        readData(Lba lba, std::uint8_t* out, bool& failed) override
        {
            failed = true;
            return MemoryDisk::readData(lba, out);
        }
    };

    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel lifetime(no_wear);
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 4;
    FlashDevice dev(g, FlashTiming(), lifetime, 7, 0.0, true);
    FlashMemoryController ctrl(dev);
    FailingDisk disk;
    FlashCacheConfig cfg;
    cfg.realData = true;
    FlashCache cache(ctrl, disk, cfg);

    std::vector<std::uint8_t> out(kPage, 0xAB);
    const auto r = cache.readData(42, out.data());
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(cache.stats().diskFillFailures, 1u);
    // Nothing was installed: the next read misses again instead of
    // serving whatever the failed fill left in the buffer.
    const auto r2 = cache.readData(42, out.data());
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(cache.stats().diskFillFailures, 2u);
    cache.checkInvariants();
}

TEST(FaultInjectorTest, MetricsRegisterUnderFaultPrefix)
{
    FaultPlan plan;
    plan.programFailAt = 1;
    FaultInjector inj(plan);
    obs::MetricRegistry reg;
    inj.registerMetrics(reg);
    EXPECT_TRUE(reg.has("fault.program_fails"));
    EXPECT_TRUE(reg.has("fault.erase_fails"));
    EXPECT_TRUE(reg.has("fault.read_faults"));
    EXPECT_TRUE(reg.has("fault.disk_faults"));
    EXPECT_TRUE(reg.has("fault.power_cuts"));
    EXPECT_TRUE(reg.has("fault.torn_pages"));
    EXPECT_EQ(reg.value("fault.program_fails"), 0.0);
    inj.opStart();
    (void)inj.onProgram(); // scheduled one-shot fires
    EXPECT_EQ(reg.value("fault.program_fails"), 1.0);
}

TEST(FaultInjectorTest, OobRecordRoundTripsAndRejectsCorruption)
{
    std::vector<std::uint8_t> spare(64, 0);
    OobRecord rec;
    rec.lba = 0x1234567890abcdefull;
    rec.seq = 42;
    rec.region = 1;
    rec.dirty = true;
    rec.eccStrength = 7;
    packOobRecord(spare.data(), 64, rec);

    OobRecord got;
    ASSERT_TRUE(parseOobRecord(spare.data(), 64, got));
    EXPECT_EQ(got.lba, rec.lba);
    EXPECT_EQ(got.seq, rec.seq);
    EXPECT_EQ(got.region, rec.region);
    EXPECT_EQ(got.dirty, rec.dirty);
    EXPECT_EQ(got.eccStrength, rec.eccStrength);

    // Any torn byte — in the record or anywhere in the covered
    // spare — invalidates the CRC.
    for (const std::size_t i : {0u, 10u, 41u, 50u, 63u}) {
        auto bad = spare;
        bad[i] ^= 0x40;
        EXPECT_FALSE(parseOobRecord(bad.data(), 64, got)) << i;
    }
    // An all-zero (erased) spare never parses.
    std::vector<std::uint8_t> zero(64, 0);
    EXPECT_FALSE(parseOobRecord(zero.data(), 64, got));
}

} // namespace
} // namespace flashcache
