/**
 * @file
 * Allocation-path edge cases: mixed-density blocks, SLC cursor
 * formatting, cursor recovery after retirement, and LRU list stress
 * against a reference implementation.
 */

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "core/flash_cache.hh"
#include "core/lru.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

FlashGeometry
geom(std::uint32_t blocks = 16, std::uint16_t frames = 8)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = frames;
    return g;
}

WearParams
noWear()
{
    WearParams wp;
    wp.nominalCycles = 1e9;
    return wp;
}

TEST(AllocationTest, SlcFormattingHalvesBlockCapacity)
{
    // Saturate hot pages so migration creates SLC blocks, then
    // verify the capacity accounting reflects 1 page per SLC frame.
    CellLifetimeModel lifetime(noWear());
    FlashDevice device(geom(), FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.accessSaturation = 8;
    FlashCache cache(ctrl, store, cfg);

    const std::uint64_t before = cache.capacityPages();
    for (int round = 0; round < 30; ++round)
        for (Lba l = 0; l < 10; ++l)
            cache.read(l);
    ASSERT_GT(cache.stats().hotMigrations, 0u);

    std::uint32_t slc_frames = 0;
    for (std::uint32_t b = 0; b < 16; ++b)
        for (std::uint16_t f = 0; f < 8; ++f)
            slc_frames += device.frameMode(b, f) == DensityMode::SLC;
    ASSERT_GT(slc_frames, 0u);
    EXPECT_EQ(cache.capacityPages(), before - slc_frames);
    cache.checkInvariants();
}

TEST(AllocationTest, MixedBlockSlotsCountedCorrectly)
{
    // Reconfiguration-driven SLC switches produce mixed blocks;
    // occupancy and invariants must stay exact through them.
    WearParams wp;
    wp.nominalCycles = 60;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wp);
    FlashDevice device(geom(), FlashTiming(), lifetime, 2);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.hotPageMigration = false;
    cfg.agingWindow = 1 << 12;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(3);
    for (int i = 0; i < 80000 && !cache.failed(); ++i) {
        const Lba l = rng.uniformInt(128);
        if (rng.bernoulli(0.5))
            cache.write(l);
        else
            cache.read(l);
        if (i % 10000 == 9999)
            cache.checkInvariants();
    }
    // The run must have exercised density switching.
    EXPECT_GT(cache.stats().densityReconfigs, 0u);
    EXPECT_LE(cache.occupancy(), 1.0);
}

TEST(AllocationTest, SurvivesWriteRegionRetirement)
{
    // Retiring blocks under the allocator (including possibly its
    // cursor block) must never wedge allocation while usable blocks
    // remain.
    WearParams wp;
    wp.nominalCycles = 15;
    wp.sigmaDecades = 0.6;
    CellLifetimeModel lifetime(wp);
    FlashDevice device(geom(12, 4), FlashTiming(), lifetime, 4);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.maxEccStrength = 3;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(5);
    std::uint64_t n = 0;
    while (n < 3000000 && !cache.failed()) {
        const Lba l = rng.uniformInt(48);
        if (rng.bernoulli(0.7))
            cache.write(l);
        else
            cache.read(l);
        ++n;
    }
    EXPECT_TRUE(cache.failed());
    EXPECT_GE(cache.stats().retiredBlocks, 1u);
    cache.checkInvariants();
    // Even a failed cache answers reads (through the disk).
    EXPECT_GE(cache.read(7).latency, 0.0);
}

TEST(LruStressTest, MatchesReferenceImplementation)
{
    // Randomized differential test of LruList against a deque-based
    // reference.
    LruList<int> lru;
    std::deque<int> ref; // front = MRU
    Rng rng(6);
    for (int i = 0; i < 20000; ++i) {
        const int k = static_cast<int>(rng.uniformInt(50));
        const double op = rng.uniform();
        if (op < 0.5) {
            lru.touch(k);
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    break;
                }
            }
            ref.push_front(k);
        } else if (op < 0.7) {
            const bool had = lru.erase(k);
            bool ref_had = false;
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    ref_had = true;
                    break;
                }
            }
            EXPECT_EQ(had, ref_had);
        } else if (op < 0.85 && !ref.empty()) {
            EXPECT_EQ(lru.popLru(), ref.back());
            ref.pop_back();
        } else {
            lru.insertCold(k);
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    break;
                }
            }
            ref.push_back(k);
        }
        ASSERT_EQ(lru.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(lru.mru(), ref.front());
            ASSERT_EQ(lru.lru(), ref.back());
        }
    }
    // Full order agreement at the end.
    std::vector<int> got(lru.begin(), lru.end());
    std::vector<int> want(ref.begin(), ref.end());
    EXPECT_EQ(got, want);
}

TEST(AllocationTest, UnifiedAndSplitAgreeOnTotalCapacity)
{
    CellLifetimeModel lifetime(noWear());
    for (const bool split : {false, true}) {
        FlashDevice device(geom(), FlashTiming(), lifetime, 7);
        FlashMemoryController ctrl(device);
        NullStore store;
        FlashCacheConfig cfg;
        cfg.splitRegions = split;
        FlashCache cache(ctrl, store, cfg);
        EXPECT_EQ(cache.capacityPages(), 16u * 8 * 2) << split;
    }
}

} // namespace
} // namespace flashcache
