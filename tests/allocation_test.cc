/**
 * @file
 * Allocation-path edge cases: mixed-density blocks, SLC cursor
 * formatting, cursor recovery after retirement, LRU/FCHT stress
 * against the seed reference implementations, and the
 * zero-steady-state-allocation guarantee of the serving hot path
 * (global operator new/delete are replaced with counting versions).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <new>
#include <unordered_set>

#include "core/flash_cache.hh"
#include "core/lru.hh"
#include "core/tables.hh"
#include "util/rng.hh"

// ---------------------------------------------------------------------
// Counting allocator overrides (global scope, required by [new.delete]).
// The replacement new uses malloc and the replacement delete frees it;
// GCC cannot see the pairing across the replacement boundary, so the
// mismatch warning is a false positive here.
// ---------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::uint64_t g_allocCount = 0;
} // namespace

void*
operator new(std::size_t n)
{
    ++g_allocCount;
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return operator new(n);
}

void*
operator new(std::size_t n, const std::nothrow_t&) noexcept
{
    ++g_allocCount;
    return std::malloc(n ? n : 1);
}

void*
operator new[](std::size_t n, const std::nothrow_t& t) noexcept
{
    return operator new(n, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

FlashGeometry
geom(std::uint32_t blocks = 16, std::uint16_t frames = 8)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = frames;
    return g;
}

WearParams
noWear()
{
    WearParams wp;
    wp.nominalCycles = 1e9;
    return wp;
}

TEST(AllocationTest, SlcFormattingHalvesBlockCapacity)
{
    // Saturate hot pages so migration creates SLC blocks, then
    // verify the capacity accounting reflects 1 page per SLC frame.
    CellLifetimeModel lifetime(noWear());
    FlashDevice device(geom(), FlashTiming(), lifetime, 1);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.accessSaturation = 8;
    FlashCache cache(ctrl, store, cfg);

    const std::uint64_t before = cache.capacityPages();
    for (int round = 0; round < 30; ++round)
        for (Lba l = 0; l < 10; ++l)
            cache.read(l);
    ASSERT_GT(cache.stats().hotMigrations, 0u);

    std::uint32_t slc_frames = 0;
    for (std::uint32_t b = 0; b < 16; ++b)
        for (std::uint16_t f = 0; f < 8; ++f)
            slc_frames += device.frameMode(b, f) == DensityMode::SLC;
    ASSERT_GT(slc_frames, 0u);
    EXPECT_EQ(cache.capacityPages(), before - slc_frames);
    cache.checkInvariants();
}

TEST(AllocationTest, MixedBlockSlotsCountedCorrectly)
{
    // Reconfiguration-driven SLC switches produce mixed blocks;
    // occupancy and invariants must stay exact through them.
    WearParams wp;
    wp.nominalCycles = 60;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel lifetime(wp);
    FlashDevice device(geom(), FlashTiming(), lifetime, 2);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.hotPageMigration = false;
    cfg.agingWindow = 1 << 12;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(3);
    for (int i = 0; i < 80000 && !cache.failed(); ++i) {
        const Lba l = rng.uniformInt(128);
        if (rng.bernoulli(0.5))
            cache.write(l);
        else
            cache.read(l);
        if (i % 10000 == 9999)
            cache.checkInvariants();
    }
    // The run must have exercised density switching.
    EXPECT_GT(cache.stats().densityReconfigs, 0u);
    EXPECT_LE(cache.occupancy(), 1.0);
}

TEST(AllocationTest, SurvivesWriteRegionRetirement)
{
    // Retiring blocks under the allocator (including possibly its
    // cursor block) must never wedge allocation while usable blocks
    // remain.
    WearParams wp;
    wp.nominalCycles = 15;
    wp.sigmaDecades = 0.6;
    CellLifetimeModel lifetime(wp);
    FlashDevice device(geom(12, 4), FlashTiming(), lifetime, 4);
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.maxEccStrength = 3;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(5);
    std::uint64_t n = 0;
    while (n < 3000000 && !cache.failed()) {
        const Lba l = rng.uniformInt(48);
        if (rng.bernoulli(0.7))
            cache.write(l);
        else
            cache.read(l);
        ++n;
    }
    EXPECT_TRUE(cache.failed());
    EXPECT_GE(cache.stats().retiredBlocks, 1u);
    cache.checkInvariants();
    // Even a failed cache answers reads (through the disk).
    EXPECT_GE(cache.read(7).latency, 0.0);
}

TEST(LruStressTest, MatchesReferenceImplementation)
{
    // Randomized differential test of LruList against a deque-based
    // reference.
    LruList<int> lru;
    std::deque<int> ref; // front = MRU
    Rng rng(6);
    for (int i = 0; i < 20000; ++i) {
        const int k = static_cast<int>(rng.uniformInt(50));
        const double op = rng.uniform();
        if (op < 0.5) {
            lru.touch(k);
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    break;
                }
            }
            ref.push_front(k);
        } else if (op < 0.7) {
            const bool had = lru.erase(k);
            bool ref_had = false;
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    ref_had = true;
                    break;
                }
            }
            EXPECT_EQ(had, ref_had);
        } else if (op < 0.85 && !ref.empty()) {
            EXPECT_EQ(lru.popLru(), ref.back());
            ref.pop_back();
        } else {
            lru.insertCold(k);
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (*it == k) {
                    ref.erase(it);
                    break;
                }
            }
            ref.push_back(k);
        }
        ASSERT_EQ(lru.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(lru.mru(), ref.front());
            ASSERT_EQ(lru.lru(), ref.back());
        }
    }
    // Full order agreement at the end.
    std::vector<int> got(lru.begin(), lru.end());
    std::vector<int> want(ref.begin(), ref.end());
    EXPECT_EQ(got, want);
}

TEST(LruStressTest, IntrusiveMatchesSeedLruList)
{
    // The intrusive replacement must order and evict exactly like the
    // seed list under a randomized op stream.
    LruList<std::uint32_t> seed;
    IntrusiveLru lru(64);
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        const std::uint32_t k = rng.uniformInt(64);
        const double op = rng.uniform();
        if (op < 0.5) {
            seed.touch(k);
            lru.touch(k);
        } else if (op < 0.7) {
            ASSERT_EQ(lru.erase(k), seed.erase(k));
        } else if (op < 0.85 && !seed.empty()) {
            ASSERT_EQ(lru.popLru(), seed.popLru());
        } else {
            seed.insertCold(k);
            lru.insertCold(k);
        }
        ASSERT_EQ(lru.size(), seed.size());
        ASSERT_EQ(lru.contains(k), seed.contains(k));
        if (!seed.empty()) {
            ASSERT_EQ(lru.mru(), seed.mru());
            ASSERT_EQ(lru.lru(), seed.lru());
        }
    }
    const std::vector<std::uint32_t> got(lru.begin(), lru.end());
    const std::vector<std::uint32_t> want(seed.begin(), seed.end());
    EXPECT_EQ(got, want);
}

TEST(LruStressTest, KeyedMatchesSeedLruList)
{
    // Sparse-key variant backing the PDC: same eviction sequence as
    // the seed list, including through slot reuse and index rehash.
    LruList<Lba> seed;
    KeyedLru<Lba> lru;
    Rng rng(12);
    for (int i = 0; i < 50000; ++i) {
        // Sparse keys exercise the open-addressed index for real.
        const Lba k = 1 + rng.uniformInt(96) * 0x9E3779B97ull;
        const double op = rng.uniform();
        if (op < 0.5) {
            seed.touch(k);
            lru.touch(k);
        } else if (op < 0.7) {
            ASSERT_EQ(lru.erase(k), seed.erase(k));
        } else if (op < 0.85 && !seed.empty()) {
            ASSERT_EQ(lru.popLru(), seed.popLru());
        } else {
            seed.insertCold(k);
            lru.insertCold(k);
        }
        ASSERT_EQ(lru.size(), seed.size());
        ASSERT_EQ(lru.contains(k), seed.contains(k));
        if (!seed.empty()) {
            ASSERT_EQ(lru.mru(), seed.mru());
            ASSERT_EQ(lru.lru(), seed.lru());
        }
    }
    // Drain both: the full eviction order must agree.
    while (!seed.empty())
        ASSERT_EQ(lru.popLru(), seed.popLru());
    EXPECT_TRUE(lru.empty());
}

TEST(FchtStressTest, OpenAddressedMatchesSeedChains)
{
    // The open-addressed FCHT must answer every lookup exactly like
    // the seed chained table through inserts, updates, erases and
    // load-factor growth.
    FchtChained seed(64);
    Fcht fcht(64);
    std::vector<bool> present(512, false);
    Rng rng(13);
    std::uint64_t next_page = 0;
    for (int i = 0; i < 60000; ++i) {
        const std::size_t k = rng.uniformInt(512);
        const Lba lba = 7 + k * 0x100000001ull;
        const double op = rng.uniform();
        if (op < 0.45) {
            if (!present[k]) {
                seed.insert(lba, next_page);
                fcht.insert(lba, next_page);
                ++next_page;
                present[k] = true;
            }
        } else if (op < 0.65) {
            ASSERT_EQ(fcht.erase(lba), seed.erase(lba));
            present[k] = false;
        } else if (op < 0.8) {
            if (present[k]) {
                seed.update(lba, next_page);
                fcht.update(lba, next_page);
                ++next_page;
            }
        }
        ASSERT_EQ(fcht.find(lba), seed.find(lba));
        ASSERT_EQ(fcht.size(), seed.size());
    }
    // Sweep the whole key space: every mapping agrees, absent keys
    // miss in both.
    for (std::size_t k = 0; k < 512; ++k) {
        const Lba lba = 7 + k * 0x100000001ull;
        ASSERT_EQ(fcht.find(lba), seed.find(lba));
        ASSERT_EQ(fcht.find(lba) != Fcht::npos, !!present[k]);
    }
}

TEST(AllocationTest, ServingHotPathIsAllocationFree)
{
    // The tentpole guarantee: once the cache is warm, reads and
    // writes — including GC victim selection, block eviction, and
    // out-of-place rewrites — never touch the heap.
    CellLifetimeModel lifetime(noWear());
    FlashDevice device(geom(), FlashTiming(), lifetime, 21);
    // Pre-warm the device's lazily sampled per-frame health state
    // (first hardErrors() query after damage accrues allocates the
    // weak-cell table); one erase puts damage on every frame.
    for (std::uint32_t b = 0; b < 16; ++b) {
        device.eraseBlock(b);
        for (std::uint16_t f = 0; f < 8; ++f)
            device.hardErrors({b, f, 0});
    }
    FlashMemoryController ctrl(device);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    // Warm until the loop has exercised both GC and eviction. Reads
    // span more LBAs than the cache holds (forces read-region
    // eviction); writes rewrite a hot subset (forces write-region
    // GC).
    Rng rng(22);
    auto one_op = [&] {
        if (rng.bernoulli(0.7))
            cache.read(rng.uniformInt(300));
        else
            cache.write(rng.uniformInt(64));
    };
    int warm = 0;
    while ((cache.stats().gcRuns == 0 || cache.stats().evictions == 0) &&
           warm < 200000) {
        one_op();
        ++warm;
    }
    ASSERT_GT(cache.stats().gcRuns, 0u);
    ASSERT_GT(cache.stats().evictions, 0u);

    const std::uint64_t gc_before = cache.stats().gcRuns;
    const std::uint64_t ev_before = cache.stats().evictions;
    const std::uint64_t allocs_before = g_allocCount;
    for (int i = 0; i < 30000; ++i)
        one_op();
    const std::uint64_t allocs = g_allocCount - allocs_before;

    // The measured window must itself contain GC and eviction work,
    // or the zero-allocation claim would be vacuous.
    EXPECT_GT(cache.stats().gcRuns, gc_before);
    EXPECT_GT(cache.stats().evictions, ev_before);
    EXPECT_EQ(allocs, 0u);
    cache.checkInvariants();
}

TEST(AllocationTest, PdcServingIsAllocationFreeOnceReserved)
{
    // The KeyedLru PDC lists: steady-state touch/erase/popLru churn
    // after reserve() stays off the heap.
    KeyedLru<Lba> lru;
    lru.reserve(256);
    Rng rng(23);
    // Steady-state page-cache churn: bound the live set the way the
    // PDC does (evict the coldest before inserting at capacity).
    auto one_op = [&] {
        const Lba k = rng.uniformInt(10000);
        const double op = rng.uniform();
        if (op < 0.6) {
            if (lru.size() >= 256)
                lru.popLru();
            lru.touch(k);
        } else if (op < 0.8) {
            lru.erase(k);
        } else if (!lru.empty()) {
            lru.popLru();
        }
    };
    for (int i = 0; i < 1000; ++i)
        one_op();
    const std::uint64_t before = g_allocCount;
    for (int i = 0; i < 100000; ++i)
        one_op();
    EXPECT_EQ(g_allocCount - before, 0u);
}

TEST(AllocationTest, UnifiedAndSplitAgreeOnTotalCapacity)
{
    CellLifetimeModel lifetime(noWear());
    for (const bool split : {false, true}) {
        FlashDevice device(geom(), FlashTiming(), lifetime, 7);
        FlashMemoryController ctrl(device);
        NullStore store;
        FlashCacheConfig cfg;
        cfg.splitRegions = split;
        FlashCache cache(ctrl, store, cfg);
        EXPECT_EQ(cache.capacityPages(), 16u * 8 * 2) << split;
    }
}

} // namespace
} // namespace flashcache
