/**
 * @file
 * Programmable flash memory controller tests: modeled and real data
 * paths, descriptor-driven ECC strength, and the section 5.2
 * reconfiguration policy heuristics.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "controller/memory_controller.hh"
#include "controller/reconfig_policy.hh"

namespace flashcache {
namespace {

FlashGeometry
tinyGeom()
{
    FlashGeometry g;
    g.numBlocks = 2;
    g.framesPerBlock = 2;
    return g;
}

/** Device aged until pages show a target number of hard errors. */
class AgedControllerTest : public ::testing::Test
{
  protected:
    AgedControllerTest()
        : model_(fastWear()),
          dev_(tinyGeom(), FlashTiming(), model_, 11),
          ctrl_(dev_)
    {
    }

    static WearParams
    fastWear()
    {
        WearParams p;
        p.nominalCycles = 100;
        p.sigmaDecades = 0.8;
        return p;
    }

    /** Erase block 0 until its frame-0 MLC page shows >= n errors. */
    void
    ageUntilErrors(unsigned n)
    {
        for (int i = 0; i < 200000; ++i) {
            dev_.eraseBlock(0);
            dev_.programPage({0, 0, 0});
            const unsigned e = dev_.hardErrors({0, 0, 0});
            if (e >= n)
                return;
            dev_.eraseBlock(0);
        }
        FAIL() << "device refused to age";
    }

    CellLifetimeModel model_;
    FlashDevice dev_;
    FlashMemoryController ctrl_;
};

TEST(ControllerTest, CleanReadOnFreshDevice)
{
    CellLifetimeModel m;
    FlashDevice dev(tinyGeom(), FlashTiming(), m, 3);
    FlashMemoryController ctrl(dev);
    PageDescriptor desc{4, DensityMode::MLC};
    ctrl.writePage({0, 0, 0}, desc);
    const auto r = ctrl.readPage({0, 0, 0}, desc);
    EXPECT_EQ(r.status, ReadStatus::Clean);
    EXPECT_EQ(r.correctedBits, 0u);
    // Latency = flash array read + BCH decode + CRC.
    EXPECT_GT(r.latency, FlashTiming().mlcReadLatency);
}

TEST(ControllerTest, LatencyGrowsWithDescriptorStrength)
{
    CellLifetimeModel m;
    FlashDevice dev(tinyGeom(), FlashTiming(), m, 3);
    FlashMemoryController ctrl(dev);
    PageDescriptor weak{1, DensityMode::MLC};
    PageDescriptor strong{12, DensityMode::MLC};
    ctrl.writePage({0, 0, 0}, weak);
    ctrl.writePage({0, 0, 1}, strong);
    const auto r1 = ctrl.readPage({0, 0, 0}, weak);
    const auto r2 = ctrl.readPage({0, 0, 1}, strong);
    EXPECT_GT(r2.latency, r1.latency);
    EXPECT_NEAR(r2.latency - r1.latency,
                ctrl.decodeLatency(12) - ctrl.decodeLatency(1), 1e-12);
}

TEST_F(AgedControllerTest, CorrectedWhenErrorsWithinStrength)
{
    ageUntilErrors(2);
    const unsigned raw = dev_.hardErrors({0, 0, 0});
    PageDescriptor desc{static_cast<std::uint8_t>(raw + 2),
                        DensityMode::MLC};
    const auto r = ctrl_.readPage({0, 0, 0}, desc);
    EXPECT_EQ(r.status, ReadStatus::Corrected);
    EXPECT_EQ(r.correctedBits, raw);
    EXPECT_EQ(ctrl_.stats().correctedReads, 1u);
}

TEST_F(AgedControllerTest, UncorrectableWhenErrorsExceedStrength)
{
    ageUntilErrors(3);
    PageDescriptor desc{1, DensityMode::MLC};
    const auto r = ctrl_.readPage({0, 0, 0}, desc);
    EXPECT_EQ(r.status, ReadStatus::Uncorrectable);
    EXPECT_EQ(ctrl_.stats().uncorrectableReads, 1u);
}

TEST(ControllerRealPathTest, RoundTripNoErrors)
{
    CellLifetimeModel m;
    FlashDevice dev(tinyGeom(), FlashTiming(), m, 5, 0.0, true);
    FlashMemoryController ctrl(dev);
    PageDescriptor desc{4, DensityMode::MLC};

    std::vector<std::uint8_t> data(2048);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    ctrl.writePageReal({0, 0, 0}, desc, data.data());

    std::vector<std::uint8_t> out(2048, 0);
    const auto r = ctrl.readPageReal({0, 0, 0}, desc, out.data());
    EXPECT_EQ(r.status, ReadStatus::Clean);
    EXPECT_EQ(out, data);
}

TEST(ControllerRealPathTest, CorrectsInjectedErrorsUpToStrength)
{
    CellLifetimeModel m;
    FlashDevice dev(tinyGeom(), FlashTiming(), m, 5, 0.0, true);
    FlashMemoryController ctrl(dev);

    for (unsigned t : {1u, 4u, 8u, 12u}) {
        PageDescriptor desc{static_cast<std::uint8_t>(t),
                            DensityMode::MLC};
        std::vector<std::uint8_t> data(2048);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(i + t);
        const PageAddress addr{0, 0, 0};
        ctrl.writePageReal(addr, desc, data.data());

        std::vector<std::uint8_t> out(2048, 0);
        const auto r = ctrl.readPageReal(addr, desc, out.data(), t);
        EXPECT_EQ(r.status, ReadStatus::Corrected) << t;
        EXPECT_EQ(out, data) << t;
        dev.eraseBlock(0);
    }
}

TEST(ControllerRealPathTest, FlagsBeyondStrengthViaCrc)
{
    CellLifetimeModel m;
    FlashDevice dev(tinyGeom(), FlashTiming(), m, 5, 0.0, true);
    FlashMemoryController ctrl(dev);
    PageDescriptor desc{2, DensityMode::MLC};

    std::vector<std::uint8_t> data(2048, 0x5A);
    ctrl.writePageReal({1, 0, 0}, desc, data.data());
    std::vector<std::uint8_t> out(2048, 0);
    const auto r = ctrl.readPageReal({1, 0, 0}, desc, out.data(), 9);
    EXPECT_EQ(r.status, ReadStatus::Uncorrectable);
}

TEST(ReconfigPolicyTest, ColdPageUnderLongTailPrefersEcc)
{
    // A rarely accessed page: extra decode latency is nearly free,
    // while losing capacity costs misses (uniform / long-tailed
    // workloads in Figure 11 are dominated by ECC updates).
    ReconfigInputs in;
    in.pageAccessFreq = 1e-7;
    in.missRate = 0.3;
    in.missPenalty = milliseconds(4.2);
    in.hitLatency = microseconds(100);
    in.deltaCodeDelay = microseconds(30);
    in.deltaSlcGain = microseconds(25);
    in.deltaMiss = 0.3 / 65536.0;
    EXPECT_EQ(ReconfigPolicy::onFaultIncrease(in),
              ReconfigDecision::IncreaseEcc);
}

TEST(ReconfigPolicyTest, HotPagePrefersDensitySwitch)
{
    // A hot page: SLC's faster reads outweigh the capacity loss
    // (short-tailed workloads in Figure 11 flip toward density).
    ReconfigInputs in;
    in.pageAccessFreq = 0.05;
    in.missRate = 0.1;
    in.missPenalty = milliseconds(4.2);
    in.hitLatency = microseconds(100);
    in.deltaCodeDelay = microseconds(30);
    in.deltaSlcGain = microseconds(25);
    in.deltaMiss = 0.1 / 65536.0;
    EXPECT_EQ(ReconfigPolicy::onFaultIncrease(in),
              ReconfigDecision::SwitchToSlc);
}

TEST(ReconfigPolicyTest, ExhaustedKnobsRetireBlock)
{
    ReconfigInputs in;
    in.canIncreaseEcc = false;
    in.canSwitchToSlc = false;
    EXPECT_EQ(ReconfigPolicy::onFaultIncrease(in),
              ReconfigDecision::RetireBlock);
}

TEST(ReconfigPolicyTest, SingleRemainingKnobIsForced)
{
    ReconfigInputs hot;
    hot.pageAccessFreq = 0.5;
    hot.deltaSlcGain = microseconds(25);
    hot.deltaCodeDelay = microseconds(30);
    hot.canSwitchToSlc = false;
    EXPECT_EQ(ReconfigPolicy::onFaultIncrease(hot),
              ReconfigDecision::IncreaseEcc);
    hot.canSwitchToSlc = true;
    hot.canIncreaseEcc = false;
    EXPECT_EQ(ReconfigPolicy::onFaultIncrease(hot),
              ReconfigDecision::SwitchToSlc);
}

TEST(ReconfigPolicyTest, CostFormulasMatchPaper)
{
    ReconfigInputs in;
    in.pageAccessFreq = 0.01;
    in.missRate = 0.2;
    in.missPenalty = milliseconds(4);
    in.hitLatency = microseconds(50);
    in.deltaCodeDelay = microseconds(30);
    in.deltaSlcGain = microseconds(25);
    in.deltaMiss = 1e-6;
    const auto c = ReconfigPolicy::costs(in);
    EXPECT_DOUBLE_EQ(c.strongerEcc, 0.01 * microseconds(30));
    EXPECT_DOUBLE_EQ(c.densitySwitch,
                     1e-6 * (milliseconds(4) + microseconds(50)) -
                         0.01 * microseconds(25));
}

} // namespace
} // namespace flashcache
