/**
 * @file
 * Cross-module integration tests: the real ECC data path under
 * physical aging, end-to-end data integrity through the controller,
 * full-system determinism, and energy accounting consistency.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "controller/memory_controller.hh"
#include "core/flash_cache.hh"
#include "sim/system_sim.hh"
#include "workload/macro.hh"

namespace flashcache {
namespace {

FlashGeometry
tinyGeom()
{
    FlashGeometry g;
    g.numBlocks = 4;
    g.framesPerBlock = 4;
    return g;
}

TEST(RealPathAgingTest, DataSurvivesUntilEccExhausted)
{
    // Age a frame step by step; at every age, data written with a
    // strong code must read back bit-exact while the raw error count
    // stays within the strength — and the controller must flag (not
    // silently corrupt) once it is exceeded.
    WearParams wp;
    wp.nominalCycles = 100;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel model(wp);
    FlashDevice dev(tinyGeom(), FlashTiming(), model, 8, 0.0, true);
    FlashMemoryController ctrl(dev);

    std::vector<std::uint8_t> data(2048);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 13 + 7);
    std::vector<std::uint8_t> out(2048);

    const PageDescriptor strong{12, DensityMode::MLC};
    unsigned last_raw = 0;
    bool saw_corrected = false;
    for (int age = 0; age < 40000; ++age) {
        dev.eraseBlock(0);
        const unsigned raw = dev.hardErrors({0, 0, 0});
        EXPECT_GE(raw + 1, last_raw) << "hard errors must not heal";
        last_raw = raw;
        if (raw > 12)
            break;
        ctrl.writePageReal({0, 0, 0}, strong, data.data());
        const auto res = ctrl.readPageReal({0, 0, 0}, strong,
                                           out.data());
        ASSERT_NE(res.status, ReadStatus::Uncorrectable)
            << "raw=" << raw;
        ASSERT_EQ(out, data) << "corrupted data at raw=" << raw;
        saw_corrected |= res.status == ReadStatus::Corrected;
    }
    EXPECT_TRUE(saw_corrected) << "aging never produced bit errors";
    EXPECT_GT(last_raw, 12u) << "frame never exceeded the max code";

    // Past the strength limit, the failure must be *flagged*.
    ctrl.writePageReal({0, 0, 0}, strong, data.data());
    const auto res = ctrl.readPageReal({0, 0, 0}, strong, out.data());
    EXPECT_EQ(res.status, ReadStatus::Uncorrectable);
}

TEST(RealPathAgingTest, StrongerDescriptorOutlivesWeaker)
{
    // The same physical frame age: a t=12 descriptor keeps the page
    // readable strictly longer than t=1 (Figure 6(b)'s premise, here
    // on the real codec rather than the analytic model).
    WearParams wp;
    wp.nominalCycles = 100;
    wp.sigmaDecades = 0.8;
    CellLifetimeModel model(wp);

    auto erases_until_unreadable = [&](std::uint8_t t) {
        FlashDevice dev(tinyGeom(), FlashTiming(), model, 9, 0.0, true);
        FlashMemoryController ctrl(dev);
        std::vector<std::uint8_t> data(2048, 0xA5), out(2048);
        const PageDescriptor desc{t, DensityMode::MLC};
        for (int age = 1; age < 60000; ++age) {
            dev.eraseBlock(1);
            ctrl.writePageReal({1, 0, 0}, desc, data.data());
            const auto res = ctrl.readPageReal({1, 0, 0}, desc,
                                               out.data());
            if (res.status == ReadStatus::Uncorrectable)
                return age;
        }
        return 60000;
    };
    const int weak = erases_until_unreadable(1);
    const int strong = erases_until_unreadable(12);
    EXPECT_GT(strong, weak);
}

TEST(SystemDeterminismTest, SameSeedSameResults)
{
    auto run = [] {
        SystemConfig cfg;
        cfg.dramBytes = mib(8);
        cfg.flashBytes = mib(16);
        cfg.seed = 77;
        SystemSimulator sim(cfg);
        auto gen = makeMacro(macroConfig("Financial1", 0.02));
        sim.run(*gen, 50000);
        return std::tuple(sim.stats().wallClock,
                          sim.disk().accesses(),
                          sim.flashCache()->stats().gcRuns,
                          sim.flashCache()->validPages());
    };
    EXPECT_EQ(run(), run());
}

TEST(SystemEnergyTest, WallClockBoundsDeviceBusyTime)
{
    SystemConfig cfg;
    cfg.dramBytes = mib(8);
    cfg.flashBytes = mib(16);
    cfg.seed = 5;
    SystemSimulator sim(cfg);
    auto gen = makeMacro(macroConfig("dbt2", 0.02));
    sim.run(*gen, 100000);

    const Seconds wall = sim.stats().wallClock;
    EXPECT_GE(wall, sim.disk().busyTime() - 1e-9);
    EXPECT_GE(wall, sim.dram().readBusyTime() +
                    sim.dram().writeBusyTime() - 1e-9);

    // Power = energy / wall is internally consistent per component.
    const PowerReport p = sim.powerReport();
    const DramEnergy de = sim.dram().energyOver(wall);
    EXPECT_NEAR(p.memRead + p.memWrite + p.memIdle, de.total() / wall,
                1e-9);
    EXPECT_NEAR(p.disk, sim.disk().energyOver(wall) / wall, 1e-9);
    EXPECT_GT(p.total(), 0.0);
}

TEST(FullStackTest, EveryMacroWorkloadRunsClean)
{
    for (const auto& mc : table4MacroConfigs(0.01)) {
        SystemConfig cfg;
        cfg.dramBytes = mib(4);
        cfg.flashBytes = mib(8);
        cfg.seed = 11;
        SystemSimulator sim(cfg);
        auto gen = makeMacro(mc);
        sim.run(*gen, 40000);
        sim.flashCache()->checkInvariants();
        const double mr = sim.flashCache()->stats().fgst.reads.missRate();
        EXPECT_GE(mr, 0.0) << mc.name;
        EXPECT_LE(mr, 1.0) << mc.name;
        EXPECT_GT(sim.stats().throughput(), 0.0) << mc.name;
    }
}

TEST(FullStackTest, FlushedDataNeverLostOnCleanShutdown)
{
    // Every LBA ever written must reach the disk by shutdown (flush
    // or earlier eviction); with no wear, nothing may be lost.
    class RecordingDisk : public BackingStore
    {
      public:
        Seconds read(Lba) override { return milliseconds(4.2); }
        Seconds
        write(Lba lba) override
        {
            persisted.insert(lba);
            return milliseconds(4.2);
        }
        std::set<Lba> persisted;
    };

    CellLifetimeModel lifetime;
    const FlashGeometry geom = FlashGeometry::forMlcCapacity(mib(4));
    FlashDevice device(geom, FlashTiming(), lifetime, 3);
    FlashMemoryController controller(device);
    RecordingDisk disk;
    FlashCache cache(controller, disk);

    Rng rng(19);
    std::set<Lba> written;
    for (int i = 0; i < 30000; ++i) {
        const Lba lba = rng.uniformInt(3000);
        if (rng.bernoulli(0.5)) {
            cache.write(lba);
            written.insert(lba);
        } else {
            cache.read(lba);
        }
    }
    cache.flushAll();
    EXPECT_EQ(cache.stats().dataLossPages, 0u);
    for (const Lba lba : written)
        EXPECT_TRUE(disk.persisted.count(lba)) << lba;
}

} // namespace
} // namespace flashcache
