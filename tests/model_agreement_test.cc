/**
 * @file
 * Agreement tests between independently implemented layers of the
 * model stack: the sampled per-page error process must match the
 * analytic cell-failure CDF it is drawn from; the controller's
 * latency must decompose exactly into its device + ECC parts; the
 * workload generators must be deterministic and respect their
 * structural bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "controller/memory_controller.hh"
#include "reliability/page_health.hh"
#include "util/stats.hh"
#include "workload/macro.hh"

namespace flashcache {
namespace {

/** Sampled error counts vs the analytic binomial mean, over ages. */
class HealthAgreement : public ::testing::TestWithParam<double>
{
};

TEST_P(HealthAgreement, MeanErrorsMatchAnalyticExpectation)
{
    const double log10_cycles = GetParam();
    const double cycles = std::pow(10.0, log10_cycles);
    CellLifetimeModel model;
    const unsigned bits = 16896;

    Rng rng(101);
    RunningStat sampled;
    const int pages = 2500;
    for (int i = 0; i < pages; ++i) {
        PageHealth ph(model, rng, bits, 16);
        sampled.add(ph.hardErrors(cycles));
    }
    const double analytic = bits * model.cellFailProb(cycles);
    if (analytic < 0.01) {
        EXPECT_LT(sampled.mean(), 0.05);
    } else {
        // Within 3 standard errors of the binomial mean (the tracked
        // set truncates above 16, which only matters much later).
        const double se = std::sqrt(analytic / pages) + 0.02 * analytic;
        EXPECT_NEAR(sampled.mean(), analytic, 3.0 * se + 0.02)
            << "at 10^" << log10_cycles << " cycles";
    }
}

INSTANTIATE_TEST_SUITE_P(AgeSweep, HealthAgreement,
                         ::testing::Values(4.0, 4.5, 5.0, 5.3));

TEST(ControllerTimingContract, ReadLatencyDecomposesExactly)
{
    CellLifetimeModel m;
    FlashGeometry g;
    g.numBlocks = 2;
    g.framesPerBlock = 2;
    FlashDevice dev(g, FlashTiming(), m, 5);
    FlashMemoryController ctrl(dev);

    for (std::uint8_t t : {0, 1, 6, 12}) {
        PageDescriptor desc{t, DensityMode::MLC};
        const PageAddress a{0, 0, 0};
        ctrl.writePage(a, desc);
        const auto res = ctrl.readPage(a, desc);
        EXPECT_DOUBLE_EQ(res.latency,
                         FlashTiming().mlcReadLatency +
                             ctrl.decodeLatency(t))
            << "t=" << unsigned(t);
        dev.eraseBlock(0);
    }
}

TEST(ControllerTimingContract, DecodeLatencyMatchesTimingModel)
{
    CellLifetimeModel m;
    FlashGeometry g;
    g.numBlocks = 2;
    g.framesPerBlock = 2;
    FlashDevice dev(g, FlashTiming(), m, 5);
    EccTimingModel timing;
    FlashMemoryController ctrl(dev, timing);
    for (unsigned t = 0; t <= 50; t += 5) {
        EXPECT_DOUBLE_EQ(ctrl.decodeLatency(t),
                         timing.decodeLatency(t).total() +
                             timing.crcLatency());
    }
}

TEST(WorkloadDeterminism, SameSeedSameTrace)
{
    for (const auto& cfg : table4MacroConfigs(0.01)) {
        auto g1 = makeMacro(cfg);
        auto g2 = makeMacro(cfg);
        Rng r1(42), r2(42);
        const Trace t1 = g1->generate(r1, 2000);
        const Trace t2 = g2->generate(r2, 2000);
        EXPECT_EQ(t1, t2) << cfg.name;
    }
}

TEST(WorkloadDeterminism, DifferentSeedsDiffer)
{
    const MacroConfig cfg = macroConfig("dbt2", 0.01);
    auto g1 = makeMacro(cfg);
    auto g2 = makeMacro(cfg);
    Rng r1(1), r2(2);
    EXPECT_NE(g1->generate(r1, 500), g2->generate(r2, 500));
}

TEST(WorkloadStructure, SequentialRunsBounded)
{
    // The geometric run-length sampler caps at 64 pages.
    MacroConfig cfg = macroConfig("SPECWeb99", 0.01);
    cfg.seqRunMean = 16.0;
    MacroWorkload gen(cfg);
    Rng rng(3);
    Lba prev = ~0ull;
    int run = 1, max_run = 1;
    for (int i = 0; i < 50000; ++i) {
        const TraceRecord r = gen.next(rng);
        if (!r.isWrite && r.lba == prev + 1)
            max_run = std::max(max_run, ++run);
        else
            run = 1;
        prev = r.lba;
    }
    EXPECT_GT(max_run, 8);
    EXPECT_LE(max_run, 80); // 64-page cap plus chance adjacency
}

TEST(WorkloadStructure, WriteRangeFractionRespected)
{
    MacroConfig cfg = macroConfig("dbt2", 0.01);
    cfg.writeOverlap = 0.0; // all writes to the dedicated range
    MacroWorkload gen(cfg);
    Rng rng(4);
    for (int i = 0; i < 20000; ++i) {
        const TraceRecord r = gen.next(rng);
        if (r.isWrite) {
            EXPECT_GE(r.lba, cfg.readPages);
            EXPECT_LT(r.lba, cfg.readPages + cfg.writeRangePages());
        } else if (gen.config().seqRunMean <= 1.0) {
            EXPECT_LT(r.lba, cfg.readPages);
        }
    }
}

TEST(DeviceEnergyContract, EnergyEqualsPowerTimesBusy)
{
    CellLifetimeModel m;
    FlashGeometry g;
    g.numBlocks = 4;
    g.framesPerBlock = 4;
    FlashDevice dev(g, FlashTiming(), m, 9);
    for (int i = 0; i < 8; ++i) {
        dev.programPage({0, static_cast<std::uint16_t>(i / 2),
                         static_cast<std::uint8_t>(i % 2)});
    }
    dev.eraseBlock(0);
    const auto& st = dev.stats();
    EXPECT_NEAR(st.activeEnergy,
                st.busyTime * FlashTiming().activePower, 1e-15);
}

} // namespace
} // namespace flashcache
