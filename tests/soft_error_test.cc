/**
 * @file
 * Transient (soft) error tests: injection statistics, ECC masking,
 * driver retry on transient overflows, and the "fail consistently"
 * guard that keeps soft errors from permanently reconfiguring pages.
 */

#include <gtest/gtest.h>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 8;
    return g;
}

TEST(SoftErrorTest, RateZeroIsCleanOnFreshDevice)
{
    CellLifetimeModel m;
    FlashDevice dev(smallGeom(), FlashTiming(), m, 1);
    dev.programPage({0, 0, 0});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dev.readPage({0, 0, 0}).hardBitErrors, 0u);
}

TEST(SoftErrorTest, MeanMatchesConfiguredRate)
{
    CellLifetimeModel m;
    FlashDevice dev(smallGeom(), FlashTiming(), m, 2);
    const double rate = 1e-5; // per bit per read
    dev.setSoftErrorRate(rate);
    dev.programPage({0, 0, 0});

    double total = 0.0;
    const int reads = 4000;
    for (int i = 0; i < reads; ++i)
        total += dev.readPage({0, 0, 0}).hardBitErrors;
    // MLC doubles the exposure: expect 2 * rate * page_bits.
    const double expect = 2.0 * rate * smallGeom().pageBits();
    EXPECT_NEAR(total / reads, expect, 0.1 * expect + 0.02);
}

TEST(SoftErrorTest, SlcSeesHalfTheMlcRate)
{
    CellLifetimeModel m;
    FlashDevice dev(smallGeom(), FlashTiming(), m, 3);
    dev.setSoftErrorRate(2e-5);
    for (std::uint16_t f = 0; f < 8; ++f)
        dev.requestFrameMode(1, f, DensityMode::SLC);
    dev.eraseBlock(1);
    dev.programPage({0, 0, 0}); // MLC
    dev.programPage({1, 0, 0}); // SLC

    double mlc = 0.0, slc = 0.0;
    for (int i = 0; i < 4000; ++i) {
        mlc += dev.readPage({0, 0, 0}).hardBitErrors;
        slc += dev.readPage({1, 0, 0}).hardBitErrors;
    }
    EXPECT_NEAR(slc / mlc, 0.5, 0.15);
}

TEST(SoftErrorTest, EccMasksTransientsWithoutDataLoss)
{
    // Soft errors within the code strength must be invisible to the
    // cache: hits keep succeeding and nothing is lost or retired.
    CellLifetimeModel m;
    FlashDevice dev(smallGeom(), FlashTiming(), m, 4);
    dev.setSoftErrorRate(5e-5); // ~1.7 expected flips per MLC read
    FlashMemoryController ctrl(dev);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.initialEccStrength = 8;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Lba l = rng.uniformInt(64);
        if (rng.bernoulli(0.3))
            cache.write(l);
        else
            cache.read(l);
    }
    EXPECT_EQ(cache.stats().dataLossPages, 0u);
    EXPECT_EQ(cache.stats().retiredBlocks, 0u);
    // The controller did real correction work.
    EXPECT_GT(ctrl.stats().correctedReads, 1000u);
    cache.checkInvariants();
}

TEST(SoftErrorTest, TransientsDoNotPermanentlyReconfigure)
{
    // With a soft-error rate that regularly reaches the strength,
    // the "fail consistently" confirmation against the medium keeps
    // ECC strengths where they are (fresh cells, no wear).
    WearParams no_wear;
    no_wear.nominalCycles = 1e9; // fresh cells throughout
    CellLifetimeModel m(no_wear);
    FlashDevice dev(smallGeom(), FlashTiming(), m, 6);
    dev.setSoftErrorRate(4e-5);
    FlashMemoryController ctrl(dev);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.initialEccStrength = 2; // spikes past 2 bits are common
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Lba l = rng.uniformInt(64);
        if (rng.bernoulli(0.2))
            cache.write(l);
        else
            cache.read(l);
    }
    EXPECT_EQ(cache.stats().eccReconfigs, 0u);
    EXPECT_EQ(cache.stats().densityReconfigs, 0u);
}

TEST(SoftErrorTest, RetryRecoversTransientOverflows)
{
    // Spikes occasionally exceed even a strong code; the driver's
    // re-read almost always recovers, so data loss stays at zero.
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel m(no_wear);
    FlashDevice dev(smallGeom(), FlashTiming(), m, 8);
    dev.setSoftErrorRate(1.2e-4); // ~4 expected flips per MLC read
    FlashMemoryController ctrl(dev);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.initialEccStrength = 10;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    Rng rng(9);
    for (int i = 0; i < 30000; ++i) {
        const Lba l = rng.uniformInt(64);
        if (rng.bernoulli(0.2))
            cache.write(l);
        else
            cache.read(l);
    }
    // Overflows happened at the controller...
    EXPECT_GT(ctrl.stats().uncorrectableReads, 0u);
    // ...but the retry path kept the cache's losses at zero.
    EXPECT_EQ(cache.stats().dataLossPages, 0u);
    cache.checkInvariants();
}

} // namespace
} // namespace flashcache
