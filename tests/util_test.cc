/**
 * @file
 * Unit tests for the util substrate: statistics accumulators,
 * histograms, leveled logging, and the numeric helpers backing the
 * reliability model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/atomic_file.hh"
#include "util/log.hh"
#include "util/mathx.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace flashcache {
namespace {

TEST(UnitsTest, ConvertsToSeconds)
{
    EXPECT_DOUBLE_EQ(nanoseconds(50), 50e-9);
    EXPECT_DOUBLE_EQ(microseconds(25), 25e-6);
    EXPECT_DOUBLE_EQ(milliseconds(1.5), 1.5e-3);
    EXPECT_EQ(kib(2), 2048u);
    EXPECT_EQ(mib(1), 1048576u);
    EXPECT_EQ(gib(2), 2ull << 30);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RatioStatTest, Rates)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.missRate(), 0.0);
    for (int i = 0; i < 3; ++i)
        r.hit();
    r.miss();
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.missRate(), 0.25);
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.75);
}

TEST(HistogramTest, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(-3.0);  // clamps into bin 0
    h.add(42.0);  // clamps into last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(HistogramTest, Percentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
}

TEST(HistogramTest, EmptyPercentileIsRangeLow)
{
    Histogram h(2.0, 10.0, 4);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);
}

TEST(HistogramTest, SingleBinPercentiles)
{
    // One bin: every sample lands in [0, 8); every percentile is the
    // bin's upper edge, which must equal the range's upper edge.
    Histogram h(0.0, 8.0, 1);
    h.add(3.0);
    h.add(7.9);
    h.add(100.0); // clamped into the only bin
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(HistogramTest, BinEdgesComeFromIndexNotTruncation)
{
    // binLo takes the bin index; a fractional-looking range must not
    // truncate edges (the pre-fix signature took the index as a
    // double and was called with values it silently floored).
    Histogram h(0.25, 2.25, 4); // width 0.5
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.25);
    EXPECT_DOUBLE_EQ(h.binLo(1), 0.75);
    EXPECT_DOUBLE_EQ(h.binLo(3), 1.75);
    EXPECT_DOUBLE_EQ(h.binLo(4), 2.25); // upper range edge
    h.add(1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.25); // upper edge of bin 1
}

TEST(HistogramTest, AllMassInLastBinPercentile)
{
    Histogram h(0.0, 4.0, 4);
    h.add(3.5);
    h.add(9.0); // clamped into the last bin
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(LogTest, LevelFiltersAndSinkReceives)
{
    std::vector<std::pair<LogLevel, std::string>> got;
    setLogSink([&](LogLevel lv, const std::string& m) {
        got.emplace_back(lv, m);
    });
    setLogLevel(LogLevel::Warn);
    debug("d");
    inform("i");
    warn("w");
    error("e");
    setLogLevel(LogLevel::Debug);
    debug("d2");
    // Restore defaults for the other tests.
    setLogSink(nullptr);
    setLogLevel(LogLevel::Info);

    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], std::make_pair(LogLevel::Warn, std::string("w")));
    EXPECT_EQ(got[1], std::make_pair(LogLevel::Error, std::string("e")));
    EXPECT_EQ(got[2], std::make_pair(LogLevel::Debug, std::string("d2")));
}

TEST(LogTest, SetVerboseMapsToLevels)
{
    setVerbose(true);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setVerbose(false);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Info); // restore default
}

TEST(MathxTest, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normalCdf(-1.96), 0.024997895, 1e-6);
}

TEST(MathxTest, NormalCdfInvRoundTrip)
{
    for (double p : {1e-6, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6}) {
        const double x = normalCdfInv(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-9) << "p = " << p;
    }
}

TEST(MathxTest, LogChoose)
{
    EXPECT_NEAR(logChoose(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(logChoose(52, 5), std::log(2598960.0), 1e-9);
    EXPECT_EQ(logChoose(3, 7), -std::numeric_limits<double>::infinity());
}

TEST(MathxTest, BinomialTailMatchesDirectSum)
{
    // Small case computable exactly: n = 10, p = 0.3, P(X > 2).
    const double p = 0.3;
    double direct = 0.0;
    for (unsigned k = 3; k <= 10; ++k) {
        direct += std::exp(logChoose(10, k)) * std::pow(p, k) *
            std::pow(1 - p, 10 - k);
    }
    EXPECT_NEAR(binomialTailAbove(10, p, 2), direct, 1e-12);
}

TEST(MathxTest, BinomialTailEdgeCases)
{
    EXPECT_DOUBLE_EQ(binomialTailAbove(100, 0.0, 0), 0.0);
    EXPECT_DOUBLE_EQ(binomialTailAbove(100, 1.0, 99), 1.0);
    EXPECT_DOUBLE_EQ(binomialTailAbove(100, 1.0, 100), 0.0);
    EXPECT_DOUBLE_EQ(binomialTailAbove(100, 0.5, 100), 0.0);
}

TEST(MathxTest, BinomialTailMonotoneInThreshold)
{
    double prev = 1.0;
    for (unsigned t = 0; t < 12; ++t) {
        const double v = binomialTailAbove(16384, 1e-4, t);
        EXPECT_LE(v, prev);
        prev = v;
    }
}

TEST(AtomicFileTest, WritesAndReplacesWholeFiles)
{
    const std::string path =
        ::testing::TempDir() + "atomic_file_test.bin";
    std::remove(path.c_str());

    ASSERT_TRUE(atomicWriteFile(
        path, [](std::ostream& os) { os << "first version"; }));
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_EQ(ss.str(), "first version");
    }

    // Replacement is all-or-nothing: the new contents land whole.
    ASSERT_TRUE(atomicWriteFile(
        path, [](std::ostream& os) { os << "v2"; }));
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_EQ(ss.str(), "v2");
    }
    // No temporary left behind.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(AtomicFileTest, FailedWriteLeavesOriginalIntact)
{
    const std::string path =
        ::testing::TempDir() + "atomic_file_keep.bin";
    ASSERT_TRUE(atomicWriteFile(
        path, [](std::ostream& os) { os << "precious"; }));

    // A writer that poisons the stream: the replace must not happen.
    EXPECT_FALSE(atomicWriteFile(path, [](std::ostream& os) {
        os << "torn";
        os.setstate(std::ios::failbit);
    }));
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "precious");
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableDirectoryFails)
{
    EXPECT_FALSE(atomicWriteFile(
        "/nonexistent-dir-xyz/file.bin",
        [](std::ostream& os) { os << "x"; }));
}

} // namespace
} // namespace flashcache
