/**
 * @file
 * Real-data mode tests: page payloads flow through the entire stack
 * (cache -> controller -> real BCH/CRC codec -> device) with
 * physically injected bit errors. The headline property: every byte
 * read through the cache equals the last byte written for that LBA,
 * across GC relocations, evictions, hot migrations, reconfiguration
 * and flushes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

constexpr std::uint32_t kPage = 2048;

/** In-memory "disk" that stores page payloads. */
class MemoryDisk : public PayloadBackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }

    Seconds
    readData(Lba lba, std::uint8_t* out) override
    {
        const auto it = pages_.find(lba);
        if (it == pages_.end())
            std::memset(out, 0, kPage);
        else
            std::memcpy(out, it->second.data(), kPage);
        return milliseconds(4.2);
    }

    Seconds
    writeData(Lba lba, const std::uint8_t* data) override
    {
        pages_[lba].assign(data, data + kPage);
        return milliseconds(4.2);
    }

    std::map<Lba, std::vector<std::uint8_t>> pages_;
};

/** Deterministic page contents: a function of LBA and version.
 *  Version 0 is the never-written page: all zeroes, matching what
 *  the MemoryDisk serves for unknown LBAs. */
std::vector<std::uint8_t>
pageContent(Lba lba, std::uint32_t version)
{
    std::vector<std::uint8_t> v(kPage);
    if (version == 0)
        return v;
    Rng rng(lba * 2654435761u + version);
    for (auto& b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return v;
}

struct RealStack
{
    explicit RealStack(std::uint32_t blocks, const WearParams& wp,
                       FlashCacheConfig cfg = FlashCacheConfig(),
                       double soft_rate = 0.0)
        : lifetime(wp)
    {
        FlashGeometry g;
        g.numBlocks = blocks;
        g.framesPerBlock = 4;
        device = std::make_unique<FlashDevice>(g, FlashTiming(),
                                               lifetime, 2024, 0.0,
                                               /*store_data=*/true);
        device->setSoftErrorRate(soft_rate);
        controller = std::make_unique<FlashMemoryController>(*device);
        cfg.realData = true;
        cache = std::make_unique<FlashCache>(*controller, disk, cfg);
    }

    CellLifetimeModel lifetime;
    std::unique_ptr<FlashDevice> device;
    std::unique_ptr<FlashMemoryController> controller;
    MemoryDisk disk;
    std::unique_ptr<FlashCache> cache;
};

TEST(RealDataCacheTest, ReadBackAfterWrite)
{
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    RealStack s(8, no_wear);

    const auto content = pageContent(5, 1);
    s.cache->writeData(5, content.data());
    std::vector<std::uint8_t> out(kPage);
    const auto r = s.cache->readData(5, out.data());
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(out, content);
}

TEST(RealDataCacheTest, MissFetchesFromDisk)
{
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    RealStack s(8, no_wear);

    const auto content = pageContent(9, 3);
    s.disk.pages_[9].assign(content.begin(), content.end());

    std::vector<std::uint8_t> out(kPage);
    const auto miss = s.cache->readData(9, out.data());
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(out, content);
    // Second read is a flash hit with the same bytes.
    std::fill(out.begin(), out.end(), 0);
    const auto hit = s.cache->readData(9, out.data());
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(out, content);
}

TEST(RealDataCacheTest, FlushPersistsPayloads)
{
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    RealStack s(8, no_wear);

    const auto a = pageContent(1, 1);
    const auto b = pageContent(2, 1);
    s.cache->writeData(1, a.data());
    s.cache->writeData(2, b.data());
    s.cache->flushAll();
    ASSERT_TRUE(s.disk.pages_.count(1));
    ASSERT_TRUE(s.disk.pages_.count(2));
    EXPECT_EQ(s.disk.pages_[1], a);
    EXPECT_EQ(s.disk.pages_[2], b);
}

TEST(RealDataCacheTest, IntegrityAcrossGcEvictionAndMigration)
{
    // The big one: a randomized workload small enough to churn
    // through GC, evictions and hot migrations; after every read the
    // returned bytes must match the newest version of that page.
    WearParams mild;
    mild.nominalCycles = 1e6;
    FlashCacheConfig cfg;
    cfg.accessSaturation = 12; // exercise hot migration too
    RealStack s(8, mild, cfg);

    Rng rng(7);
    std::map<Lba, std::uint32_t> version;
    std::vector<std::uint8_t> out(kPage);
    for (int i = 0; i < 2500; ++i) {
        const Lba lba = rng.uniformInt(80);
        if (rng.bernoulli(0.5)) {
            const std::uint32_t v = ++version[lba];
            s.cache->writeData(lba, pageContent(lba, v).data());
        } else {
            const auto r = s.cache->readData(lba, out.data());
            (void)r;
            const std::uint32_t v = version.count(lba) ? version[lba]
                                                       : 0;
            ASSERT_EQ(out, pageContent(lba, v))
                << "lba " << lba << " iteration " << i;
        }
    }
    EXPECT_GT(s.cache->stats().gcRuns + s.cache->stats().evictions, 0u);
    EXPECT_EQ(s.cache->stats().dataLossPages, 0u);
    s.cache->checkInvariants();

    // Shutdown: everything written must be on disk, bit exact.
    s.cache->flushAll();
    for (const auto& [lba, v] : version)
        EXPECT_EQ(s.disk.pages_[lba], pageContent(lba, v)) << lba;
}

TEST(RealDataCacheTest, IntegrityUnderSoftErrors)
{
    // Transient bit flips on every read; the BCH+CRC pipeline and
    // the retry path must keep payloads bit-exact.
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    FlashCacheConfig cfg;
    cfg.initialEccStrength = 6;
    cfg.hotPageMigration = false;
    RealStack s(8, no_wear, cfg, /*soft_rate=*/3e-5);

    Rng rng(11);
    std::map<Lba, std::uint32_t> version;
    std::vector<std::uint8_t> out(kPage);
    unsigned corrected_before = 0;
    for (int i = 0; i < 800; ++i) {
        const Lba lba = rng.uniformInt(40);
        if (rng.bernoulli(0.4)) {
            const std::uint32_t v = ++version[lba];
            s.cache->writeData(lba, pageContent(lba, v).data());
        } else {
            s.cache->readData(lba, out.data());
            const std::uint32_t v = version.count(lba) ? version[lba]
                                                       : 0;
            ASSERT_EQ(out, pageContent(lba, v)) << lba;
        }
    }
    corrected_before = static_cast<unsigned>(
        s.controller->stats().correctedReads);
    EXPECT_GT(corrected_before, 50u) << "soft errors never exercised ECC";
}

TEST(RealDataCacheTest, ModeMismatchIsFatal)
{
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    // realData without store_data device must fail fast.
    CellLifetimeModel lifetime(no_wear);
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 4;
    FlashDevice dev(g, FlashTiming(), lifetime, 1); // no store_data
    FlashMemoryController ctrl(dev);
    MemoryDisk disk;
    FlashCacheConfig cfg;
    cfg.realData = true;
    EXPECT_DEATH({ FlashCache cache(ctrl, disk, cfg); },
                 "store_data");

    // And plain-mode caches reject the data entry points.
    FlashDevice dev2(g, FlashTiming(), lifetime, 1, 0.0, true);
    FlashMemoryController ctrl2(dev2);
    FlashCache plain(ctrl2, disk); // realData defaults to false
    std::vector<std::uint8_t> buf(kPage);
    EXPECT_DEATH(plain.readData(1, buf.data()), "realData");
}

} // namespace
} // namespace flashcache
