/**
 * @file
 * Observability coverage: the JSON writer/parser round-trip, the
 * metric registry (registration, composite expansion, stable JSON
 * schema and key order, the gem5-style text dump), the
 * request-lifecycle tracer (clock, nesting, ring wrap), the Chrome
 * trace exporter (well-formed, monotone, properly nested), and the
 * shared --stats-json/--trace-out flag parsing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cli.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/system_sim.hh"
#include "ssd/ftl.hh"
#include "util/rng.hh"
#include "workload/synthetic.hh"

namespace flashcache {
namespace obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, CompactNestedDocument)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.member("a", std::uint64_t(1));
        w.key("b");
        w.beginArray();
        w.value(2.5);
        w.value("x");
        w.value(true);
        w.nullValue();
        w.endArray();
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[2.5,\"x\",true,null]}");
}

TEST(JsonWriterTest, IntegralDoublesPrintWithoutExponent)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginArray();
        w.value(20000.0);
        w.value(0.125);
        w.endArray();
    }
    EXPECT_EQ(os.str(), "[20000,0.125]");
}

TEST(JsonWriterTest, EscapesControlAndQuote)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.value(std::string_view("a\"b\\c\n\t"));
    }
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonParseTest, RoundTripPreservesKeyOrder)
{
    const std::string doc =
        "{\"zeta\": 1, \"alpha\": [true, null, \"s\"],"
        " \"mid\": {\"x\": -2.5e2}}";
    const auto v = parseJson(doc);
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->keys(),
              (std::vector<std::string>{"zeta", "alpha", "mid"}));
    EXPECT_DOUBLE_EQ(v->find("zeta")->number, 1.0);
    ASSERT_TRUE(v->find("alpha")->isArray());
    EXPECT_TRUE(v->find("alpha")->array[1].isNull());
    EXPECT_EQ(v->find("alpha")->array[2].str, "s");
    EXPECT_DOUBLE_EQ(v->find("mid")->find("x")->number, -250.0);
}

TEST(JsonParseTest, UnicodeEscapeDecodes)
{
    const auto v = parseJson("\"\\u0041\\u00e9\"");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->str, "A\xC3\xA9");
}

TEST(JsonParseTest, RejectsMalformed)
{
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", &err).has_value());
    EXPECT_FALSE(parseJson("{} trailing", &err).has_value());
    EXPECT_FALSE(parseJson("[1,]", &err).has_value());
    EXPECT_FALSE(parseJson("", &err).has_value());
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep, &err).has_value());
}

// ------------------------------------------------------------- Registry

TEST(MetricRegistryTest, CountersGaugesAndValue)
{
    std::uint64_t hits = 7;
    double busy = 1.5;
    MetricRegistry reg;
    reg.counter("t.hits", "hits", &hits);
    reg.counter("t.busy", "busy seconds", &busy);
    reg.gauge("t.rate", "hits per busy", [&] { return hits / busy; });

    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.has("t.hits"));
    EXPECT_FALSE(reg.has("t.nope"));
    EXPECT_DOUBLE_EQ(reg.value("t.hits"), 7.0);
    hits = 8; // live pointer, not a copy
    EXPECT_DOUBLE_EQ(reg.value("t.hits"), 8.0);
    EXPECT_DOUBLE_EQ(reg.value("t.busy"), 1.5);
    EXPECT_DOUBLE_EQ(reg.value("t.rate"), 8.0 / 1.5);
}

TEST(MetricRegistryTest, RatioExpandsToThreeMetrics)
{
    RatioStat r;
    r.hit();
    r.hit();
    r.miss();
    MetricRegistry reg;
    reg.ratio("t.read", "test reads", &r);
    EXPECT_DOUBLE_EQ(reg.value("t.read_hits"), 2.0);
    EXPECT_DOUBLE_EQ(reg.value("t.read_misses"), 1.0);
    EXPECT_NEAR(reg.value("t.read_hit_rate"), 2.0 / 3.0, 1e-12);
}

TEST(MetricRegistryDeathTest, DuplicateNameIsFatal)
{
    std::uint64_t v = 0;
    MetricRegistry reg;
    reg.counter("t.dup", "first", &v);
    EXPECT_DEATH(reg.counter("t.dup", "second", &v),
                 "duplicate metric");
}

TEST(MetricRegistryDeathTest, UnknownAndHistogramValueArePanics)
{
    Histogram h(0.0, 1.0, 4);
    MetricRegistry reg;
    reg.histogram("t.hist", "a histogram", &h);
    EXPECT_DEATH(reg.value("t.nope"), "unknown metric");
    EXPECT_DEATH(reg.value("t.hist"), "histogram");
}

TEST(MetricRegistryTest, JsonSchemaAndRegistrationOrder)
{
    std::uint64_t c = 42;
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.6);
    h.add(3.5);
    MetricRegistry reg;
    reg.counter("z.last_registered_first", "order check", &c);
    reg.gauge("a.gauge", "g", [] { return 1.25; });
    reg.histogram("m.hist", "latency", &h);

    std::ostringstream os;
    reg.toJson(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value()) << os.str();
    EXPECT_EQ(v->find("schema")->str, "flashcache-stats-v1");
    const JsonValue* m = v->find("metrics");
    ASSERT_NE(m, nullptr);
    // Key order is registration order, not alphabetical.
    EXPECT_EQ(m->keys(),
              (std::vector<std::string>{"z.last_registered_first",
                                        "a.gauge", "m.hist"}));
    EXPECT_DOUBLE_EQ(m->find("z.last_registered_first")->number, 42.0);
    const JsonValue* hist = m->find("m.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->number, 3.0);
    EXPECT_TRUE(hist->find("p50")->isNumber());
    EXPECT_TRUE(hist->find("p99")->isNumber());
    // Two occupied bins (two samples in [0,1), one in [3,4)).
    ASSERT_TRUE(hist->find("bins")->isArray());
    ASSERT_EQ(hist->find("bins")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(hist->find("bins")->array[0].array[2].number, 2.0);
}

TEST(MetricRegistryTest, TextDumpHasNameValueDesc)
{
    std::uint64_t c = 20000;
    MetricRegistry reg;
    reg.counter("t.requests", "requests served", &c);
    std::ostringstream os;
    reg.dumpText(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("t.requests"), std::string::npos);
    EXPECT_NE(s.find("20000"), std::string::npos); // integer, not 2e4
    EXPECT_NE(s.find("# requests served"), std::string::npos);
}

// --------------------------------------------------------------- Tracer

TEST(TracerTest, LeavesAdvanceTheClock)
{
    Tracer t(16);
    EXPECT_DOUBLE_EQ(t.now(), 0.0);
    t.leaf("a", "cat", 0.25);
    t.leaf("b", "cat", 0.5);
    EXPECT_DOUBLE_EQ(t.now(), 0.75);
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_DOUBLE_EQ(evs[0].start, 0.0);
    EXPECT_DOUBLE_EQ(evs[1].start, 0.25);
    EXPECT_DOUBLE_EQ(evs[1].dur, 0.5);
}

TEST(TracerTest, SpansNestAroundLeaves)
{
    Tracer t(16);
    t.leaf("pre", "c", 1.0);
    {
        SpanGuard outer(&t, "outer", "c");
        t.leaf("child1", "c", 0.5);
        {
            SpanGuard inner(&t, "inner", "c");
            t.leaf("child2", "c", 0.25);
        }
    }
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 5u); // pre, child1, child2, inner, outer
    const TraceEvent& outer = evs[4];
    const TraceEvent& inner = evs[3];
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(outer.depth, 0);
    EXPECT_EQ(inner.depth, 1);
    EXPECT_DOUBLE_EQ(outer.start, 1.0);
    EXPECT_DOUBLE_EQ(outer.dur, 0.75);
    // The inner span covers exactly its one leaf...
    EXPECT_DOUBLE_EQ(inner.start, 1.5);
    EXPECT_DOUBLE_EQ(inner.dur, 0.25);
    // ...and sits inside the outer span.
    EXPECT_GE(inner.start, outer.start);
    EXPECT_LE(inner.start + inner.dur, outer.start + outer.dur);
}

TEST(TracerTest, RingWrapsWithoutGrowingAndCountsDrops)
{
    Tracer t(4);
    for (int i = 0; i < 10; ++i)
        t.leaf("e", "c", 1.0);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-first: the four newest events survive, in order.
    for (std::size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].seq, 6u + i);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, NullTracerMacrosAreNoOps)
{
    Tracer* none = nullptr;
    FC_SPAN(none, "s", "c");
    FC_LEAF(none, "l", "c", 1.0);
    FC_INSTANT(none, "i", "c");
    SUCCEED();
}

/**
 * Chrome-trace validity: parse the export, then replay the events in
 * timestamp order against a span stack — every event must begin at
 * or after its enclosing span's begin and end at or before its end.
 */
void
expectValidChromeTrace(const std::string& text)
{
    std::string err;
    const auto v = parseJson(text, &err);
    ASSERT_TRUE(v.has_value()) << err;
    EXPECT_EQ(v->find("displayTimeUnit")->str, "ms");
    const JsonValue* evs = v->find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_TRUE(evs->isArray());
    ASSERT_FALSE(evs->array.empty());

    constexpr double kEps = 1e-6; // µs; absorbs float rounding
    double prev_ts = -1e300;
    std::vector<std::pair<double, double>> stack; // [begin, end)
    for (const JsonValue& e : evs->array) {
        EXPECT_EQ(e.find("ph")->str, "X");
        ASSERT_TRUE(e.find("name")->isString());
        const double ts = e.find("ts")->number;
        const double dur = e.find("dur")->number;
        EXPECT_GE(dur, 0.0);
        EXPECT_GE(ts, prev_ts) << "timestamps must be monotone";
        prev_ts = ts;
        while (!stack.empty() && ts >= stack.back().second - kEps)
            stack.pop_back();
        if (!stack.empty()) {
            EXPECT_LE(ts + dur, stack.back().second + kEps)
                << e.find("name")->str << " leaks out of its parent";
        }
        stack.push_back({ts, ts + dur});
    }
}

TEST(TracerTest, ExportIsWellFormedAndNested)
{
    Tracer t(64);
    {
        SpanGuard req(&t, "request", "sim");
        t.leaf("cpu", "cpu", 0.001);
        {
            SpanGuard rd(&t, "cache.read", "cache");
            t.leaf("flash.read", "flash", 0.0001);
            t.leaf("ecc.decode", "ecc", 0.00002);
        }
    }
    {
        SpanGuard req(&t, "request", "sim");
        t.instant("pdc.miss", "pdc");
        t.leaf("disk.fill", "disk", 0.004);
    }
    std::ostringstream os;
    t.exportChromeTrace(os);
    expectValidChromeTrace(os.str());
}

// ------------------------------------------------------------- CLI flags

TEST(CliOptionsTest, ParseStripsObsFlagsInPlace)
{
    char prog[] = "tool", cmd[] = "run", wl[] = "dbt2";
    char f1[] = "--stats-json", v1[] = "s.json";
    char f2[] = "--trace-out", v2[] = "t.json";
    char f3[] = "--trace-events", v3[] = "1024";
    char* argv[] = {prog, f1, v1, cmd, f2, v2, wl, f3, v3};
    int argc = 9;
    const CliOptions o = CliOptions::parse(argc, argv);
    EXPECT_EQ(o.statsJson, "s.json");
    EXPECT_EQ(o.traceOut, "t.json");
    EXPECT_EQ(o.traceEvents, 1024u);
    EXPECT_TRUE(o.wantStats());
    EXPECT_TRUE(o.wantTrace());
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "tool");
    EXPECT_STREQ(argv[1], "run");
    EXPECT_STREQ(argv[2], "dbt2");
}

TEST(CliOptionsTest, DefaultsAreOff)
{
    char prog[] = "tool";
    char* argv[] = {prog};
    int argc = 1;
    const CliOptions o = CliOptions::parse(argc, argv);
    EXPECT_FALSE(o.wantStats());
    EXPECT_FALSE(o.wantTrace());
    EXPECT_EQ(o.traceEvents, std::size_t(1) << 16);
    EXPECT_EQ(argc, 1);
}

// -------------------------------------- Uncorrectable-read accounting

/**
 * The three uncorrectable counters tell one story. The controller
 * counts every decode that exceeded the code strength; the cache
 * splits those into transient overflows its re-read recovered
 * (cache.ecc_retry_reads) and reads that stayed uncorrectable
 * (cache.uncorrectable). The invariant on the retry path:
 *
 *   ecc.uncorrectable_reads ==
 *       cache.uncorrectable + cache.ecc_retry_reads
 *
 * (a recovered retry contributes one controller uncorrectable and one
 * retry; an unrecovered one contributes two controller uncorrectables,
 * one retry and one cache uncorrectable; a persistent-wear failure
 * skips the retry and contributes one of each side).
 */
TEST(UncorrectableAccountingTest, CacheRetrySplitsControllerCount)
{
    class NullStore : public BackingStore
    {
      public:
        Seconds read(Lba) override { return milliseconds(4.2); }
        Seconds write(Lba) override { return milliseconds(4.2); }
    };

    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel m(no_wear);
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 8;
    FlashDevice dev(g, FlashTiming(), m, 8);
    dev.setSoftErrorRate(1.2e-4); // spikes past even strong codes
    FlashMemoryController ctrl(dev);
    NullStore store;
    FlashCacheConfig cfg;
    cfg.initialEccStrength = 10;
    cfg.hotPageMigration = false;
    FlashCache cache(ctrl, store, cfg);

    MetricRegistry reg;
    cache.registerMetrics(reg);
    ctrl.registerMetrics(reg);

    Rng rng(9);
    for (int i = 0; i < 30000; ++i) {
        const Lba l = rng.uniformInt(64);
        if (rng.bernoulli(0.2))
            cache.write(l);
        else
            cache.read(l);
    }

    // The workload actually exercised the retry path.
    EXPECT_GT(reg.value("ecc.uncorrectable_reads"), 0.0);
    EXPECT_GT(reg.value("cache.ecc_retry_reads"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("ecc.uncorrectable_reads"),
                     reg.value("cache.uncorrectable") +
                         reg.value("cache.ecc_retry_reads"));
    // The registry reads the same storage the stat structs expose.
    EXPECT_EQ(ctrl.stats().uncorrectableReads,
              cache.stats().uncorrectableReads +
                  cache.stats().eccRetryReads);
    cache.checkInvariants();
}

TEST(UncorrectableAccountingTest, FtlMatchesItsController)
{
    // The FTL has no retry path: every controller uncorrectable is an
    // FTL uncorrectable, one for one.
    WearParams no_wear;
    no_wear.nominalCycles = 1e9;
    CellLifetimeModel m(no_wear);
    FlashGeometry g;
    g.numBlocks = 8;
    g.framesPerBlock = 8;
    FlashDevice dev(g, FlashTiming(), m, 11);
    dev.setSoftErrorRate(1e-4); // ~3.4 flips/read vs strength 4
    FlashMemoryController ctrl(dev);
    FlashTranslationLayer ftl(ctrl, /*logical_pages=*/100,
                              /*ecc_strength=*/4);

    MetricRegistry reg;
    ftl.registerMetrics(reg);
    ctrl.registerMetrics(reg);

    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        const Lba l = rng.uniformInt(100);
        if (rng.bernoulli(0.4))
            ftl.write(l);
        else
            ftl.read(l);
    }
    EXPECT_GT(reg.value("ftl.uncorrectable"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("ftl.uncorrectable"),
                     reg.value("ecc.uncorrectable_reads"));
    ftl.checkInvariants();
}

// ----------------------------------------------------------- End-to-end

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.dramBytes = mib(4);
    cfg.flashBytes = mib(8);
    cfg.seed = 3;
    return cfg;
}

TEST(SystemObsTest, StatsJsonParsesWithStableSchema)
{
    SystemSimulator sim(smallConfig());
    SyntheticConfig wl;
    wl.workingSetPages = 2000;
    auto gen = makeSynthetic(wl);
    sim.run(*gen, 20000);

    std::ostringstream os;
    sim.writeStatsJson(os);
    std::string err;
    const auto v = parseJson(os.str(), &err);
    ASSERT_TRUE(v.has_value()) << err;
    EXPECT_EQ(v->find("schema")->str, "flashcache-stats-v1");
    const JsonValue* m = v->find("metrics");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->find("system.requests")->number, 20000.0);
    // Every layer contributes; spot-check one name per prefix.
    for (const char* key :
         {"system.request_latency", "pdc.read_hit_rate",
          "dram.read_busy", "disk.accesses", "flash.reads",
          "cache.read_hit_rate", "cache.write_amplification",
          "controller.reads", "ecc.corrected_read_rate",
          "power.total"}) {
        EXPECT_NE(m->find(key), nullptr) << key;
    }
    // Key order is exactly registration order: system.* leads.
    const auto keys = m->keys();
    ASSERT_GT(keys.size(), 4u);
    EXPECT_EQ(keys[0], "system.requests");

    // Re-export: byte-identical (the schema is deterministic).
    std::ostringstream os2;
    sim.writeStatsJson(os2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(SystemObsTest, EndToEndTraceValidates)
{
#if !FLASHCACHE_TRACING
    GTEST_SKIP() << "instrumentation compiled out (FLASHCACHE_TRACING=0)";
#endif
    SystemSimulator sim(smallConfig());
    sim.enableTracing(1u << 14);
    ASSERT_NE(sim.tracer(), nullptr);
    SyntheticConfig wl;
    wl.workingSetPages = 2000;
    auto gen = makeSynthetic(wl);
    sim.run(*gen, 5000);

    EXPECT_GT(sim.tracer()->recorded(), 5000u); // >= one span/request
    std::ostringstream os;
    sim.tracer()->exportChromeTrace(os);
    expectValidChromeTrace(os.str());
    // The request lifecycle actually shows up.
    const std::string s = os.str();
    for (const char* name :
         {"\"request\"", "\"cpu.compute\"", "\"dram.", "\"cache.read\"",
          "\"flash.read\"", "\"ecc.decode\"", "\"disk.fill\""}) {
        EXPECT_NE(s.find(name), std::string::npos) << name;
    }
}

TEST(SystemObsTest, DiskLeavesAccountForAllDiskBusyTime)
{
#if !FLASHCACHE_TRACING
    GTEST_SKIP() << "instrumentation compiled out (FLASHCACHE_TRACING=0)";
#endif
    // Every disk access — foreground fills and the background PDC
    // evict/flush write-backs — must emit a "disk"-category leaf, so
    // the trace totals reconcile against the device's busy counter.
    SystemConfig cfg;
    cfg.dramBytes = mib(4);
    cfg.flashBytes = 0; // disk-backed: all below-PDC traffic is disk
    cfg.seed = 11;
    SystemSimulator sim(cfg);
    sim.enableTracing(1u << 16);
    SyntheticConfig wl;
    wl.workingSetPages = 4000;
    wl.writeFraction = 0.4; // exercise the write-back paths
    auto gen = makeSynthetic(wl);
    sim.run(*gen, 3000);

    ASSERT_EQ(sim.tracer()->dropped(), 0u);
    Seconds disk_leaves = 0.0;
    std::uint64_t disk_count = 0;
    for (const TraceEvent& ev : sim.tracer()->events()) {
        if (std::string(ev.cat) == "disk") {
            disk_leaves += ev.dur;
            ++disk_count;
        }
    }
    EXPECT_GT(sim.stats().writebacks, 0u);
    EXPECT_EQ(disk_count, sim.disk().accesses());
    EXPECT_NEAR(disk_leaves, sim.disk().busyTime(),
                1e-9 * sim.disk().busyTime());
}

} // namespace
} // namespace obs
} // namespace flashcache
