/**
 * @file
 * Tests for the DRAM-resident management tables (FCHT/FBST) and the
 * generic LRU ordering.
 */

#include <gtest/gtest.h>

#include "core/lru.hh"
#include "core/tables.hh"
#include "util/rng.hh"

#include <unordered_map>

namespace flashcache {
namespace {

TEST(FchtTest, InsertFindErase)
{
    Fcht t(64);
    EXPECT_EQ(t.find(42), Fcht::npos);
    t.insert(42, 7);
    t.insert(43, 8);
    EXPECT_EQ(t.find(42), 7u);
    EXPECT_EQ(t.find(43), 8u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.erase(42));
    EXPECT_FALSE(t.erase(42));
    EXPECT_EQ(t.find(42), Fcht::npos);
    EXPECT_EQ(t.size(), 1u);
}

TEST(FchtTest, UpdateRedirects)
{
    Fcht t(8);
    t.insert(10, 1);
    t.update(10, 99);
    EXPECT_EQ(t.find(10), 99u);
}

TEST(FchtTest, DoubleInsertPanics)
{
    Fcht t(8);
    t.insert(5, 1);
    EXPECT_DEATH(t.insert(5, 2), "double insert");
}

TEST(FchtTest, UpdateMissingPanics)
{
    Fcht t(8);
    EXPECT_DEATH(t.update(5, 1), "missing LBA");
}

TEST(FchtTest, ManyEntriesAgainstReference)
{
    Fcht t(101); // non power of two buckets
    std::unordered_map<Lba, std::uint64_t> ref;
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Lba lba = rng.uniformInt(2000);
        const auto it = ref.find(lba);
        if (it == ref.end()) {
            t.insert(lba, i);
            ref[lba] = i;
        } else if (rng.bernoulli(0.5)) {
            t.update(lba, i);
            it->second = i;
        } else {
            t.erase(lba);
            ref.erase(it);
        }
    }
    EXPECT_EQ(t.size(), ref.size());
    for (const auto& [lba, id] : ref)
        EXPECT_EQ(t.find(lba), id);
}

TEST(FchtTest, ProbeLengthShrinksWithMoreBuckets)
{
    // Section 3.1: enough hash entries and lookups stay short.
    auto fill_probe = [](std::size_t buckets) {
        Fcht t(buckets);
        for (Lba l = 0; l < 4096; ++l)
            t.insert(l, l);
        for (Lba l = 0; l < 4096; ++l)
            t.find(l);
        return t.avgProbeLength();
    };
    const double p4 = fill_probe(4);
    const double p128 = fill_probe(128);
    const double p4096 = fill_probe(4096);
    EXPECT_GT(p4, p128);
    EXPECT_GT(p128, p4096);
    EXPECT_LT(p4096, 2.0);
}

TEST(FchtTest, FlatTableGrowsOnLoadFactor)
{
    // The open-addressed table must keep the load factor bounded by
    // growing, and every mapping must survive each rehash.
    Fcht t(4096);
    const std::size_t initial = t.slots();
    for (Lba l = 0; l < 10000; ++l)
        t.insert(l, l * 3);
    EXPECT_GT(t.slots(), initial);
    // Load factor stays below ~0.7 after growth.
    EXPECT_LT(10 * t.size(), 7 * t.slots() + 10);
    for (Lba l = 0; l < 10000; ++l)
        ASSERT_EQ(t.find(l), l * 3);
    EXPECT_EQ(t.buckets(), 4096u); // configured index width reported
}

TEST(FchtTest, EraseKeepsProbeRunsReachable)
{
    // Backward-shift deletion: removing an entry in the middle of a
    // probe run must not strand later entries of the run.
    Fcht t(1); // one home position: everything shares a single run
    for (Lba l = 0; l < 12; ++l)
        t.insert(l, 100 + l);
    for (Lba l = 0; l < 12; l += 2)
        EXPECT_TRUE(t.erase(l));
    for (Lba l = 1; l < 12; l += 2)
        EXPECT_EQ(t.find(l), 100 + l);
    for (Lba l = 0; l < 12; l += 2)
        EXPECT_EQ(t.find(l), Fcht::npos);
}

TEST(FchtTest, AutoModeMatchesChainedUnderChurn)
{
    // buckets == 0 selects auto mode (every slot a home position).
    // The mapping behaviour must stay identical to the seed chained
    // table through a churned insert/erase/update history.
    Fcht t(0);
    FchtChained oracle(64);
    Rng rng(11);
    for (int step = 0; step < 20000; ++step) {
        const Lba lba = rng.uniformInt(4096);
        const std::uint64_t page = 7'000'000 + step;
        if (t.find(lba) == Fcht::npos) {
            t.insert(lba, page);
            oracle.insert(lba, page);
        } else if (rng.uniformInt(2) == 0) {
            t.update(lba, page);
            oracle.update(lba, page);
        } else {
            EXPECT_TRUE(t.erase(lba));
            EXPECT_TRUE(oracle.erase(lba));
        }
    }
    ASSERT_EQ(t.size(), oracle.size());
    for (Lba l = 0; l < 4096; ++l)
        ASSERT_EQ(t.find(l), oracle.find(l));
    // Auto mode reports the slot count as its indexable width and
    // still keeps the load factor bounded.
    EXPECT_EQ(t.buckets(), t.slots());
    EXPECT_LT(10 * t.size(), 7 * t.slots() + 10);
}

TEST(FbstTest, WearOutCostFunction)
{
    FbstEntry e;
    e.totalEcc = 3;
    e.slcFrames = 2;
    // wear = N_erase + k1 * TotalECC + k2 * TotalSLC.
    EXPECT_DOUBLE_EQ(e.wearOut(100, 2.0, 40.0), 100 + 6.0 + 80.0);
    // k2 dominates k1: a density switch signals more wear.
    FbstEntry ecc_heavy;
    ecc_heavy.totalEcc = 2;
    FbstEntry slc_heavy;
    slc_heavy.slcFrames = 2;
    EXPECT_GT(slc_heavy.wearOut(0, 2.0, 40.0),
              ecc_heavy.wearOut(0, 2.0, 40.0));
}

TEST(LruListTest, OrderAndEviction)
{
    LruList<int> lru;
    EXPECT_TRUE(lru.empty());
    lru.touch(1);
    lru.touch(2);
    lru.touch(3);
    EXPECT_EQ(lru.lru(), 1);
    EXPECT_EQ(lru.mru(), 3);
    lru.touch(1); // 1 becomes MRU
    EXPECT_EQ(lru.lru(), 2);
    EXPECT_EQ(lru.popLru(), 2);
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_FALSE(lru.contains(2));
}

TEST(LruListTest, EraseAndInsertCold)
{
    LruList<int> lru;
    lru.touch(1);
    lru.touch(2);
    EXPECT_TRUE(lru.erase(1));
    EXPECT_FALSE(lru.erase(1));
    lru.insertCold(9);
    EXPECT_EQ(lru.lru(), 9);
    EXPECT_EQ(lru.mru(), 2);
}

TEST(LruListTest, IterationMruToLru)
{
    LruList<int> lru;
    for (int i = 0; i < 5; ++i)
        lru.touch(i);
    std::vector<int> seen(lru.begin(), lru.end());
    EXPECT_EQ(seen, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(LruListTest, EmptyAccessPanics)
{
    LruList<int> lru;
    EXPECT_DEATH(lru.lru(), "empty");
}

TEST(FgstTest, Aggregates)
{
    Fgst g;
    g.reads.hit();
    g.reads.hit();
    g.reads.miss();
    g.hitLatency.add(1e-4);
    g.hitLatency.add(3e-4);
    g.missPenalty.add(4.2e-3);
    EXPECT_NEAR(g.missRate(), 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(g.avgHitLatency(), 2e-4);
    EXPECT_DOUBLE_EQ(g.avgMissPenalty(), 4.2e-3);
}

} // namespace
} // namespace flashcache
