/**
 * @file
 * Tests for the DRAM-resident management tables (FCHT/FBST) and the
 * generic LRU ordering.
 */

#include <gtest/gtest.h>

#include "core/lru.hh"
#include "core/tables.hh"
#include "util/rng.hh"

#include <unordered_map>

namespace flashcache {
namespace {

TEST(FchtTest, InsertFindErase)
{
    Fcht t(64);
    EXPECT_EQ(t.find(42), Fcht::npos);
    t.insert(42, 7);
    t.insert(43, 8);
    EXPECT_EQ(t.find(42), 7u);
    EXPECT_EQ(t.find(43), 8u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.erase(42));
    EXPECT_FALSE(t.erase(42));
    EXPECT_EQ(t.find(42), Fcht::npos);
    EXPECT_EQ(t.size(), 1u);
}

TEST(FchtTest, UpdateRedirects)
{
    Fcht t(8);
    t.insert(10, 1);
    t.update(10, 99);
    EXPECT_EQ(t.find(10), 99u);
}

TEST(FchtTest, DoubleInsertPanics)
{
    Fcht t(8);
    t.insert(5, 1);
    EXPECT_DEATH(t.insert(5, 2), "double insert");
}

TEST(FchtTest, UpdateMissingPanics)
{
    Fcht t(8);
    EXPECT_DEATH(t.update(5, 1), "missing LBA");
}

TEST(FchtTest, ManyEntriesAgainstReference)
{
    Fcht t(101); // non power of two buckets
    std::unordered_map<Lba, std::uint64_t> ref;
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Lba lba = rng.uniformInt(2000);
        const auto it = ref.find(lba);
        if (it == ref.end()) {
            t.insert(lba, i);
            ref[lba] = i;
        } else if (rng.bernoulli(0.5)) {
            t.update(lba, i);
            it->second = i;
        } else {
            t.erase(lba);
            ref.erase(it);
        }
    }
    EXPECT_EQ(t.size(), ref.size());
    for (const auto& [lba, id] : ref)
        EXPECT_EQ(t.find(lba), id);
}

TEST(FchtTest, ProbeLengthShrinksWithMoreBuckets)
{
    // Section 3.1: enough hash entries and lookups stay short.
    auto fill_probe = [](std::size_t buckets) {
        Fcht t(buckets);
        for (Lba l = 0; l < 4096; ++l)
            t.insert(l, l);
        for (Lba l = 0; l < 4096; ++l)
            t.find(l);
        return t.avgProbeLength();
    };
    const double p4 = fill_probe(4);
    const double p128 = fill_probe(128);
    const double p4096 = fill_probe(4096);
    EXPECT_GT(p4, p128);
    EXPECT_GT(p128, p4096);
    EXPECT_LT(p4096, 2.0);
}

TEST(FbstTest, WearOutCostFunction)
{
    FbstEntry e;
    e.totalEcc = 3;
    e.slcFrames = 2;
    // wear = N_erase + k1 * TotalECC + k2 * TotalSLC.
    EXPECT_DOUBLE_EQ(e.wearOut(100, 2.0, 40.0), 100 + 6.0 + 80.0);
    // k2 dominates k1: a density switch signals more wear.
    FbstEntry ecc_heavy;
    ecc_heavy.totalEcc = 2;
    FbstEntry slc_heavy;
    slc_heavy.slcFrames = 2;
    EXPECT_GT(slc_heavy.wearOut(0, 2.0, 40.0),
              ecc_heavy.wearOut(0, 2.0, 40.0));
}

TEST(LruListTest, OrderAndEviction)
{
    LruList<int> lru;
    EXPECT_TRUE(lru.empty());
    lru.touch(1);
    lru.touch(2);
    lru.touch(3);
    EXPECT_EQ(lru.lru(), 1);
    EXPECT_EQ(lru.mru(), 3);
    lru.touch(1); // 1 becomes MRU
    EXPECT_EQ(lru.lru(), 2);
    EXPECT_EQ(lru.popLru(), 2);
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_FALSE(lru.contains(2));
}

TEST(LruListTest, EraseAndInsertCold)
{
    LruList<int> lru;
    lru.touch(1);
    lru.touch(2);
    EXPECT_TRUE(lru.erase(1));
    EXPECT_FALSE(lru.erase(1));
    lru.insertCold(9);
    EXPECT_EQ(lru.lru(), 9);
    EXPECT_EQ(lru.mru(), 2);
}

TEST(LruListTest, IterationMruToLru)
{
    LruList<int> lru;
    for (int i = 0; i < 5; ++i)
        lru.touch(i);
    std::vector<int> seen(lru.begin(), lru.end());
    EXPECT_EQ(seen, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(LruListTest, EmptyAccessPanics)
{
    LruList<int> lru;
    EXPECT_DEATH(lru.lru(), "empty");
}

TEST(FgstTest, Aggregates)
{
    Fgst g;
    g.reads.hit();
    g.reads.hit();
    g.reads.miss();
    g.hitLatency.add(1e-4);
    g.hitLatency.add(3e-4);
    g.missPenalty.add(4.2e-3);
    EXPECT_NEAR(g.missRate(), 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(g.avgHitLatency(), 2e-4);
    EXPECT_DOUBLE_EQ(g.avgMissPenalty(), 4.2e-3);
}

} // namespace
} // namespace flashcache
