/**
 * @file
 * Factory bad-block tests: real NAND ships with a few percent of
 * unusable blocks; the device marks them at construction and the
 * cache must format around them.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/flash_cache.hh"
#include "util/rng.hh"

namespace flashcache {
namespace {

class NullStore : public BackingStore
{
  public:
    Seconds read(Lba) override { return milliseconds(4.2); }
    Seconds write(Lba) override { return milliseconds(4.2); }
};

FlashGeometry
geomWithBad(double rate, std::uint32_t blocks = 32)
{
    FlashGeometry g;
    g.numBlocks = blocks;
    g.framesPerBlock = 8;
    g.factoryBadBlockRate = rate;
    return g;
}

TEST(BadBlockTest, MarkedDeterministicallyPerSeed)
{
    CellLifetimeModel m;
    FlashDevice a(geomWithBad(0.1), FlashTiming(), m, 5);
    FlashDevice b(geomWithBad(0.1), FlashTiming(), m, 5);
    FlashDevice c(geomWithBad(0.1), FlashTiming(), m, 6);
    int bad_a = 0, bad_c = 0, same = 0;
    for (std::uint32_t blk = 0; blk < 32; ++blk) {
        EXPECT_EQ(a.isFactoryBad(blk), b.isFactoryBad(blk));
        bad_a += a.isFactoryBad(blk);
        bad_c += c.isFactoryBad(blk);
        same += a.isFactoryBad(blk) == c.isFactoryBad(blk);
    }
    EXPECT_GT(bad_a, 0);
    EXPECT_LT(bad_a, 16);
    EXPECT_LT(same, 32); // different seed, different pattern
}

TEST(BadBlockTest, ZeroRateMarksNothing)
{
    CellLifetimeModel m;
    FlashDevice dev(geomWithBad(0.0), FlashTiming(), m, 5);
    for (std::uint32_t b = 0; b < 32; ++b)
        EXPECT_FALSE(dev.isFactoryBad(b));
}

TEST(BadBlockTest, AccessToBadBlockPanics)
{
    CellLifetimeModel m;
    FlashDevice dev(geomWithBad(0.2), FlashTiming(), m, 5);
    std::uint32_t bad = ~0u;
    for (std::uint32_t b = 0; b < 32; ++b) {
        if (dev.isFactoryBad(b)) {
            bad = b;
            break;
        }
    }
    ASSERT_NE(bad, ~0u);
    EXPECT_DEATH(dev.programPage({bad, 0, 0}), "factory bad");
    EXPECT_DEATH(dev.eraseBlock(bad), "factory bad");
}

TEST(BadBlockTest, CacheFormatsAroundBadBlocks)
{
    CellLifetimeModel m;
    FlashDevice dev(geomWithBad(0.1), FlashTiming(), m, 5);
    FlashMemoryController ctrl(dev);
    NullStore store;
    FlashCache cache(ctrl, store);

    // Retired at format time; capacity excludes them.
    EXPECT_GT(cache.stats().retiredBlocks, 0u);
    std::uint32_t bad = 0;
    for (std::uint32_t b = 0; b < 32; ++b)
        bad += dev.isFactoryBad(b);
    EXPECT_EQ(cache.stats().retiredBlocks, bad);
    EXPECT_EQ(cache.capacityPages(), (32ull - bad) * 8 * 2);

    // The cache never touches them while operating.
    Rng rng(8);
    for (int i = 0; i < 20000; ++i) {
        const Lba l = rng.uniformInt(500);
        if (rng.bernoulli(0.4))
            cache.write(l);
        else
            cache.read(l);
    }
    cache.checkInvariants();
    for (std::uint32_t b = 0; b < 32; ++b) {
        if (dev.isFactoryBad(b)) {
            EXPECT_EQ(dev.blockEraseCount(b), 0u) << b;
        }
    }
}

TEST(BadBlockTest, TooManyBadBlocksIsFatal)
{
    CellLifetimeModel m;
    FlashDevice dev(geomWithBad(0.97, 16), FlashTiming(), m, 31);
    FlashMemoryController ctrl(dev);
    NullStore store;
    EXPECT_DEATH({ FlashCache cache(ctrl, store); },
                 "too many factory bad blocks");
}

} // namespace
} // namespace flashcache
