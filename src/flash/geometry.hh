/**
 * @file
 * NAND flash array geometry (paper section 2.1, Figure 1(a)).
 *
 * The device is organized as blocks of page *frames*. A frame is one
 * physical row of cells: 2048 data bytes + 64 spare bytes in SLC
 * mode, or two 2048-byte logical pages when operated in MLC mode
 * (the dual-mode design of Cho et al. [11]). Blocks erase as a unit:
 * 64 SLC pages or 128 MLC pages.
 */

#ifndef FLASHCACHE_FLASH_GEOMETRY_HH
#define FLASHCACHE_FLASH_GEOMETRY_HH

#include <cstdint>

#include "util/types.hh"

namespace flashcache {

/** Cell density mode of a page frame. */
enum class DensityMode : std::uint8_t
{
    SLC, ///< one bit per cell: fast, endurant, half capacity
    MLC, ///< two bits per cell: dense, slower, wears ~10x faster
};

/** Identifies one logical flash page. */
struct PageAddress
{
    std::uint32_t block = 0;
    std::uint16_t frame = 0; ///< physical page frame within the block
    std::uint8_t sub = 0;    ///< 0, or 1 for the second MLC page

    bool
    operator==(const PageAddress& o) const
    {
        return block == o.block && frame == o.frame && sub == o.sub;
    }
};

/** Static array shape. */
struct FlashGeometry
{
    std::uint32_t numBlocks = 1024;
    std::uint16_t framesPerBlock = 64;
    std::uint32_t pageDataBytes = 2048;
    std::uint32_t pageSpareBytes = 64;

    /** Independent channels (die groups with their own bus + command
     *  pipeline) the blocks are striped over. Purely a timing-model
     *  property: ops on different channels can overlap, ops on the
     *  same channel serialize. */
    std::uint32_t numChannels = 1;

    /** Fraction of blocks shipped factory-bad (NAND datasheets allow
     *  ~2%); the device marks them at construction and software must
     *  skip them. */
    double factoryBadBlockRate = 0.0;

    std::uint32_t
    pageBits() const
    {
        return (pageDataBytes + pageSpareBytes) * 8;
    }

    /** Channel a block's die sits on (blocks striped round-robin). */
    std::uint32_t
    channelOf(std::uint32_t block) const
    {
        return numChannels > 1 ? block % numChannels : 0;
    }

    /** Logical pages per block when every frame runs in the mode. */
    std::uint32_t
    pagesPerBlock(DensityMode mode) const
    {
        return mode == DensityMode::SLC ? framesPerBlock
                                        : framesPerBlock * 2u;
    }

    /** Data capacity of the whole device in the given uniform mode. */
    std::uint64_t
    capacityBytes(DensityMode mode) const
    {
        return static_cast<std::uint64_t>(numBlocks) *
            pagesPerBlock(mode) * pageDataBytes;
    }

    /** Geometry sized to hold the given capacity of MLC data. */
    static FlashGeometry
    forMlcCapacity(std::uint64_t bytes)
    {
        FlashGeometry g;
        const std::uint64_t per_block =
            static_cast<std::uint64_t>(g.framesPerBlock) * 2 *
            g.pageDataBytes;
        g.numBlocks = static_cast<std::uint32_t>(
            (bytes + per_block - 1) / per_block);
        if (g.numBlocks == 0)
            g.numBlocks = 1;
        return g;
    }
};

} // namespace flashcache

#endif // FLASHCACHE_FLASH_GEOMETRY_HH
