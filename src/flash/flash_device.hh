/**
 * @file
 * Behavioural NAND flash device model.
 *
 * Provides raw page read/program and block erase with Table 2/3
 * latencies, per-frame SLC/MLC density modes (applied at the next
 * erase, per section 5.2), wear accumulation, and hard bit-error
 * counts drawn from the reliability model. The programmable memory
 * controller sits on top and adds ECC; the disk-cache core sits on
 * top of that and enforces out-of-place write discipline — this
 * layer panics if a page is programmed twice without an erase, which
 * is how real NAND fails and how cache bugs get caught.
 */

#ifndef FLASHCACHE_FLASH_FLASH_DEVICE_HH
#define FLASHCACHE_FLASH_FLASH_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "flash/flash_spec.hh"
#include "flash/geometry.hh"
#include "reliability/wear_model.hh"
#include "sched/demand.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace flashcache {

class FaultInjector;

namespace obs {
class MetricRegistry;
} // namespace obs

/** View of a stored page payload (data + spare, contiguous). */
struct PageBytes
{
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;

    explicit operator bool() const { return data != nullptr; }
};

/** Aggregate operation counters and energy/busy-time accounting. */
struct FlashOpStats
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    Seconds busyTime = 0.0;
    Joules activeEnergy = 0.0;
};

/**
 * One NAND die (or bank set treated as a unit).
 */
class FlashDevice
{
  public:
    /** Result of a raw page read. */
    struct ReadResult
    {
        Seconds latency = 0.0;
        /** Permanent bad bits the ECC layer must deal with. */
        unsigned hardBitErrors = 0;
    };

    /** Result of a page program (status read after the pulse). */
    struct ProgramResult
    {
        Seconds latency = 0.0;
        /** Chip reported program-status failure; page is garbage. */
        bool failed = false;
    };

    /** Result of a block erase. */
    struct EraseResult
    {
        Seconds latency = 0.0;
        /** Erase verify failed; old contents may persist. */
        bool failed = false;
    };

    /**
     * @param geometry     Array shape.
     * @param timing       Latency/power datasheet values.
     * @param lifetime     Shared cell wear-out statistics.
     * @param seed         Seed for per-frame lifetime draws.
     * @param spatial_frac Page-to-page quality spread (0 = uniform).
     * @param store_data   Keep actual page payloads (integration
     *                     tests / real-ECC data path); off for large
     *                     trace simulations.
     */
    FlashDevice(const FlashGeometry& geometry, const FlashTiming& timing,
                const CellLifetimeModel& lifetime, std::uint64_t seed,
                double spatial_frac = 0.0, bool store_data = false);

    /**
     * Enable transient (soft) read errors: each read flips an
     * additional Poisson(page bits * rate) bits that do not persist
     * (section 4.1: ECC mitigates "hard (permanent) and soft
     * (transient) errors"). MLC sensing doubles the rate.
     */
    void setSoftErrorRate(double rate_per_bit_read);

    double softErrorRate() const { return softErrorRate_; }

    /** True when constructed with store_data (payload retention). */
    bool storesData() const { return storeData_; }

    /// @name State persistence (warm restarts, section 3).
    /// Saves/restores wear, density modes, programmed flags and
    /// retained payloads. The geometry must match on load.
    /// @{
    void saveState(std::ostream& os) const;
    void loadState(std::istream& is);
    /// @}

    const FlashGeometry& geometry() const { return geom_; }
    const FlashTiming& timing() const { return timing_; }
    const CellLifetimeModel& lifetimeModel() const { return *lifetime_; }

    /** Read a programmed page; returns latency and hard bit errors. */
    ReadResult readPage(const PageAddress& addr);

    /**
     * Program an erased page. Optional payload is retained only when
     * store_data was requested.
     *
     * With a fault injector attached this may report a program-status
     * failure (the page is marked programmed but holds garbage) or
     * throw PowerLossException mid-program, leaving a torn page: only
     * a prefix of data||spare reaches the medium.
     */
    ProgramResult programPage(const PageAddress& addr,
                              const std::uint8_t* data = nullptr,
                              const std::uint8_t* spare = nullptr);

    /**
     * Erase a whole block; applies pending density-mode changes. An
     * injected erase failure leaves the old contents (and programmed
     * flags) in place — the block must be retired by the layer above.
     */
    EraseResult eraseBlock(std::uint32_t block);

    /**
     * Attach (or detach with nullptr) a fault injector. Not owned;
     * must outlive the device or be detached first.
     */
    void attachFaultInjector(FaultInjector* fault) { fault_ = fault; }

    FaultInjector* faultInjector() const { return fault_; }

    /**
     * Attach (or detach with nullptr) a scheduler demand sink: every
     * read/program/erase is additionally recorded as a FlashChannel
     * demand on the block's geometry-mapped channel. Not owned.
     */
    void attachDemandSink(sched::DemandSink* sink) { demands_ = sink; }

    /** Page left torn by a mid-program power cut or status failure. */
    bool isTorn(const PageAddress& addr) const;

    /** Current operating mode of a frame. */
    DensityMode frameMode(std::uint32_t block, std::uint16_t frame) const;

    /**
     * Request a density-mode change; takes effect at the next erase
     * of the containing block (section 5.2: "updated page settings
     * are applied on the next erase and write access").
     */
    void requestFrameMode(std::uint32_t block, std::uint16_t frame,
                          DensityMode mode);

    /** Hard bit errors a read of this page would see right now. */
    unsigned hardErrors(const PageAddress& addr) const;

    /** Effective W/E cycles a read at the given mode margins sees. */
    double effectiveCycles(std::uint32_t block, std::uint16_t frame,
                           DensityMode mode) const;

    /** Accumulated erase cycles of a frame. */
    double frameDamage(std::uint32_t block, std::uint16_t frame) const;

    std::uint32_t blockEraseCount(std::uint32_t block) const;

    /** Factory-marked bad block (never usable). */
    bool isFactoryBad(std::uint32_t block) const;

    bool isProgrammed(const PageAddress& addr) const;

    /** Stored payload of a programmed page (store_data mode only);
     *  empty (null data) when nothing is stored. */
    PageBytes pageData(const PageAddress& addr) const;

    const FlashOpStats& stats() const { return stats_; }

    /** Register `flash.*` array-level metrics. */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /** Total energy over a wall-clock interval: active + idle. */
    Joules
    energyOver(Seconds wall_clock) const
    {
        const Seconds idle = wall_clock > stats_.busyTime
            ? wall_clock - stats_.busyTime : 0.0;
        return stats_.activeEnergy + idle * timing_.idlePower;
    }

  private:
    struct FrameState
    {
        DensityMode mode = DensityMode::MLC;
        DensityMode pendingMode = DensityMode::MLC;
        float damage = 0.0f; ///< accumulated erase cycles
        std::vector<float> weakest; ///< lazily sampled cell lifetimes
    };

    FrameState& frameAt(std::uint32_t block, std::uint16_t frame);
    const FrameState& frameAt(std::uint32_t block,
                              std::uint16_t frame) const;

    /** Sample a frame's weak-cell lifetimes on first use. */
    void ensureHealth(FrameState& fs, std::uint32_t block,
                      std::uint16_t frame) const;

    unsigned hardErrorsOf(const FrameState& fs, std::uint32_t block,
                          std::uint16_t frame, DensityMode mode) const;

    std::size_t
    linearPage(const PageAddress& addr) const
    {
        return (static_cast<std::size_t>(addr.block) *
                    geom_.framesPerBlock +
                addr.frame) * 2 + addr.sub;
    }

    void validate(const PageAddress& addr) const;
    void account(Seconds latency, std::uint32_t block);

    /** Zero the page's arena slot and persist a torn payload prefix. */
    void writeTornPayload(std::size_t lp, const std::uint8_t* data,
                          const std::uint8_t* spare, std::size_t nbytes);

    FlashGeometry geom_;
    FlashTiming timing_;
    const CellLifetimeModel* lifetime_;
    std::uint64_t seed_;
    double spatialFrac_;
    bool storeData_;

    std::vector<FrameState> frames_;
    std::vector<std::uint32_t> blockErases_;
    std::vector<bool> programmed_;
    std::vector<bool> torn_; ///< incompletely programmed pages
    std::vector<bool> factoryBad_;

    FaultInjector* fault_ = nullptr;
    sched::DemandSink* demands_ = nullptr;

    /// @name Retained payloads (store_data mode): one flat arena
    /// sized at construction — a fixed slot of data+spare bytes per
    /// page — instead of a per-page heap vector. dataLen_ of 0 marks
    /// an absent payload.
    /// @{
    std::vector<std::uint8_t> arena_;
    std::vector<std::uint32_t> dataLen_;
    std::size_t slotBytes_ = 0;
    /// @}

    FlashOpStats stats_;
    double softErrorRate_ = 0.0;
    Rng softRng_;

    /** Weak cells tracked per frame (max ECC strength + margin). */
    static constexpr unsigned kTrackedCells = 16;

    /** Bit errors reported for a torn page: far beyond any ECC
     *  strength, yet small enough for physical injection loops. */
    static constexpr unsigned kTornPageBitErrors = 64;
};

} // namespace flashcache

#endif // FLASHCACHE_FLASH_FLASH_DEVICE_HH
