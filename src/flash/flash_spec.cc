#include "flash/flash_spec.hh"

namespace flashcache {

const std::array<ItrsRow, 5>&
itrsRoadmap()
{
    static const std::array<ItrsRow, 5> rows = {{
        {2007, 0.0130, 0.0065, 0.0324, 1e5, 1e4, 10, 20},
        {2009, 0.0081, 0.0041, 0.0153, 1e5, 1e4, 10, 20},
        {2011, 0.0052, 0.0013, 0.0096, 1e6, 1e4, 10, 20},
        {2013, 0.0031, 0.0008, 0.0061, 1e6, 1e4, 20, 20},
        {2015, 0.0021, 0.0005, 0.0038, 1e6, 1e4, 20, 20},
    }};
    return rows;
}

FlashAreaModel::FlashAreaModel(double mlc_bytes_per_mm2)
    : mlcBytesPerMm2_(mlc_bytes_per_mm2)
{
}

std::uint64_t
FlashAreaModel::capacityBytes(double die_area_mm2,
                              double slc_fraction_of_area) const
{
    const double slc_area = die_area_mm2 * slc_fraction_of_area;
    const double mlc_area = die_area_mm2 - slc_area;
    const double bytes = mlc_area * mlcBytesPerMm2_ +
        slc_area * mlcBytesPerMm2_ * 0.5;
    return bytes <= 0 ? 0 : static_cast<std::uint64_t>(bytes);
}

double
FlashAreaModel::areaForMlcBytes(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) / mlcBytesPerMm2_;
}

double
FlashAreaModel::areaForSlcBytes(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) / (mlcBytesPerMm2_ * 0.5);
}

} // namespace flashcache
