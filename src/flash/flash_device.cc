#include "flash/flash_device.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "reliability/page_health.hh"
#include "util/log.hh"
#include "util/serialize.hh"

namespace flashcache {

FlashDevice::FlashDevice(const FlashGeometry& geometry,
                         const FlashTiming& timing,
                         const CellLifetimeModel& lifetime,
                         std::uint64_t seed, double spatial_frac,
                         bool store_data)
    : geom_(geometry), timing_(timing), lifetime_(&lifetime), seed_(seed),
      spatialFrac_(spatial_frac), storeData_(store_data),
      softRng_(seed ^ 0xBADC0FFEE0DDF00Dull)
{
    const std::size_t nframes =
        static_cast<std::size_t>(geom_.numBlocks) * geom_.framesPerBlock;
    frames_.resize(nframes);
    blockErases_.assign(geom_.numBlocks, 0);
    programmed_.assign(nframes * 2, false);
    torn_.assign(nframes * 2, false);

    if (storeData_) {
        slotBytes_ = static_cast<std::size_t>(geom_.pageDataBytes) +
            geom_.pageSpareBytes;
        arena_.resize(nframes * 2 * slotBytes_);
        dataLen_.assign(nframes * 2, 0);
    }

    // Factory bad-block marking, deterministic per seed.
    factoryBad_.assign(geom_.numBlocks, false);
    if (geom_.factoryBadBlockRate > 0.0) {
        Rng bad_rng(seed ^ 0xFEEDFACECAFEBEEFull);
        for (std::uint32_t b = 0; b < geom_.numBlocks; ++b)
            factoryBad_[b] = bad_rng.bernoulli(geom_.factoryBadBlockRate);
    }
}

bool
FlashDevice::isFactoryBad(std::uint32_t block) const
{
    return factoryBad_.at(block);
}

void
FlashDevice::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("flash.reads", "raw page reads", &stats_.reads);
    reg.counter("flash.programs", "raw page programs",
                &stats_.programs);
    reg.counter("flash.erases", "raw block erases", &stats_.erases);
    reg.counter("flash.busy", "flash array busy seconds",
                &stats_.busyTime);
    reg.counter("flash.active_energy", "active energy (J)",
                &stats_.activeEnergy);
}

FlashDevice::FrameState&
FlashDevice::frameAt(std::uint32_t block, std::uint16_t frame)
{
    return frames_[static_cast<std::size_t>(block) * geom_.framesPerBlock +
                   frame];
}

const FlashDevice::FrameState&
FlashDevice::frameAt(std::uint32_t block, std::uint16_t frame) const
{
    return frames_[static_cast<std::size_t>(block) * geom_.framesPerBlock +
                   frame];
}

void
FlashDevice::validate(const PageAddress& addr) const
{
    if (addr.block >= geom_.numBlocks || addr.frame >= geom_.framesPerBlock
        || addr.sub > 1) {
        panic("flash page address out of range");
    }
    if (factoryBad_[addr.block])
        panic("access to a factory bad block");
    const auto& fs = frameAt(addr.block, addr.frame);
    if (addr.sub == 1 && fs.mode == DensityMode::SLC)
        panic("second MLC page addressed on an SLC-mode frame");
}

void
FlashDevice::account(Seconds latency, std::uint32_t block)
{
    stats_.busyTime += latency;
    stats_.activeEnergy += latency * timing_.activePower;
    if (demands_) {
        demands_->record(sched::ResourceKind::FlashChannel,
                         static_cast<std::uint16_t>(
                             geom_.channelOf(block)),
                         latency);
    }
}

void
FlashDevice::ensureHealth(FrameState& fs, std::uint32_t block,
                          std::uint16_t frame) const
{
    if (!fs.weakest.empty())
        return;
    // Per-frame deterministic stream: independent of access order.
    const std::uint64_t mix = seed_ ^
        (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(block) *
                                  geom_.framesPerBlock + frame + 1));
    Rng rng(mix);
    const double offset = spatialFrac_ == 0.0
        ? 0.0
        : rng.normal(0.0, lifetime_->params().spatialShiftDecadesPerFrac *
                     spatialFrac_ / 3.0);
    const auto weakest = sampleWeakestLifetimes(
        *lifetime_, rng, geom_.pageBits(), kTrackedCells, offset);
    fs.weakest.assign(weakest.begin(), weakest.end());
}

unsigned
FlashDevice::hardErrorsOf(const FrameState& fs, std::uint32_t block,
                          std::uint16_t frame, DensityMode mode) const
{
    if (fs.damage == 0.0f)
        return 0;
    auto& mut = const_cast<FrameState&>(fs);
    ensureHealth(mut, block, frame);
    // MLC sensing margins are tighter: the same physical damage
    // manifests as if the cell had seen mlcWearMultiplier times the
    // cycles (Table 1's 10x endurance gap).
    const double eff = mode == DensityMode::MLC
        ? fs.damage * lifetime_->params().mlcWearMultiplier
        : static_cast<double>(fs.damage);
    const auto it = std::upper_bound(fs.weakest.begin(), fs.weakest.end(),
                                     static_cast<float>(eff));
    return static_cast<unsigned>(it - fs.weakest.begin());
}

double
FlashDevice::effectiveCycles(std::uint32_t block, std::uint16_t frame,
                             DensityMode mode) const
{
    const auto& fs = frameAt(block, frame);
    return mode == DensityMode::MLC
        ? fs.damage * lifetime_->params().mlcWearMultiplier
        : static_cast<double>(fs.damage);
}

FlashDevice::ReadResult
FlashDevice::readPage(const PageAddress& addr)
{
    validate(addr);
    const std::size_t lp = linearPage(addr);
    if (!programmed_[lp])
        panic("read of unprogrammed flash page");
    const auto& fs = frameAt(addr.block, addr.frame);
    ReadResult res;
    res.latency = fs.mode == DensityMode::SLC ? timing_.slcReadLatency
                                              : timing_.mlcReadLatency;
    res.hardBitErrors = hardErrorsOf(fs, addr.block, addr.frame, fs.mode);
    if (torn_[lp]) {
        // An interrupted program leaves cells at indeterminate levels;
        // report errors far beyond any ECC strength.
        res.hardBitErrors += kTornPageBitErrors;
    }
    if (fault_) {
        fault_->opStart();
        res.hardBitErrors += fault_->onRead();
    }
    if (softErrorRate_ > 0.0) {
        // Transient read-disturb/retention flips; MLC's narrower
        // sensing margins double the exposure.
        const double rate = fs.mode == DensityMode::MLC
            ? 2.0 * softErrorRate_ : softErrorRate_;
        res.hardBitErrors += static_cast<unsigned>(
            softRng_.poisson(rate * geom_.pageBits()));
    }
    ++stats_.reads;
    account(res.latency, addr.block);
    return res;
}

void
FlashDevice::setSoftErrorRate(double rate_per_bit_read)
{
    softErrorRate_ = rate_per_bit_read;
}

void
FlashDevice::writeTornPayload(std::size_t lp, const std::uint8_t* data,
                              const std::uint8_t* spare, std::size_t nbytes)
{
    if (!storeData_ || !data)
        return;
    // Zero the whole slot first: the arena may still hold bytes from
    // a previous life of this page (erase only clears dataLen_), and
    // a stale-but-valid OOB record must never shine through a torn
    // page during recovery.
    std::uint8_t* const dst = &arena_[lp * slotBytes_];
    std::memset(dst, 0, slotBytes_);
    const std::size_t dlen = std::min<std::size_t>(nbytes,
                                                   geom_.pageDataBytes);
    std::memcpy(dst, data, dlen);
    if (spare && nbytes > geom_.pageDataBytes) {
        std::memcpy(dst + geom_.pageDataBytes, spare,
                    nbytes - geom_.pageDataBytes);
    }
    dataLen_[lp] = geom_.pageDataBytes +
        (spare ? geom_.pageSpareBytes : 0u);
}

FlashDevice::ProgramResult
FlashDevice::programPage(const PageAddress& addr, const std::uint8_t* data,
                         const std::uint8_t* spare)
{
    validate(addr);
    const std::size_t lp = linearPage(addr);
    if (programmed_[lp])
        panic("program of already-programmed page without erase");

    const auto& fs = frameAt(addr.block, addr.frame);
    const Seconds lat = fs.mode == DensityMode::SLC
        ? timing_.slcWriteLatency : timing_.mlcWriteLatency;

    ProgramFault pf = ProgramFault::None;
    if (fault_) {
        fault_->opStart();
        pf = fault_->onProgram();
    }

    const std::size_t full = static_cast<std::size_t>(geom_.pageDataBytes) +
        (spare ? geom_.pageSpareBytes : 0u);

    if (pf == ProgramFault::PowerCut) {
        // Power died mid-pulse: the page is occupied but holds only a
        // prefix of the payload. Persist the torn state, then deliver
        // the cut; the in-DRAM cache above is abandoned by the
        // harness, exactly as a real cut would lose it.
        programmed_[lp] = true;
        torn_[lp] = true;
        writeTornPayload(lp, data, spare, fault_->tornBytes(full));
        fault_->noteTornPage();
        ++stats_.programs;
        account(lat, addr.block);
        throw PowerLossException{};
    }

    programmed_[lp] = true;
    if (pf == ProgramFault::StatusFail) {
        // The chip's status read reports failure; cell contents are
        // unreliable garbage. The layer above must re-program
        // elsewhere and retire the block.
        torn_[lp] = true;
        writeTornPayload(lp, data, spare, fault_->tornBytes(full));
        fault_->noteTornPage();
        ++stats_.programs;
        account(lat, addr.block);
        return {lat, true};
    }

    if (storeData_ && data) {
        std::uint8_t* const dst = &arena_[lp * slotBytes_];
        std::memcpy(dst, data, geom_.pageDataBytes);
        std::uint32_t len = geom_.pageDataBytes;
        if (spare) {
            std::memcpy(dst + geom_.pageDataBytes, spare,
                        geom_.pageSpareBytes);
            len += geom_.pageSpareBytes;
        }
        dataLen_[lp] = len;
    }
    ++stats_.programs;
    account(lat, addr.block);
    return {lat, false};
}

FlashDevice::EraseResult
FlashDevice::eraseBlock(std::uint32_t block)
{
    if (block >= geom_.numBlocks)
        panic("erase of out-of-range block");
    if (factoryBad_[block])
        panic("erase of a factory bad block");

    if (fault_) {
        fault_->opStart();
        if (fault_->onErase()) {
            // Erase verify failed. The block still took the wear of
            // the attempted pulse, but old contents and programmed
            // flags persist; the layer above must retire the block.
            for (std::uint16_t f = 0; f < geom_.framesPerBlock; ++f)
                frameAt(block, f).damage += 1.0f;
            const Seconds flat = timing_.mlcEraseLatency;
            ++stats_.erases;
            account(flat, block);
            return {flat, true};
        }
    }

    bool any_mlc = false;
    for (std::uint16_t f = 0; f < geom_.framesPerBlock; ++f) {
        FrameState& fs = frameAt(block, f);
        fs.damage += 1.0f;
        fs.mode = fs.pendingMode;
        if (fs.mode == DensityMode::MLC)
            any_mlc = true;
        const std::size_t base =
            (static_cast<std::size_t>(block) * geom_.framesPerBlock + f) *
            2;
        if (storeData_) {
            dataLen_[base] = 0;
            dataLen_[base + 1] = 0;
        }
        programmed_[base] = false;
        programmed_[base + 1] = false;
        torn_[base] = false;
        torn_[base + 1] = false;
    }
    ++blockErases_[block];
    const Seconds lat = any_mlc ? timing_.mlcEraseLatency
                                : timing_.slcEraseLatency;
    ++stats_.erases;
    account(lat, block);
    return {lat, false};
}

DensityMode
FlashDevice::frameMode(std::uint32_t block, std::uint16_t frame) const
{
    return frameAt(block, frame).mode;
}

void
FlashDevice::requestFrameMode(std::uint32_t block, std::uint16_t frame,
                              DensityMode mode)
{
    frameAt(block, frame).pendingMode = mode;
}

unsigned
FlashDevice::hardErrors(const PageAddress& addr) const
{
    validate(addr);
    const auto& fs = frameAt(addr.block, addr.frame);
    return hardErrorsOf(fs, addr.block, addr.frame, fs.mode);
}

double
FlashDevice::frameDamage(std::uint32_t block, std::uint16_t frame) const
{
    return frameAt(block, frame).damage;
}

std::uint32_t
FlashDevice::blockEraseCount(std::uint32_t block) const
{
    return blockErases_.at(block);
}

bool
FlashDevice::isProgrammed(const PageAddress& addr) const
{
    validate(addr);
    return programmed_[linearPage(addr)];
}

bool
FlashDevice::isTorn(const PageAddress& addr) const
{
    validate(addr);
    return torn_[linearPage(addr)];
}

PageBytes
FlashDevice::pageData(const PageAddress& addr) const
{
    if (!storeData_)
        return {};
    const std::size_t lp = linearPage(addr);
    if (dataLen_[lp] == 0)
        return {};
    return {&arena_[lp * slotBytes_], dataLen_[lp]};
}

void
FlashDevice::saveState(std::ostream& os) const
{
    putMagic(os, "FCDEV001");
    putScalar<std::uint32_t>(os, geom_.numBlocks);
    putScalar<std::uint16_t>(os, geom_.framesPerBlock);
    putScalar<std::uint8_t>(os, storeData_ ? 1 : 0);

    for (const FrameState& fs : frames_) {
        putScalar<std::uint8_t>(os, static_cast<std::uint8_t>(fs.mode));
        putScalar<std::uint8_t>(os,
                                static_cast<std::uint8_t>(fs.pendingMode));
        putScalar<float>(os, fs.damage);
        putVector(os, fs.weakest);
    }
    putVector(os, blockErases_);

    // Programmed bitmap, packed.
    putScalar<std::uint64_t>(os, programmed_.size());
    for (std::size_t i = 0; i < programmed_.size(); i += 8) {
        std::uint8_t byte = 0;
        for (std::size_t b = 0; b < 8 && i + b < programmed_.size(); ++b)
            byte |= static_cast<std::uint8_t>(programmed_[i + b]) << b;
        putScalar(os, byte);
    }

    // Retained payloads (store_data mode); same (lp, bytes) wire
    // format as the old per-page map, written in page order.
    std::uint64_t stored = 0;
    for (const std::uint32_t len : dataLen_) {
        if (len != 0)
            ++stored;
    }
    putScalar<std::uint64_t>(os, stored);
    std::vector<std::uint8_t> bytes;
    for (std::size_t lp = 0; lp < dataLen_.size(); ++lp) {
        if (dataLen_[lp] == 0)
            continue;
        putScalar<std::uint64_t>(os, lp);
        const std::uint8_t* const src = &arena_[lp * slotBytes_];
        bytes.assign(src, src + dataLen_[lp]);
        putVector(os, bytes);
    }
}

void
FlashDevice::loadState(std::istream& is)
{
    expectMagic(is, "FCDEV001");
    if (getScalar<std::uint32_t>(is) != geom_.numBlocks ||
        getScalar<std::uint16_t>(is) != geom_.framesPerBlock) {
        fatal("flash state file geometry mismatch");
    }
    if ((getScalar<std::uint8_t>(is) != 0) != storeData_)
        fatal("flash state file store_data mode mismatch");

    for (FrameState& fs : frames_) {
        fs.mode = static_cast<DensityMode>(getScalar<std::uint8_t>(is));
        fs.pendingMode =
            static_cast<DensityMode>(getScalar<std::uint8_t>(is));
        fs.damage = getScalar<float>(is);
        fs.weakest = getVector<float>(is);
    }
    blockErases_ = getVector<std::uint32_t>(is);
    if (blockErases_.size() != geom_.numBlocks)
        fatal("flash state file erase-count size mismatch");

    const auto nbits = getScalar<std::uint64_t>(is);
    if (nbits != programmed_.size())
        fatal("flash state file page-count mismatch");
    for (std::size_t i = 0; i < programmed_.size(); i += 8) {
        const auto byte = getScalar<std::uint8_t>(is);
        for (std::size_t b = 0; b < 8 && i + b < programmed_.size(); ++b)
            programmed_[i + b] = (byte >> b) & 1;
    }
    // Snapshots are cooperative (no mid-program cut can be captured),
    // so any torn marks belong to the pre-load life of this device.
    std::fill(torn_.begin(), torn_.end(), false);

    std::fill(dataLen_.begin(), dataLen_.end(), 0);
    const auto npages = getScalar<std::uint64_t>(is);
    for (std::uint64_t i = 0; i < npages; ++i) {
        const auto lp = getScalar<std::uint64_t>(is);
        const auto bytes = getVector<std::uint8_t>(is);
        if (lp >= dataLen_.size() || bytes.size() > slotBytes_)
            fatal("flash state file payload out of range");
        std::memcpy(&arena_[lp * slotBytes_], bytes.data(),
                    bytes.size());
        dataLen_[lp] = static_cast<std::uint32_t>(bytes.size());
    }
}

} // namespace flashcache
