/**
 * @file
 * Device datasheet and roadmap constants (Tables 1-3 of the paper).
 *
 * Everything numeric the models consume is centralized here so each
 * bench can print the table it came from and EXPERIMENTS.md can
 * cross-reference a single source of truth.
 */

#ifndef FLASHCACHE_FLASH_FLASH_SPEC_HH
#define FLASHCACHE_FLASH_FLASH_SPEC_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace flashcache {

/** Flash page/block timing and power, per Table 2 / Table 3. */
struct FlashTiming
{
    Seconds slcReadLatency = microseconds(25);
    Seconds slcWriteLatency = microseconds(200);
    Seconds slcEraseLatency = milliseconds(1.5);

    Seconds mlcReadLatency = microseconds(50);
    Seconds mlcWriteLatency = microseconds(680);
    Seconds mlcEraseLatency = milliseconds(3.3);

    /** 1 Gb NAND-SLC active / idle power (Table 2). */
    Watts activePower = milliwatts(27);
    Watts idlePower = microwatts(6);
};

/** DRAM timing and power (Table 2 / Table 3, 1 Gb DDR2 DIMM). */
struct DramSpec
{
    Seconds rowCycle = nanoseconds(50); // tRC
    Watts activePower = milliwatts(878);
    Watts idleActivePower = milliwatts(80);
    Watts idlePowerdownPower = milliwatts(18);

    /** Bytes per 1 Gb device; scaled-footprint experiments shrink
     *  this with everything else so device-count ratios (and hence
     *  idle power ratios) match the full-size configuration. */
    std::uint64_t deviceBytes = mib(128);
};

/** Hard disk drive latency and power. */
struct DiskSpec
{
    /** Table 3: IDE disk average access latency 4.2 ms. */
    Seconds avgAccessLatency = milliseconds(4.2);

    /**
     * The methodology (section 6.1) uses laptop-drive power (Hitachi
     * Travelstar 7K60) because the scaled disks are small; Table 2's
     * 13 W / 9.3 W describes the 750 GB Barracuda.
     */
    Watts activePower = 2.5;
    Watts idlePower = 0.85;

    Watts barracudaActivePower = 13.0;
    Watts barracudaIdlePower = 9.3;
};

/** One row of the ITRS 2007 roadmap excerpt (Table 1). */
struct ItrsRow
{
    int year;
    double slcUm2PerBit;
    double mlcUm2PerBit;
    double dramUm2PerBit;
    double slcEnduranceCycles;
    double mlcEnduranceCycles;
    int retentionYearsLo;
    int retentionYearsHi;
};

/** The five roadmap columns of Table 1. */
const std::array<ItrsRow, 5>& itrsRoadmap();

/**
 * Die-area <-> capacity model used by Figure 7's x-axis, anchored to
 * the 146 mm^2 / 8 Gb 70 nm MLC part of reference [12]; SLC stores
 * one bit where MLC stores two (Table 1's 2x cell-area ratio).
 */
class FlashAreaModel
{
  public:
    /** @param mlc_bytes_per_mm2 Density anchor; default from [12]. */
    explicit FlashAreaModel(double mlc_bytes_per_mm2 = (8.0 / 8.0) *
                            1024.0 * 1024.0 * 1024.0 / 146.0);

    /** Usable bytes of a die split between SLC and MLC regions. */
    std::uint64_t capacityBytes(double die_area_mm2,
                                double slc_fraction_of_area) const;

    /** Area needed to hold the given capacity at a pure density. */
    double areaForMlcBytes(std::uint64_t bytes) const;
    double areaForSlcBytes(std::uint64_t bytes) const;

  private:
    double mlcBytesPerMm2_;
};

} // namespace flashcache

#endif // FLASHCACHE_FLASH_FLASH_SPEC_HH
