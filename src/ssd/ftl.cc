#include "ssd/ftl.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/log.hh"

namespace flashcache {

FlashTranslationLayer::FlashTranslationLayer(
    FlashMemoryController& controller, std::uint64_t logical_pages,
    std::uint8_t ecc_strength)
    : ctrl_(&controller), logicalPages_(logical_pages),
      eccStrength_(ecc_strength)
{
    const FlashGeometry& geom = ctrl_->device().geometry();
    framesPerBlock_ = geom.framesPerBlock;
    numBlocks_ = geom.numBlocks;

    const std::uint64_t phys = physicalPages();
    if (logical_pages + 2ull * framesPerBlock_ > phys) {
        fatal("FTL needs at least one block of overprovisioning "
              "headroom");
    }

    map_.assign(logicalPages_, kUnmapped);
    owner_.assign(phys, kUnmapped);
    state_.assign(phys, 0);
    invalidPerBlock_.assign(numBlocks_, 0);
    validPerBlock_.assign(numBlocks_, 0);
    freeBlocks_.reserve(numBlocks_);
    for (std::uint32_t b = 0; b < numBlocks_; ++b)
        freeBlocks_.push_back(b);
}

std::uint64_t
FlashTranslationLayer::physicalPages() const
{
    // The FTL formats the whole device MLC.
    return static_cast<std::uint64_t>(numBlocks_) * framesPerBlock_ * 2;
}

std::uint64_t
FlashTranslationLayer::mappingTableBytes() const
{
    // One 8-byte entry per logical page, always resident (plus the
    // reverse map kept on-device in real designs).
    return logicalPages_ * sizeof(std::uint64_t);
}

void
FlashTranslationLayer::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("ftl.reads", "logical page reads", &stats_.reads);
    reg.counter("ftl.writes", "logical page writes", &stats_.writes);
    reg.counter("ftl.gc_runs", "garbage collections", &stats_.gcRuns);
    reg.counter("ftl.gc_copies", "pages relocated by GC",
                &stats_.gcPageCopies);
    reg.counter("ftl.gc_erases", "blocks erased by GC",
                &stats_.gcErases);
    reg.counter("ftl.gc_time", "GC busy seconds", &stats_.gcTime);
    reg.counter("ftl.busy", "FTL busy seconds", &stats_.busyTime);
    reg.counter("ftl.uncorrectable", "uncorrectable reads",
                &stats_.uncorrectableReads);
    const FtlStats* st = &stats_;
    reg.gauge("ftl.gc_overhead",
              "GC time relative to useful time (Figure 1(b))",
              [st] { return st->gcOverheadFraction(); });
    reg.gauge("ftl.write_amplification",
              "flash programs per host write", [st] {
                  return st->writes ? static_cast<double>(
                      st->writes + st->gcPageCopies) /
                      static_cast<double>(st->writes) : 0.0;
              });
}

Seconds
FlashTranslationLayer::read(Lba lba)
{
    if (lba >= logicalPages_)
        fatal("FTL read beyond exported capacity");
    ++stats_.reads;
    const std::uint64_t phys = map_[lba];
    if (phys == kUnmapped)
        return 0.0; // never written: zero-fill, no flash access

    PageDescriptor desc;
    desc.eccStrength = eccStrength_;
    desc.mode = DensityMode::MLC;
    const auto res = ctrl_->readPage(addressOf(phys), desc);
    stats_.busyTime += res.latency;
    if (res.status == ReadStatus::Uncorrectable)
        ++stats_.uncorrectableReads;
    return res.latency;
}

std::optional<std::uint64_t>
FlashTranslationLayer::allocate()
{
    for (int guard = 0; guard < 1 << 20; ++guard) {
        if (cursor_.block == kNoBlock) {
            if (freeBlocks_.empty())
                return std::nullopt;
            cursor_.block = freeBlocks_.back();
            freeBlocks_.pop_back();
            cursor_.frame = 0;
            cursor_.sub = 0;
        }
        if (cursor_.frame >= framesPerBlock_) {
            cursor_.block = kNoBlock;
            continue;
        }
        const PageAddress a{cursor_.block, cursor_.frame, cursor_.sub};
        // Advance.
        if (cursor_.sub == 0) {
            cursor_.sub = 1;
        } else {
            cursor_.sub = 0;
            ++cursor_.frame;
        }
        const std::uint64_t id = pageId(a);
        if (state_[id] == 0)
            return id;
    }
    panic("FTL allocation failed to converge");
}

void
FlashTranslationLayer::programInto(std::uint64_t phys, Lba lba)
{
    PageDescriptor desc;
    desc.eccStrength = eccStrength_;
    desc.mode = DensityMode::MLC;
    const auto prog = ctrl_->writePage(addressOf(phys), desc);
    if (prog.failed)
        panic("FTL baseline has no bad-block handling (attach the "
              "fault injector to the cache stack instead)");
    stats_.busyTime += prog.latency;
    state_[phys] = 1;
    owner_[phys] = lba;
    map_[lba] = phys;
    ++validPerBlock_[addressOf(phys).block];
}

bool
FlashTranslationLayer::garbageCollect()
{
    // Victim: most invalid pages; an SSD cannot evict, so even a
    // mostly-valid victim must be copied in full.
    std::uint32_t victim = kNoBlock;
    std::uint16_t best = 0;
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (b == cursor_.block)
            continue;
        if (invalidPerBlock_[b] > best) {
            best = invalidPerBlock_[b];
            victim = b;
        }
    }
    if (victim == kNoBlock)
        return false;

    ++stats_.gcRuns;
    const Seconds before = stats_.busyTime;
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            const std::uint64_t id = pageId({victim, f, sub});
            if (state_[id] != 1)
                continue;
            // Relocate: read + program elsewhere.
            PageDescriptor desc;
            desc.eccStrength = eccStrength_;
            desc.mode = DensityMode::MLC;
            const auto res = ctrl_->readPage(addressOf(id), desc);
            stats_.busyTime += res.latency;
            if (res.status == ReadStatus::Uncorrectable)
                ++stats_.uncorrectableReads;

            const auto dst = allocate();
            if (!dst)
                panic("FTL GC starved: no overprovisioned space");
            const Lba lba = owner_[id];
            state_[id] = 2;
            ++invalidPerBlock_[victim];
            --validPerBlock_[victim];
            owner_[id] = kUnmapped;
            programInto(*dst, lba);
            ++stats_.gcPageCopies;
        }
    }
    // Erase and return to the free pool.
    const auto er = ctrl_->eraseBlock(victim);
    if (er.failed)
        panic("FTL baseline has no bad-block handling (attach the "
              "fault injector to the cache stack instead)");
    stats_.busyTime += er.latency;
    ++stats_.gcErases;
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            const std::uint64_t id = pageId({victim, f, sub});
            state_[id] = 0;
            owner_[id] = kUnmapped;
        }
    }
    invalidPerBlock_[victim] = 0;
    validPerBlock_[victim] = 0;
    freeBlocks_.push_back(victim);

    stats_.gcTime += stats_.busyTime - before;
    return true;
}

Seconds
FlashTranslationLayer::write(Lba lba)
{
    if (lba >= logicalPages_)
        fatal("FTL write beyond exported capacity");
    ++stats_.writes;

    // Invalidate the superseded copy.
    const std::uint64_t old = map_[lba];
    if (old != kUnmapped) {
        state_[old] = 2;
        owner_[old] = kUnmapped;
        const std::uint32_t b = addressOf(old).block;
        ++invalidPerBlock_[b];
        --validPerBlock_[b];
    }

    auto phys = allocate();
    for (int attempt = 0; !phys && attempt < 4; ++attempt) {
        if (!garbageCollect())
            break;
        phys = allocate();
    }
    if (!phys)
        panic("FTL out of space: overprovisioning exhausted");

    const Seconds before = stats_.busyTime;
    programInto(*phys, lba);

    // Keep one free block of reserve so GC always has a target.
    if (freeBlocks_.empty())
        garbageCollect();
    return stats_.busyTime - before;
}

void
FlashTranslationLayer::checkInvariants() const
{
    std::uint64_t valid = 0;
    for (Lba l = 0; l < logicalPages_; ++l) {
        const std::uint64_t phys = map_[l];
        if (phys == kUnmapped)
            continue;
        ++valid;
        if (state_[phys] != 1)
            panic("FTL maps an LBA to a non-valid page");
        if (owner_[phys] != l)
            panic("FTL reverse map mismatch");
    }
    std::uint64_t valid_pages = 0;
    for (const std::uint8_t s : state_)
        valid_pages += s == 1;
    if (valid_pages != valid)
        panic("FTL valid page count mismatch");
}

} // namespace flashcache
