/**
 * @file
 * A page-mapped flash translation layer: flash as a solid-state
 * disk, the alternative design the paper argues *against* in section
 * 2.2 (eNVy [26] and flash file systems).
 *
 * Unlike the disk cache, an SSD owns the only copy of the data: it
 * can never evict, so garbage collection must always relocate valid
 * pages, and the device must keep headroom (overprovisioning) or GC
 * overhead explodes — the eNVy study could only use 80% of its
 * capacity (Figure 1(b)). The mapping table is also mandatory DRAM
 * state for the whole logical space, which is the metadata overhead
 * argument of section 2.2.
 *
 * Implemented to make the paper's motivating comparison executable:
 * bench/motivation_ssd_vs_cache pits this FTL against the flash disk
 * cache on the same device and workload.
 */

#ifndef FLASHCACHE_SSD_FTL_HH
#define FLASHCACHE_SSD_FTL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "controller/memory_controller.hh"
#include "util/types.hh"

namespace flashcache {

namespace obs {
class MetricRegistry;
} // namespace obs

/** FTL statistics. */
struct FtlStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t gcPageCopies = 0;
    std::uint64_t gcErases = 0;
    Seconds gcTime = 0.0;
    Seconds busyTime = 0.0;
    std::uint64_t uncorrectableReads = 0;

    /** GC work relative to useful work, the Figure 1(b) metric. */
    double
    gcOverheadFraction() const
    {
        const Seconds useful = busyTime - gcTime;
        return useful > 0.0 ? gcTime / useful : 0.0;
    }
};

/**
 * Page-mapped FTL over a FlashMemoryController.
 */
class FlashTranslationLayer
{
  public:
    /**
     * @param controller The flash stack to own.
     * @param logical_pages Exported logical capacity; must leave
     *        overprovisioning headroom below the physical capacity.
     * @param ecc_strength Uniform ECC strength for all pages.
     */
    FlashTranslationLayer(FlashMemoryController& controller,
                          std::uint64_t logical_pages,
                          std::uint8_t ecc_strength = 4);

    /** Exported capacity in pages. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** Physical capacity in pages. */
    std::uint64_t physicalPages() const;

    /** Fraction of physical space exported (1 - overprovisioning). */
    double
    utilization() const
    {
        return static_cast<double>(logicalPages_) /
            static_cast<double>(physicalPages());
    }

    /** Read one logical page. @return latency. */
    Seconds read(Lba lba);

    /** Write one logical page (out-of-place). @return latency,
     *  excluding background GC time (tracked in stats). */
    Seconds write(Lba lba);

    const FtlStats& stats() const { return stats_; }

    /** Register `ftl.*` metrics (incl. write amplification). */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /**
     * DRAM bytes the mapping table needs — the section 2.2 metadata
     * argument: proportional to the full logical space, resident at
     * all times.
     */
    std::uint64_t mappingTableBytes() const;

    /** Consistency check; panics on violation. */
    void checkInvariants() const;

  private:
    static constexpr std::uint64_t kUnmapped = ~0ull;
    static constexpr std::uint32_t kNoBlock = ~0u;

    std::uint64_t
    pageId(const PageAddress& a) const
    {
        return (static_cast<std::uint64_t>(a.block) * framesPerBlock_ +
                a.frame) * 2 + a.sub;
    }

    PageAddress
    addressOf(std::uint64_t id) const
    {
        PageAddress a;
        a.sub = static_cast<std::uint8_t>(id & 1);
        const std::uint64_t fid = id >> 1;
        a.frame = static_cast<std::uint16_t>(fid % framesPerBlock_);
        a.block = static_cast<std::uint32_t>(fid / framesPerBlock_);
        return a;
    }

    /** Next free physical page, garbage collecting as needed. */
    std::optional<std::uint64_t> allocate();

    /** Reclaim the block with the most invalid pages. */
    bool garbageCollect();

    void programInto(std::uint64_t phys, Lba lba);

    FlashMemoryController* ctrl_;
    std::uint64_t logicalPages_;
    std::uint8_t eccStrength_;
    std::uint32_t framesPerBlock_;
    std::uint32_t numBlocks_;

    /** LBA -> physical page id (the page-mapped table). */
    std::vector<std::uint64_t> map_;
    /** Physical page id -> owning LBA, kUnmapped when free/invalid. */
    std::vector<std::uint64_t> owner_;
    /** Physical page state mirrors: 0 free, 1 valid, 2 invalid. */
    std::vector<std::uint8_t> state_;
    std::vector<std::uint16_t> invalidPerBlock_;
    std::vector<std::uint16_t> validPerBlock_;

    struct Cursor
    {
        std::uint32_t block = kNoBlock;
        std::uint16_t frame = 0;
        std::uint8_t sub = 0;
    } cursor_;
    std::vector<std::uint32_t> freeBlocks_;

    FtlStats stats_;
};

} // namespace flashcache

#endif // FLASHCACHE_SSD_FTL_HH
