/**
 * @file
 * Generic O(1) LRU ordering used by the primary disk cache, the
 * per-region block replacement lists, and the workload stack-
 * distance analyzer.
 */

#ifndef FLASHCACHE_CORE_LRU_HH
#define FLASHCACHE_CORE_LRU_HH

#include <list>
#include <unordered_map>

#include "util/log.hh"

namespace flashcache {

/**
 * An ordered set of keys where touch() moves a key to the MRU end
 * and lru() reads the coldest key. All operations are O(1).
 */
template <typename Key>
class LruList
{
  public:
    bool empty() const { return order_.empty(); }
    std::size_t size() const { return order_.size(); }

    bool contains(const Key& k) const { return index_.count(k) != 0; }

    /** Insert as MRU, or move an existing key to MRU. */
    void
    touch(const Key& k)
    {
        auto it = index_.find(k);
        if (it != index_.end())
            order_.erase(it->second);
        order_.push_front(k);
        index_[k] = order_.begin();
    }

    /** Insert as LRU (coldest) without affecting existing entries. */
    void
    insertCold(const Key& k)
    {
        auto it = index_.find(k);
        if (it != index_.end())
            order_.erase(it->second);
        order_.push_back(k);
        index_[k] = std::prev(order_.end());
    }

    /** Remove a key if present. @return true when it was present. */
    bool
    erase(const Key& k)
    {
        auto it = index_.find(k);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    /** The least recently used key. @pre !empty() */
    const Key&
    lru() const
    {
        if (order_.empty())
            panic("lru() on empty LruList");
        return order_.back();
    }

    /** The most recently used key. @pre !empty() */
    const Key&
    mru() const
    {
        if (order_.empty())
            panic("mru() on empty LruList");
        return order_.front();
    }

    /** Remove and return the LRU key. @pre !empty() */
    Key
    popLru()
    {
        Key k = lru();
        erase(k);
        return k;
    }

    /** Iterate from MRU to LRU. */
    auto begin() const { return order_.begin(); }
    auto end() const { return order_.end(); }

    void
    clear()
    {
        order_.clear();
        index_.clear();
    }

  private:
    std::list<Key> order_;
    std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_LRU_HH
