/**
 * @file
 * LRU orderings used by the primary disk cache, the per-region block
 * replacement lists, and the workload stack-distance analyzer.
 *
 * Three implementations with one semantic contract (touch() moves a
 * key to the MRU end, lru() reads the coldest key):
 *
 *  - LruList<Key>: the seed std::list + unordered_map implementation,
 *    retained as the differential-test oracle and bench baseline.
 *  - IntrusiveLru: index-linked array over dense uint32 ids (block
 *    numbers); touch() is two loads and four stores — no hashing, no
 *    allocation. Backs Region::lruBlocks in the flash cache.
 *  - KeyedLru<Key>: sparse keys (LBAs) resolved through an
 *    open-addressed slot index onto intrusive links; allocation-free
 *    in steady state once reserved. Backs the PDC LRUs.
 */

#ifndef FLASHCACHE_CORE_LRU_HH
#define FLASHCACHE_CORE_LRU_HH

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <list>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/log.hh"

namespace flashcache {

/**
 * An ordered set of keys where touch() moves a key to the MRU end
 * and lru() reads the coldest key. All operations are O(1), but each
 * carries a hash lookup and inserts allocate a list node. Retained
 * as the reference implementation; the serving hot paths use
 * IntrusiveLru / KeyedLru below.
 */
template <typename Key>
class LruList
{
  public:
    bool empty() const { return order_.empty(); }
    std::size_t size() const { return order_.size(); }

    bool contains(const Key& k) const { return index_.count(k) != 0; }

    /** Insert as MRU, or move an existing key to MRU. */
    void
    touch(const Key& k)
    {
        auto it = index_.find(k);
        if (it != index_.end()) {
            // splice() relinks the existing node: the iterator stays
            // valid, so no index update (and no allocation) needed.
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        order_.push_front(k);
        index_.emplace(k, order_.begin());
    }

    /** Insert as LRU (coldest) without affecting existing entries. */
    void
    insertCold(const Key& k)
    {
        auto it = index_.find(k);
        if (it != index_.end()) {
            order_.splice(order_.end(), order_, it->second);
            return;
        }
        order_.push_back(k);
        index_.emplace(k, std::prev(order_.end()));
    }

    /** Remove a key if present. @return true when it was present. */
    bool
    erase(const Key& k)
    {
        auto it = index_.find(k);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    /** The least recently used key. @pre !empty() */
    const Key&
    lru() const
    {
        if (order_.empty())
            panic("lru() on empty LruList");
        return order_.back();
    }

    /** The most recently used key. @pre !empty() */
    const Key&
    mru() const
    {
        if (order_.empty())
            panic("mru() on empty LruList");
        return order_.front();
    }

    /** Remove and return the LRU key. @pre !empty() */
    Key
    popLru()
    {
        Key k = lru();
        erase(k);
        return k;
    }

    /** Iterate from MRU to LRU. */
    auto begin() const { return order_.begin(); }
    auto end() const { return order_.end(); }

    void
    clear()
    {
        order_.clear();
        index_.clear();
    }

  private:
    std::list<Key> order_;
    std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

/**
 * LRU ordering over dense ids in [0, capacity): prev/next are
 * uint32 indices into one slab, keyed directly by the id. touch()
 * of a present id is two loads and four stores — no hashing, no
 * allocation, no pointer chasing through heap nodes.
 */
class IntrusiveLru
{
  public:
    static constexpr std::uint32_t kNull = ~0u;

    IntrusiveLru() = default;

    explicit IntrusiveLru(std::uint32_t capacity) { resize(capacity); }

    /** Ids must stay below the capacity; growing keeps membership. */
    void
    resize(std::uint32_t capacity)
    {
        nodes_.resize(capacity);
    }

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    bool
    contains(std::uint32_t id) const
    {
        return id < nodes_.size() && nodes_[id].in;
    }

    /** Insert as MRU, or move an existing id to MRU. */
    void
    touch(std::uint32_t id)
    {
        Node& n = node(id);
        if (n.in) {
            if (head_ == id)
                return;
            unlink(n);
        } else {
            n.in = true;
            ++size_;
        }
        n.prev = kNull;
        n.next = head_;
        if (head_ != kNull)
            nodes_[head_].prev = id;
        head_ = id;
        if (tail_ == kNull)
            tail_ = id;
    }

    /** Insert as LRU (coldest) without affecting existing entries. */
    void
    insertCold(std::uint32_t id)
    {
        Node& n = node(id);
        if (n.in) {
            if (tail_ == id)
                return;
            unlink(n);
        } else {
            n.in = true;
            ++size_;
        }
        n.next = kNull;
        n.prev = tail_;
        if (tail_ != kNull)
            nodes_[tail_].next = id;
        tail_ = id;
        if (head_ == kNull)
            head_ = id;
    }

    /** Remove an id if present. @return true when it was present. */
    bool
    erase(std::uint32_t id)
    {
        if (!contains(id))
            return false;
        Node& n = nodes_[id];
        unlink(n);
        n.in = false;
        n.prev = n.next = kNull;
        --size_;
        return true;
    }

    /** The least recently used id. @pre !empty() */
    std::uint32_t
    lru() const
    {
        if (empty())
            panic("lru() on empty IntrusiveLru");
        return tail_;
    }

    /** The most recently used id. @pre !empty() */
    std::uint32_t
    mru() const
    {
        if (empty())
            panic("mru() on empty IntrusiveLru");
        return head_;
    }

    /** Remove and return the LRU id. @pre !empty() */
    std::uint32_t
    popLru()
    {
        const std::uint32_t id = lru();
        erase(id);
        return id;
    }

    void
    clear()
    {
        for (std::uint32_t id = head_; id != kNull;) {
            Node& n = nodes_[id];
            const std::uint32_t next = n.next;
            n.in = false;
            n.prev = n.next = kNull;
            id = next;
        }
        head_ = tail_ = kNull;
        size_ = 0;
    }

    /** Forward iteration from MRU to LRU, yielding ids. */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = std::uint32_t;
        using difference_type = std::ptrdiff_t;
        using pointer = const std::uint32_t*;
        using reference = std::uint32_t;

        const_iterator() = default;

        const_iterator(const IntrusiveLru* l, std::uint32_t id)
            : l_(l), id_(id)
        {
        }

        std::uint32_t operator*() const { return id_; }

        const_iterator&
        operator++()
        {
            id_ = l_->nodes_[id_].next;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++*this;
            return old;
        }

        bool
        operator!=(const const_iterator& o) const
        {
            return id_ != o.id_;
        }

        bool
        operator==(const const_iterator& o) const
        {
            return id_ == o.id_;
        }

      private:
        const IntrusiveLru* l_ = nullptr;
        std::uint32_t id_ = kNull;
    };

    const_iterator begin() const { return {this, head_}; }
    const_iterator end() const { return {this, kNull}; }

  private:
    struct Node
    {
        std::uint32_t prev = kNull;
        std::uint32_t next = kNull;
        bool in = false;
    };

    Node&
    node(std::uint32_t id)
    {
        if (id >= nodes_.size())
            panic("IntrusiveLru id beyond capacity");
        return nodes_[id];
    }

    void
    unlink(Node& n)
    {
        if (n.prev != kNull)
            nodes_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNull)
            nodes_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    std::vector<Node> nodes_;
    std::uint32_t head_ = kNull;
    std::uint32_t tail_ = kNull;
    std::size_t size_ = 0;
};

/**
 * LRU ordering over sparse unsigned keys (LBAs): an open-addressed
 * slot index (linear probing, backward-shift deletion) resolves the
 * key to a slot once, and the recency links are intrusive on the
 * slot table. After reserve(), steady-state operation allocates
 * nothing; slot and index storage grow geometrically otherwise.
 */
template <typename Key>
class KeyedLru
{
    static_assert(std::is_unsigned_v<Key>,
                  "KeyedLru keys must be unsigned integers");

  public:
    static constexpr std::uint32_t kNull = ~0u;

    KeyedLru() { rehash(kMinIndex); }

    /** Pre-size for n keys so steady state never allocates. */
    void
    reserve(std::size_t n)
    {
        slots_.reserve(n);
        freeSlots_.reserve(n);
        std::size_t want = kMinIndex;
        while (n + n / 2 >= want)
            want <<= 1;
        if (want > index_.size())
            rehash(want);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    bool
    contains(const Key& k) const
    {
        return findIndex(k) != npos;
    }

    /** Insert as MRU, or move an existing key to MRU. */
    void
    touch(const Key& k)
    {
        const std::size_t pos = findIndex(k);
        if (pos != npos) {
            const std::uint32_t s = index_[pos];
            if (head_ == s)
                return;
            unlink(s);
            linkFront(s);
            return;
        }
        linkFront(insertSlot(k));
    }

    /** Insert as LRU (coldest) without affecting existing entries. */
    void
    insertCold(const Key& k)
    {
        const std::size_t pos = findIndex(k);
        if (pos != npos) {
            const std::uint32_t s = index_[pos];
            if (tail_ == s)
                return;
            unlink(s);
            linkBack(s);
            return;
        }
        linkBack(insertSlot(k));
    }

    /** Remove a key if present. @return true when it was present. */
    bool
    erase(const Key& k)
    {
        const std::size_t pos = findIndex(k);
        if (pos == npos)
            return false;
        const std::uint32_t s = index_[pos];
        unlink(s);
        freeSlots_.push_back(s);
        indexErase(pos);
        --size_;
        return true;
    }

    /** The least recently used key. @pre !empty() */
    const Key&
    lru() const
    {
        if (empty())
            panic("lru() on empty KeyedLru");
        return slots_[tail_].key;
    }

    /** The most recently used key. @pre !empty() */
    const Key&
    mru() const
    {
        if (empty())
            panic("mru() on empty KeyedLru");
        return slots_[head_].key;
    }

    /** Remove and return the LRU key. @pre !empty() */
    Key
    popLru()
    {
        const Key k = lru();
        erase(k);
        return k;
    }

    void
    clear()
    {
        slots_.clear();
        freeSlots_.clear();
        std::fill(index_.begin(), index_.end(), kNull);
        head_ = tail_ = kNull;
        size_ = 0;
    }

  private:
    struct Slot
    {
        Key key;
        std::uint32_t prev;
        std::uint32_t next;
    };

    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);
    static constexpr std::size_t kMinIndex = 16;

    std::size_t
    homeOf(const Key& k) const
    {
        return static_cast<std::size_t>(
                   (static_cast<std::uint64_t>(k) *
                    0x9E3779B97F4A7C15ull) >> 32) &
            (index_.size() - 1);
    }

    /** Index position holding the key, or npos. */
    std::size_t
    findIndex(const Key& k) const
    {
        const std::size_t mask = index_.size() - 1;
        for (std::size_t i = homeOf(k); index_[i] != kNull;
             i = (i + 1) & mask) {
            if (slots_[index_[i]].key == k)
                return i;
        }
        return npos;
    }

    std::uint32_t
    insertSlot(const Key& k)
    {
        if ((size_ + 1) + (size_ + 1) / 2 >= index_.size())
            rehash(index_.size() * 2);
        std::uint32_t s;
        if (!freeSlots_.empty()) {
            s = freeSlots_.back();
            freeSlots_.pop_back();
            slots_[s].key = k;
        } else {
            s = static_cast<std::uint32_t>(slots_.size());
            slots_.push_back({k, kNull, kNull});
        }
        const std::size_t mask = index_.size() - 1;
        std::size_t i = homeOf(k);
        while (index_[i] != kNull)
            i = (i + 1) & mask;
        index_[i] = s;
        ++size_;
        return s;
    }

    /** Backward-shift deletion keeps probes tombstone-free. */
    void
    indexErase(std::size_t i)
    {
        const std::size_t mask = index_.size() - 1;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (index_[j] == kNull)
                break;
            const std::size_t h = homeOf(slots_[index_[j]].key);
            // Move j's entry into the hole unless its home lies in
            // the cyclic interval (i, j] — then it is already as
            // close to home as it can get.
            const bool home_between =
                i < j ? (h > i && h <= j) : (h > i || h <= j);
            if (!home_between) {
                index_[i] = index_[j];
                i = j;
            }
        }
        index_[i] = kNull;
    }

    void
    rehash(std::size_t buckets)
    {
        index_.assign(buckets, kNull);
        const std::size_t mask = buckets - 1;
        // Reinsert every live slot (walk the recency list so freed
        // slots are skipped).
        for (std::uint32_t s = head_; s != kNull; s = slots_[s].next) {
            std::size_t i = homeOf(slots_[s].key);
            while (index_[i] != kNull)
                i = (i + 1) & mask;
            index_[i] = s;
        }
    }

    void
    unlink(std::uint32_t s)
    {
        Slot& n = slots_[s];
        if (n.prev != kNull)
            slots_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNull)
            slots_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    void
    linkFront(std::uint32_t s)
    {
        Slot& n = slots_[s];
        n.prev = kNull;
        n.next = head_;
        if (head_ != kNull)
            slots_[head_].prev = s;
        head_ = s;
        if (tail_ == kNull)
            tail_ = s;
    }

    void
    linkBack(std::uint32_t s)
    {
        Slot& n = slots_[s];
        n.next = kNull;
        n.prev = tail_;
        if (tail_ != kNull)
            slots_[tail_].next = s;
        tail_ = s;
        if (head_ == kNull)
            head_ = s;
    }

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<std::uint32_t> index_;
    std::uint32_t head_ = kNull;
    std::uint32_t tail_ = kNull;
    std::size_t size_ = 0;
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_LRU_HH
