#include "core/flash_cache.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"
#include "util/serialize.hh"

namespace flashcache {

FlashCache::FlashCache(FlashMemoryController& controller,
                       BackingStore& store,
                       const FlashCacheConfig& config)
    // fchtBuckets == 0 passes straight through: the open-addressed
    // table's auto mode (every slot a home position) replaces the
    // seed's capacity-derived bucket-count formula. An explicit
    // bucket count still quantizes homes for the section 3.1 sweep.
    : ctrl_(&controller), store_(&store), config_(config),
      fcht_(config.fchtBuckets)
{
    const FlashGeometry& geom = ctrl_->device().geometry();
    framesPerBlock_ = geom.framesPerBlock;
    numBlocks_ = geom.numBlocks;

    if (config_.realData) {
        if (!ctrl_->device().storesData())
            fatal("realData mode requires a store_data FlashDevice");
        payloadStore_ = dynamic_cast<PayloadBackingStore*>(store_);
        if (!payloadStore_)
            fatal("realData mode requires a PayloadBackingStore");
    }

    fpst_.resize(static_cast<std::size_t>(numBlocks_) * framesPerBlock_ *
                 2);
    for (FpstEntry& e : fpst_)
        e.eccStrength = config_.initialEccStrength;
    fbst_.resize(numBlocks_);

    // Size every hot-path structure up front so steady-state serving
    // never allocates: LRU slabs and GC bucket heads cover all
    // blocks, the free pools never regrow, and one page workspace
    // serves every relocate/flush copy.
    gcPrev_.assign(numBlocks_, kNoBlock);
    gcNext_.assign(numBlocks_, kNoBlock);
    for (Region& reg : regions_) {
        reg.lruBlocks.resize(numBlocks_);
        reg.gcBucketHead.assign(2ull * framesPerBlock_ + 1, kNoBlock);
        reg.freeBlocks.reserve(numBlocks_);
    }
    if (config_.realData)
        pageBuf_.resize(geom.pageDataBytes);
    pendingRetire_.reserve(numBlocks_);

    std::uint32_t read_blocks = config_.splitRegions
        ? static_cast<std::uint32_t>(
              std::lround(config_.readRegionFraction * numBlocks_))
        : numBlocks_;
    if (config_.splitRegions) {
        read_blocks = std::clamp<std::uint32_t>(read_blocks, 2,
                                                numBlocks_ - 2);
        if (numBlocks_ < 4)
            fatal("split flash cache needs at least 4 blocks");
    }

    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (ctrl_->device().isFactoryBad(b)) {
            // Shipped bad: never joins a region (section 5.2's
            // retirement, applied at format time).
            fbst_[b].retired = true;
            ++stats_.retiredBlocks;
            continue;
        }
        const int r = (config_.splitRegions && b >= read_blocks) ? kWrite
                                                                 : kRead;
        fbst_[b].region = static_cast<std::int8_t>(r);
        regions_[r].freeBlocks.push_back(b);
        ++regions_[r].ownedBlocks;
    }
    if (regions_[kRead].ownedBlocks < 2 ||
        (config_.splitRegions && regions_[kWrite].ownedBlocks < 2)) {
        fatal("too many factory bad blocks for a usable cache");
    }
}

void
FlashCache::setTracer(obs::Tracer* tracer)
{
    tracer_ = tracer;
    ctrl_->setTracer(tracer);
}

void
FlashCache::registerMetrics(obs::MetricRegistry& reg) const
{
    const FlashCacheStats* st = &stats_;

    reg.ratio("cache.read", "flash cache reads", &st->fgst.reads);
    reg.ratio("cache.write", "flash cache write-backs",
              &st->fgst.writes);
    reg.gauge("cache.recent_miss_rate", "FGST EWMA miss rate",
              [st] { return st->fgst.recentMissRate(); });
    reg.gauge("cache.avg_hit_latency", "FGST t_hit seconds",
              [st] { return st->fgst.avgHitLatency(); });
    reg.gauge("cache.avg_miss_penalty", "FGST t_miss seconds",
              [st] { return st->fgst.avgMissPenalty(); });
    reg.gauge("cache.marginal_hit_fraction",
              "recent hits landing on cold pages",
              [st] { return st->fgst.marginalHitFraction(); });

    reg.gauge("cache.occupancy", "valid fraction of capacity",
              [this] { return occupancy(); });
    reg.gauge("cache.occupancy_read_region",
              "valid fraction of the read region",
              [this] { return regionOccupancy(kRead); });
    reg.gauge("cache.occupancy_write_region",
              "valid fraction of the write region",
              [this] { return regionOccupancy(kWrite); });
    reg.gauge("cache.live_blocks", "blocks not yet retired",
              [this] { return static_cast<double>(liveBlocks()); });

    reg.counter("cache.gc_runs", "garbage collections", &st->gcRuns);
    reg.counter("cache.gc_copies", "pages relocated by GC",
                &st->gcPageCopies);
    reg.counter("cache.gc_erases", "blocks erased by GC",
                &st->gcErases);
    reg.counter("cache.gc_time", "GC busy seconds", &st->gcTime);
    reg.gauge("cache.gc_overhead", "GC share of flash busy time",
              [this] { return gcOverheadFraction(); });
    reg.gauge("cache.gc_copies_per_erase",
              "GC efficiency: relocations per reclaimed block", [st] {
                  return st->gcErases ? static_cast<double>(
                      st->gcPageCopies) /
                      static_cast<double>(st->gcErases) : 0.0;
              });
    reg.gauge("cache.write_amplification",
              "flash programs per host write-back", [this] {
                  const std::uint64_t host =
                      stats_.fgst.writes.total();
                  return host ? static_cast<double>(
                      ctrl_->stats().writes) /
                      static_cast<double>(host) : 0.0;
              });

    reg.counter("cache.evictions", "block evictions",
                &st->evictions);
    reg.counter("cache.eviction_flushes",
                "dirty pages flushed to disk", &st->evictionFlushes);
    reg.counter("cache.eviction_time", "eviction busy seconds",
                &st->evictionTime);
    reg.counter("cache.wear_migrations",
                "section 3.6 newest-block swaps",
                &st->wearMigrations);
    reg.counter("cache.ecc_reconfigs", "ECC strength increases",
                &st->eccReconfigs);
    reg.counter("cache.density_reconfigs", "MLC->SLC switches",
                &st->densityReconfigs);
    reg.counter("cache.policy_ecc_choices",
                "section 5.2.1 policy picks: stronger ECC",
                &st->policyEccChoices);
    reg.counter("cache.policy_density_choices",
                "section 5.2.1 policy picks: density switch",
                &st->policyDensityChoices);
    reg.counter("cache.hot_migrations", "read-hot SLC migrations",
                &st->hotMigrations);
    reg.counter("cache.retired_blocks", "blocks retired",
                &st->retiredBlocks);
    reg.counter("cache.uncorrectable", "uncorrectable reads",
                &st->uncorrectableReads);
    reg.counter("cache.data_loss_pages", "dirty pages lost to wear",
                &st->dataLossPages);
    reg.counter("cache.ecc_retry_reads",
                "transient-error re-reads", &st->eccRetryReads);
    reg.gauge("cache.ecc_retry_rate",
              "re-reads per flash cache read", [this] {
                  const std::uint64_t n = stats_.fgst.reads.total();
                  return n ? static_cast<double>(
                      stats_.eccRetryReads) /
                      static_cast<double>(n) : 0.0;
              });
    reg.gauge("cache.reconfig_rate",
              "ECC + density reconfigs per flash cache read", [this] {
                  const std::uint64_t n = stats_.fgst.reads.total();
                  return n ? static_cast<double>(
                      stats_.eccReconfigs + stats_.densityReconfigs) /
                      static_cast<double>(n) : 0.0;
              });
    reg.counter("cache.reconfig_time",
                "density/hot migration copy seconds",
                &st->reconfigTime);
    reg.counter("cache.busy", "flash busy seconds incl. GC",
                &st->flashBusyTime);

    reg.counter("fault.program_fail_reprograms",
                "pages re-programmed after a program-status failure",
                &st->programFailReprograms);
    reg.counter("fault.erase_fail_retirements",
                "blocks retired by an erase failure",
                &st->eraseFailRetirements);
    reg.counter("fault.disk_fill_failures",
                "miss fills abandoned after disk retry exhaustion",
                &st->diskFillFailures);
    reg.counter("fault.disk_flush_failures",
                "dirty flushes lost to disk faults",
                &st->diskFlushFailures);

    reg.counter("recovery.scanned_pages",
                "programmed pages examined by recover()",
                &st->recovery.scannedPages);
    reg.counter("recovery.torn_pages",
                "pages rejected by the OOB CRC (torn/partial)",
                &st->recovery.tornPages);
    reg.counter("recovery.duplicate_pages",
                "older copies of duplicate tags discarded",
                &st->recovery.duplicatePages);
    reg.counter("recovery.stale_pages",
                "copies dropped by the disk generation tag",
                &st->recovery.stalePages);
    reg.counter("recovery.uncorrectable_pages",
                "candidates failing the validation read",
                &st->recovery.uncorrectablePages);
    reg.counter("recovery.recovered_pages",
                "live pages reinstated by recover()",
                &st->recovery.recoveredPages);
    reg.counter("recovery.recovered_dirty",
                "recovered pages still marked dirty",
                &st->recovery.recoveredDirty);
    reg.counter("recovery.erased_blocks",
                "garbage blocks erased during recovery",
                &st->recovery.erasedBlocks);
    reg.counter("recovery.scan_seconds",
                "simulated scan + validation time",
                &st->recovery.scanTime);
}

double
FlashCache::regionOccupancy(int region) const
{
    const Region& reg = regions_[region];
    const double slots = static_cast<double>(reg.ownedBlocks) *
        framesPerBlock_ * 2;
    return slots > 0.0
        ? static_cast<double>(reg.validCount) / slots : 0.0;
}

int
FlashCache::regionOf(std::uint32_t block) const
{
    const int r = fbst_[block].region;
    if (r < 0)
        panic("block has no owning region");
    return r;
}

std::uint32_t
FlashCache::blockPageSlots(std::uint32_t block) const
{
    const FlashDevice& dev = ctrl_->device();
    std::uint32_t slots = 0;
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f)
        slots += dev.frameMode(block, f) == DensityMode::MLC ? 2 : 1;
    return slots;
}

bool
FlashCache::cursorNext(Region::Cursor& cur) const
{
    const FlashDevice& dev = ctrl_->device();
    if (cur.sub == 0 &&
        dev.frameMode(cur.block, cur.frame) == DensityMode::MLC) {
        cur.sub = 1;
    } else {
        cur.sub = 0;
        ++cur.frame;
    }
    return cur.frame < framesPerBlock_;
}

std::optional<std::uint32_t>
FlashCache::takeFreeBlock(int region, bool want_slc, bool background)
{
    Region& reg = regions_[region];
    if (reg.freeBlocks.empty())
        return std::nullopt;

    FlashDevice& dev = ctrl_->device();

    // Prefer a block already formatted in the wanted density to
    // avoid a reformat erase.
    std::size_t pick = reg.freeBlocks.size() - 1;
    for (std::size_t i = reg.freeBlocks.size(); i-- > 0;) {
        const std::uint32_t b = reg.freeBlocks[i];
        const bool all_slc = fbst_[b].slcFrames == framesPerBlock_;
        if (want_slc == all_slc) {
            pick = i;
            break;
        }
    }
    const std::uint32_t block = reg.freeBlocks[pick];
    // Swap-and-pop: free-pool order carries no meaning, so the O(n)
    // middle-erase is not worth paying.
    reg.freeBlocks[pick] = reg.freeBlocks.back();
    reg.freeBlocks.pop_back();

    if (want_slc && fbst_[block].slcFrames != framesPerBlock_) {
        for (std::uint16_t f = 0; f < framesPerBlock_; ++f)
            dev.requestFrameMode(block, f, DensityMode::SLC);
        Seconds& sink = background ? stats_.gcTime : stats_.evictionTime;
        if (!eraseBlockTracked(block, sink)) {
            // Reformat erase failed: the block just retired itself;
            // try the next free block (recursion bounded by the free
            // list length).
            return takeFreeBlock(region, want_slc, background);
        }
    }
    return block;
}

std::optional<std::uint64_t>
FlashCache::allocateSlot(int region, bool want_slc, bool background)
{
    Region& reg = regions_[region];
    Region::Cursor& cur = reg.cursor[want_slc ? 1 : 0];

    for (int guard = 0; guard < 1 << 20; ++guard) {
        if (cur.block == kNoBlock) {
            const auto blk = takeFreeBlock(region, want_slc, background);
            if (!blk)
                return std::nullopt;
            cur.block = *blk;
            cur.frame = 0;
            cur.sub = 0;
        }
        if (cur.frame >= framesPerBlock_) {
            // Block fully programmed: becomes an eviction candidate.
            lruTouch(reg, cur.block);
            cur.block = kNoBlock;
            continue;
        }
        const PageAddress a{cur.block, cur.frame, cur.sub};
        const std::uint64_t id = pageId(a);
        cursorNext(cur);
        if (fpst_[id].state != PageState::Free)
            continue;
        return id;
    }
    panic("allocateSlot failed to converge");
}

FlashCache::InstallResult
FlashCache::installPage(std::uint64_t id, Lba lba, bool dirty,
                       std::uint8_t access_count,
                       const std::uint8_t* data)
{
    Seconds total = 0.0;
    for (int attempt = 0; ; ++attempt) {
        FpstEntry& e = fpst_[id];
        if (e.state != PageState::Free)
            panic("installPage into non-free slot");

        const PageAddress addr = addressOf(id);
        const FlashDevice& dev = ctrl_->device();
        e.mode = dev.frameMode(addr.block, addr.frame);

        PageDescriptor desc;
        desc.eccStrength = e.eccStrength;
        desc.mode = e.mode;

        ControllerWriteResult wres;
        if (data) {
            OobRecord oob;
            oob.lba = lba;
            oob.seq = nextSeq_++;
            oob.region =
                static_cast<std::uint8_t>(regionOf(addr.block));
            oob.dirty = dirty;
            oob.eccStrength = e.eccStrength;
            wres = ctrl_->writePageReal(addr, desc, data, &oob);
        } else {
            // Keep sequence numbering identical across the modeled
            // and real paths so timing studies agree.
            ++nextSeq_;
            wres = ctrl_->writePage(addr, desc);
        }
        stats_.flashBusyTime += wres.latency;
        total += wres.latency;

        e.lba = lba;
        e.state = PageState::Valid;
        e.accessCount = access_count;
        e.dirty = dirty;

        FbstEntry& fb = fbst_[addr.block];
        ++fb.validPages;
        ++regions_[regionOf(addr.block)].validCount;

        if (!wres.failed)
            return {id, total};

        // Program-status failure: the slot holds garbage. Mark it
        // invalid (normal out-of-place bookkeeping), queue the block
        // for retirement, and re-program on a fresh slot.
        ++stats_.programFailReprograms;
        FC_INSTANT(tracer_, "fault.program_fail_reprogram", "fault");
        invalidatePage(id, false);
        if (std::find(pendingRetire_.begin(), pendingRetire_.end(),
                      addr.block) == pendingRetire_.end()) {
            pendingRetire_.push_back(addr.block);
        }
        if (attempt >= 3)
            fatal("repeated program failures; flash is unusable");
        const int region = regionOf(addr.block);
        const bool want_slc = e.mode == DensityMode::SLC;
        const auto slot = allocateSlot(region, want_slc, false);
        if (!slot)
            fatal("no free slot to re-program after a program "
                  "failure");
        id = *slot;
    }
}

void
FlashCache::invalidatePage(std::uint64_t id, bool drop_mapping)
{
    FpstEntry& e = fpst_[id];
    if (e.state != PageState::Valid)
        panic("invalidatePage on non-valid page");
    if (drop_mapping)
        fcht_.erase(e.lba);
    e.state = PageState::Invalid;
    e.dirty = false;

    const std::uint32_t block = blockOf(id);
    FbstEntry& fb = fbst_[block];
    --fb.validPages;
    ++fb.invalidPages;
    Region& reg = regions_[regionOf(block)];
    --reg.validCount;
    ++reg.invalidCount;
    if (reg.lruBlocks.contains(block)) {
        gcBucketShift(reg, block,
                      static_cast<std::uint16_t>(fb.invalidPages - 1));
    }
}

// ---------------------------------------------------------------------
// GC victim bookkeeping. Every lruBlocks membership change routes
// through lruTouch/lruErase/lruClear so the per-invalid-count buckets
// (links in gcPrev_/gcNext_, heads per region) always hold exactly
// the LRU-resident blocks. invalidatePage moves a block between
// buckets; gcPickVictim then finds the seed-identical victim without
// scanning the region.
// ---------------------------------------------------------------------

void
FlashCache::gcBucketInsert(Region& reg, std::uint32_t block)
{
    const std::uint16_t c = fbst_[block].invalidPages;
    gcPrev_[block] = kNoBlock;
    gcNext_[block] = reg.gcBucketHead[c];
    if (gcNext_[block] != kNoBlock)
        gcPrev_[gcNext_[block]] = block;
    reg.gcBucketHead[c] = block;
    if (c > reg.gcMaxInvalid)
        reg.gcMaxInvalid = c;
}

void
FlashCache::gcBucketRemove(Region& reg, std::uint32_t block)
{
    const std::uint16_t c = fbst_[block].invalidPages;
    if (gcPrev_[block] != kNoBlock)
        gcNext_[gcPrev_[block]] = gcNext_[block];
    else
        reg.gcBucketHead[c] = gcNext_[block];
    if (gcNext_[block] != kNoBlock)
        gcPrev_[gcNext_[block]] = gcPrev_[block];
    gcPrev_[block] = gcNext_[block] = kNoBlock;
}

void
FlashCache::gcBucketShift(Region& reg, std::uint32_t block,
                          std::uint16_t old_count)
{
    // Unlink from the old bucket (the head update needs the index the
    // block was filed under), then insert at the current count.
    if (gcPrev_[block] != kNoBlock)
        gcNext_[gcPrev_[block]] = gcNext_[block];
    else
        reg.gcBucketHead[old_count] = gcNext_[block];
    if (gcNext_[block] != kNoBlock)
        gcPrev_[gcNext_[block]] = gcPrev_[block];
    gcBucketInsert(reg, block);
}

void
FlashCache::lruTouch(Region& reg, std::uint32_t block)
{
    if (!reg.lruBlocks.contains(block))
        gcBucketInsert(reg, block);
    reg.lruBlocks.touch(block);
}

bool
FlashCache::lruErase(Region& reg, std::uint32_t block)
{
    if (!reg.lruBlocks.erase(block))
        return false;
    gcBucketRemove(reg, block);
    return true;
}

void
FlashCache::lruClear(Region& reg)
{
    reg.lruBlocks.clear();
    std::fill(reg.gcBucketHead.begin(), reg.gcBucketHead.end(),
              kNoBlock);
    reg.gcMaxInvalid = 0;
}

std::uint32_t
FlashCache::gcPickVictim(Region& reg)
{
    // Lazy decay of the bucket upper bound: each downward step was
    // paid for by the increment that raised the bound, so the pick
    // stays O(1) amortized.
    std::uint32_t m = reg.gcMaxInvalid;
    while (m > 0 && reg.gcBucketHead[m] == kNoBlock)
        --m;
    reg.gcMaxInvalid = m;
    if (m == 0)
        return kNoBlock;
    const std::uint32_t head = reg.gcBucketHead[m];
    if (gcNext_[head] == kNoBlock)
        return head; // singleton top bucket: exact O(1) pick
    // Tie at the top count: the seed scan returned the first
    // max-count block in MRU order, so replicate that with an
    // early-exit walk.
    for (const std::uint32_t b : reg.lruBlocks) {
        if (fbst_[b].invalidPages == m)
            return b;
    }
    panic("GC bucket holds a block missing from the LRU");
}

bool
FlashCache::eraseBlockTracked(std::uint32_t block, Seconds& time_sink)
{
    // Erases are always charged to a stats sink, never to request
    // latency, so they always queue as background work.
    const sched::BackgroundScope bg(demands_);
    FlashDevice& dev = ctrl_->device();
    FbstEntry& fb = fbst_[block];
    Region& reg = regions_[regionOf(block)];

    if (fb.validPages != 0)
        panic("erasing block with live pages");

    const auto er = ctrl_->eraseBlock(block);
    stats_.flashBusyTime += er.latency;
    time_sink += er.latency;

    if (er.failed) {
        // Erase verify failed: retire in place. The region's capacity
        // shrinks; pages stay unusable (never handed to a free list).
        ++stats_.eraseFailRetirements;
        FC_INSTANT(tracer_, "fault.erase_fail_retire", "fault");
        for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
            for (std::uint8_t sub = 0; sub < 2; ++sub) {
                FpstEntry& e = fpst_[pageId({block, f, sub})];
                e.state = PageState::Free;
                e.lba = kInvalidLba;
                e.dirty = false;
                e.accessCount = 0;
            }
        }
        reg.invalidCount -= fb.invalidPages;
        fb.invalidPages = 0;
        fb.retired = true;
        fb.region = -1;
        --reg.ownedBlocks;
        ++stats_.retiredBlocks;
        return false;
    }

    // Reconcile the FPST with the (possibly changed) frame modes and
    // refresh the block's density statistics.
    std::uint16_t slc = 0;
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        const DensityMode m = dev.frameMode(block, f);
        if (m == DensityMode::SLC)
            ++slc;
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            FpstEntry& e = fpst_[pageId({block, f, sub})];
            e.state = PageState::Free;
            e.lba = kInvalidLba;
            e.dirty = false;
            e.accessCount = 0;
            e.mode = m;
        }
    }
    fb.slcFrames = slc;
    reg.invalidCount -= fb.invalidPages;
    fb.invalidPages = 0;
    return true;
}

ControllerReadResult
FlashCache::readWithRetry(const PageAddress& addr,
                          const PageDescriptor& desc, std::uint8_t* out)
{
    ControllerReadResult res = out
        ? ctrl_->readPageReal(addr, desc, out)
        : ctrl_->readPage(addr, desc);
    stats_.flashBusyTime += res.latency;
    if (res.status == ReadStatus::Uncorrectable &&
        ctrl_->device().hardErrors(addr) <= desc.eccStrength) {
        // Transient flips pushed the word past the code strength;
        // the driver re-reads before giving the page up.
        ++stats_.eccRetryReads;
        FC_INSTANT(tracer_, "ecc.retry", "ecc");
        const ControllerReadResult retry = out
            ? ctrl_->readPageReal(addr, desc, out)
            : ctrl_->readPage(addr, desc);
        stats_.flashBusyTime += retry.latency;
        const Seconds first = res.latency;
        res = retry;
        res.latency += first;
    }
    return res;
}

std::optional<std::uint64_t>
FlashCache::relocatePage(std::uint64_t id, bool want_slc,
                         Seconds& time_sink)
{
    const sched::BackgroundScope bg(demands_);
    FpstEntry& e = fpst_[id];
    const PageAddress addr = addressOf(id);

    PageDescriptor desc;
    desc.eccStrength = e.eccStrength;
    desc.mode = e.mode;

    std::uint8_t* const buf = config_.realData ? pageBuf_.data()
                                               : nullptr;
    const ControllerReadResult res = readWithRetry(addr, desc, buf);
    time_sink += res.latency;

    if (res.status == ReadStatus::Uncorrectable) {
        // The copy is gone; a dirty page means real data loss.
        ++stats_.uncorrectableReads;
        if (e.dirty)
            ++stats_.dataLossPages;
        invalidatePage(id, true);
        return std::nullopt;
    }

    const int region = regionOf(addr.block);
    const auto slot = allocateSlot(region, want_slc, true);
    if (!slot)
        return std::nullopt;

    const Lba lba = e.lba;
    const bool dirty = e.dirty;
    const std::uint8_t count = e.accessCount;

    invalidatePage(id, false); // mapping moves, not dropped
    const auto inst = installPage(*slot, lba, dirty, count, buf);
    time_sink += inst.latency;
    fcht_.update(lba, inst.id);
    ++stats_.gcPageCopies;
    return inst.id;
}

bool
FlashCache::garbageCollect(int region)
{
    Region& reg = regions_[region];

    // Paper section 5.1: only worth reclaiming when a whole block's
    // worth of invalid pages exists somewhere in the region (a
    // mostly-MLC block holds two pages per frame).
    if (reg.invalidCount < 2ull * framesPerBlock_)
        return false;

    const sched::BackgroundScope bg(demands_);
    const std::uint32_t victim = gcPickVictim(reg);
    if (victim == kNoBlock)
        return false;
    const std::uint16_t best = fbst_[victim].invalidPages;

    // A victim that is mostly valid costs more page copies than the
    // space it frees is worth; let the caller evict (flush) instead.
    if (static_cast<double>(best) <
        config_.gcMinInvalidFraction * blockPageSlots(victim)) {
        return false;
    }

    // Section 3.6 applies wear-leveling to "capacity writes" — the
    // out-of-place writes whose reclamation erases blocks — so the
    // GC victim is also checked against the globally newest block.
    if (config_.wearLeveling && tryWearSwap(victim))
        return true;

    FC_SPAN(tracer_, "cache.gc", "gc");
    ++stats_.gcRuns;
    // Relocate every valid page, then erase.
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            const std::uint64_t id = pageId({victim, f, sub});
            if (fpst_[id].state != PageState::Valid)
                continue;
            const bool keep_slc = fpst_[id].mode == DensityMode::SLC;
            const auto moved = relocatePage(id, keep_slc, stats_.gcTime);
            if (!moved && fpst_[id].state == PageState::Valid) {
                // Out of space: flush (if dirty) and drop instead.
                if (fpst_[id].dirty)
                    flushPage(id, stats_.gcTime);
                invalidatePage(id, true);
            }
        }
    }
    lruErase(reg, victim);
    if (eraseBlockTracked(victim, stats_.gcTime)) {
        ++stats_.gcErases;
        reg.freeBlocks.push_back(victim);
    }
    return true;
}

bool
FlashCache::reclaimBlock(std::uint32_t block, bool flush_dirty,
                         Seconds& time_sink)
{
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            const std::uint64_t id = pageId({block, f, sub});
            FpstEntry& e = fpst_[id];
            if (e.state != PageState::Valid)
                continue;
            if (e.dirty && flush_dirty)
                flushPage(id, time_sink);
            invalidatePage(id, true);
        }
    }
    return eraseBlockTracked(block, time_sink);
}

bool
FlashCache::evictBlock(int region)
{
    Region& reg = regions_[region];
    if (reg.lruBlocks.empty())
        return false;

    const sched::BackgroundScope bg(demands_);

    std::uint32_t victim = reg.lruBlocks.lru();

    if (config_.wearLeveling && tryWearSwap(victim))
        return true;

    FC_SPAN(tracer_, "cache.evict", "cache");
    ++stats_.evictions;
    lruErase(reg, victim);
    if (reclaimBlock(victim, true, stats_.evictionTime))
        reg.freeBlocks.push_back(victim);
    return true;
}

bool
FlashCache::tryWearSwap(std::uint32_t victim)
{
    // Section 3.6: if the chosen victim is much more worn than the
    // globally newest block, migrate the newest block's content into
    // the victim and evict (erase) the newest block instead.
    const FlashDevice& dev = ctrl_->device();
    std::uint32_t newest = kNoBlock;
    double newest_wear = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 2; ++r) {
        for (const std::uint32_t b : regions_[r].lruBlocks) {
            const double w = fbst_[b].wearOut(dev.blockEraseCount(b),
                                              config_.wearK1,
                                              config_.wearK2);
            if (w < newest_wear) {
                newest_wear = w;
                newest = b;
            }
        }
    }
    const double victim_wear = fbst_[victim].wearOut(
        dev.blockEraseCount(victim), config_.wearK1, config_.wearK2);
    if (newest == kNoBlock || newest == victim ||
        victim_wear - newest_wear <= config_.wearThreshold) {
        return false;
    }
    wearLevelSwap(victim, newest);
    return true;
}

void
FlashCache::wearLevelSwap(std::uint32_t victim, std::uint32_t newest)
{
    const sched::BackgroundScope bg(demands_);
    // Evict the victim's content, migrate the newest (coldest-wear)
    // block's content into the now-empty victim, then hand the
    // freshly erased newest block to the victim's region.
    const int victim_region = regionOf(victim);
    const int newest_region = regionOf(newest);
    Region& vreg = regions_[victim_region];
    Region& nreg = regions_[newest_region];

    FC_SPAN(tracer_, "cache.wear_swap", "cache");
    ++stats_.evictions;
    ++stats_.wearMigrations;

    lruErase(vreg, victim);
    if (!reclaimBlock(victim, true, stats_.evictionTime)) {
        // The worn victim died on its erase and retired in place;
        // there is no empty block to migrate into, so leave the
        // newest block where it is.
        return;
    }

    // Copy newest's valid pages into the victim block sequentially.
    Region::Cursor cur{victim, 0, 0};
    bool space = true;
    for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
        for (std::uint8_t sub = 0; sub < 2; ++sub) {
            const std::uint64_t id = pageId({newest, f, sub});
            FpstEntry& e = fpst_[id];
            if (e.state != PageState::Valid)
                continue;

            std::uint64_t dst = 0;
            bool have = false;
            while (space) {
                if (cur.frame >= framesPerBlock_) {
                    space = false;
                    break;
                }
                const std::uint64_t cand = pageId(
                    {victim, cur.frame, cur.sub});
                cursorNext(cur);
                if (fpst_[cand].state == PageState::Free) {
                    dst = cand;
                    have = true;
                    break;
                }
            }

            PageDescriptor desc;
            desc.eccStrength = e.eccStrength;
            desc.mode = e.mode;
            std::uint8_t* const buf =
                config_.realData ? pageBuf_.data() : nullptr;
            const auto res = readWithRetry(addressOf(id), desc, buf);
            stats_.evictionTime += res.latency;

            if (res.status == ReadStatus::Uncorrectable || !have) {
                // Flush dirty data rather than lose it; clean pages
                // just drop (they are cache copies).
                if (res.status == ReadStatus::Uncorrectable) {
                    ++stats_.uncorrectableReads;
                    if (e.dirty)
                        ++stats_.dataLossPages;
                } else if (e.dirty) {
                    bool wfail = false;
                    const Seconds flat = config_.realData
                        ? payloadStore_->writeTagged(e.lba, buf,
                                                     nextSeq_++, wfail)
                        : store_->write(e.lba, wfail);
                    FC_LEAF(tracer_, "disk.flush", "disk", flat);
                    stats_.evictionTime += flat;
                    if (wfail) {
                        ++stats_.diskFlushFailures;
                        ++stats_.dataLossPages;
                        FC_INSTANT(tracer_, "fault.disk_flush_fail",
                                   "fault");
                    } else {
                        ++stats_.evictionFlushes;
                    }
                }
                invalidatePage(id, true);
                continue;
            }

            const Lba lba = e.lba;
            const bool dirty = e.dirty;
            const std::uint8_t count = e.accessCount;
            invalidatePage(id, false);
            const auto inst = installPage(dst, lba, dirty, count, buf);
            stats_.evictionTime += inst.latency;
            fcht_.update(lba, inst.id);
            ++stats_.gcPageCopies;
        }
    }

    // The victim block (now holding the migrated content) joins the
    // newest block's region as the most recently used block.
    lruErase(nreg, newest);
    const bool newest_ok = eraseBlockTracked(newest,
                                             stats_.evictionTime);

    // One block moves each way, so ownedBlocks is conserved — unless
    // the newest block's erase failed, in which case it retired (its
    // owner already debited inside eraseBlockTracked) and only the
    // victim changes hands. The victim's freshly installed pages move
    // to the new owner's counters (they were accounted under the old
    // region above).
    fbst_[victim].region = static_cast<std::int8_t>(newest_region);
    if (victim_region != newest_region) {
        vreg.validCount -= fbst_[victim].validPages;
        nreg.validCount += fbst_[victim].validPages;
        vreg.invalidCount -= fbst_[victim].invalidPages;
        nreg.invalidCount += fbst_[victim].invalidPages;
        --vreg.ownedBlocks;
        ++nreg.ownedBlocks;
    }
    lruTouch(nreg, victim);
    if (newest_ok) {
        fbst_[newest].region = static_cast<std::int8_t>(victim_region);
        if (victim_region != newest_region) {
            --nreg.ownedBlocks;
            ++vreg.ownedBlocks;
        }
        vreg.freeBlocks.push_back(newest);
    }
}

void
FlashCache::retireBlock(std::uint32_t block)
{
    const sched::BackgroundScope bg(demands_);
    const int r = regionOf(block);
    Region& reg = regions_[r];

    // A cursor block cannot be retired in place; reset the cursor.
    for (auto& cur : reg.cursor) {
        if (cur.block == block)
            cur.block = kNoBlock;
    }
    lruErase(reg, block);
    const auto it = std::find(reg.freeBlocks.begin(),
                              reg.freeBlocks.end(), block);
    if (it != reg.freeBlocks.end()) {
        *it = reg.freeBlocks.back();
        reg.freeBlocks.pop_back();
    }

    if (reclaimBlock(block, true, stats_.evictionTime)) {
        fbst_[block].retired = true;
        fbst_[block].region = -1;
        --reg.ownedBlocks;
        ++stats_.retiredBlocks;
    }
    // else: the erase itself failed and already retired the block.
}

double
FlashCache::pageAccessFreq(const FpstEntry& e) const
{
    const double denom = static_cast<double>(
        std::max<std::uint64_t>(windowReads_, 256));
    return std::min(1.0, static_cast<double>(e.accessCount) / denom);
}

void
FlashCache::maybeReconfigure(std::uint64_t id,
                             const ControllerReadResult& res)
{
    // Runs after the hit latency is already recorded: any copies it
    // makes are maintenance, invisible to this request's latency.
    const sched::BackgroundScope bg(demands_);
    FpstEntry& e = fpst_[id];

    // Trigger 1 (section 5.2.1): the corrected-error count reached
    // the page's code strength — the next failing cell would be
    // unrecoverable, so reconfigure now. The paper requires errors
    // that "fail consistently due to wear out": transient (soft)
    // flips must not permanently reconfigure the page, so the
    // persistent error count is confirmed against the medium.
    if (config_.adaptiveReconfig && res.status == ReadStatus::Corrected &&
        res.correctedBits >= e.eccStrength &&
        ctrl_->device().hardErrors(addressOf(id)) >= e.eccStrength) {
        ReconfigInputs in;
        in.pageAccessFreq = pageAccessFreq(e);
        in.missRate = stats_.fgst.recentMissRate();
        in.missPenalty = stats_.fgst.missPenalty.count()
            ? stats_.fgst.avgMissPenalty() : milliseconds(4.2);
        in.hitLatency = stats_.fgst.avgHitLatency();
        in.deltaCodeDelay =
            ctrl_->decodeLatency(std::min<unsigned>(e.eccStrength + 1,
                                                    config_.maxEccStrength))
            - ctrl_->decodeLatency(e.eccStrength);
        const FlashTiming& t = ctrl_->device().timing();
        in.deltaSlcGain = t.mlcReadLatency - t.slcReadLatency;
        // The miss cost of losing one page of capacity depends on
        // how alive the capacity margin is: scale the per-page miss
        // share by the fraction of hits still landing on cold pages
        // (near zero for short-tailed workloads whose tail is dead).
        in.deltaMiss = in.missRate *
            (4.0 * stats_.fgst.marginalHitFraction()) /
            static_cast<double>(std::max<std::uint64_t>(capacityPages(),
                                                        1));
        in.canIncreaseEcc = e.eccStrength < config_.maxEccStrength;
        in.canSwitchToSlc = e.mode == DensityMode::MLC;

        const ReconfigCosts costs = ReconfigPolicy::costs(in);
        stats_.faultPageFreq.add(in.pageAccessFreq);
        stats_.faultEccCost.add(costs.strongerEcc);
        stats_.faultDensityCost.add(costs.densitySwitch);

        switch (ReconfigPolicy::onFaultIncrease(in)) {
          case ReconfigDecision::IncreaseEcc:
            ++e.eccStrength;
            ++fbst_[blockOf(id)].totalEcc;
            ++stats_.eccReconfigs;
            ++stats_.policyEccChoices;
            break;
          case ReconfigDecision::SwitchToSlc: {
            const PageAddress addr = addressOf(id);
            ctrl_->device().requestFrameMode(addr.block, addr.frame,
                                             DensityMode::SLC);
            const auto moved = relocatePage(id, true,
                                            stats_.reconfigTime);
            ++stats_.densityReconfigs;
            ++stats_.policyDensityChoices;
            if (!moved && fpst_[id].state == PageState::Valid &&
                e.eccStrength < config_.maxEccStrength) {
                // No SLC slot available; fall back to stronger ECC.
                ++e.eccStrength;
                ++fbst_[blockOf(id)].totalEcc;
            }
            return; // id may be stale after relocation
          }
          case ReconfigDecision::RetireBlock:
            retireBlock(blockOf(id));
            return;
        }
    }

    // Trigger 2 (section 5.2.2): the access counter saturated on an
    // MLC page — migrate it to a fast SLC page.
    if (config_.hotPageMigration && e.mode == DensityMode::MLC &&
        e.accessCount >= config_.accessSaturation) {
        const auto moved = relocatePage(id, true, stats_.reconfigTime);
        if (moved)
            ++stats_.hotMigrations;
    }
}

void
FlashCache::maybeAge()
{
    if (++readsSinceAging_ < config_.agingWindow)
        return;
    readsSinceAging_ = 0;
    for (FpstEntry& e : fpst_)
        e.accessCount = static_cast<std::uint8_t>(e.accessCount >> 1);
    windowReads_ >>= 1;
}

CacheAccessResult
FlashCache::read(Lba lba)
{
    return readImpl(lba, nullptr);
}

CacheAccessResult
FlashCache::readData(Lba lba, std::uint8_t* data)
{
    if (!config_.realData)
        fatal("readData requires realData mode");
    return readImpl(lba, data);
}

CacheAccessResult
FlashCache::readImpl(Lba lba, std::uint8_t* data)
{
    FC_SPAN(tracer_, "cache.read", "cache");
    maybeAge();
    ++windowReads_;

    CacheAccessResult out;
    const std::uint64_t id = fcht_.find(lba);

    if (id != Fcht::npos && fpst_[id].state == PageState::Valid) {
        FpstEntry& e = fpst_[id];
        const PageAddress addr = addressOf(id);
        PageDescriptor desc;
        desc.eccStrength = e.eccStrength;
        desc.mode = e.mode;

        const ControllerReadResult res = readWithRetry(addr, desc, data);

        if (res.status != ReadStatus::Uncorrectable) {
            stats_.fgst.recordHitPageCount(e.accessCount);
            if (e.accessCount < 255)
                ++e.accessCount;
            Region& reg = regions_[regionOf(addr.block)];
            if (reg.lruBlocks.contains(addr.block))
                reg.lruBlocks.touch(addr.block);

            stats_.fgst.recordRead(true);
            stats_.fgst.hitLatency.add(res.latency);
            out.hit = true;
            out.latency = res.latency;
            maybeReconfigure(id, res);
            drainPendingRetires();
            return out;
        }

        // Uncorrectable: the cached copy is lost; fall back to disk.
        ++stats_.uncorrectableReads;
        const bool was_dirty = e.dirty;
        invalidatePage(id, true);
        if (was_dirty)
            ++stats_.dataLossPages;
        out.latency += res.latency;
        const bool persistent = ctrl_->device().hardErrors(addr) >
            desc.eccStrength;
        if (!persistent) {
            // A freak transient double-failure: the medium itself is
            // fine, so no descriptor change is warranted.
        } else if (config_.adaptiveReconfig) {
            // Make the slot safer before its next use.
            if (e.eccStrength < config_.maxEccStrength) {
                ++e.eccStrength;
                ++fbst_[blockOf(id)].totalEcc;
                ++stats_.eccReconfigs;
            } else if (e.mode == DensityMode::MLC) {
                ctrl_->device().requestFrameMode(addr.block, addr.frame,
                                                 DensityMode::SLC);
                ++stats_.densityReconfigs;
            } else {
                retireBlock(addr.block);
            }
        } else {
            // Fixed-strength controller (Figure 12's BCH-1
            // baseline): a page that fails at the only available
            // strength is permanently unusable, so the block is
            // removed (section 5.2).
            retireBlock(addr.block);
        }
    }

    // Miss path: fetch from disk and fill the read region.
    stats_.fgst.recordRead(false);
    FC_INSTANT(tracer_, "cache.miss", "cache");
    bool fill_failed = false;
    const Seconds penalty = data
        ? payloadStore_->readData(lba, data, fill_failed)
        : store_->read(lba, fill_failed);
    FC_LEAF(tracer_, "disk.fill", "disk", penalty);
    stats_.fgst.missPenalty.add(penalty);
    out.latency += penalty;
    if (fill_failed) {
        // The disk's retries were exhausted; serve the failure up the
        // stack rather than caching garbage.
        ++stats_.diskFillFailures;
        FC_INSTANT(tracer_, "fault.disk_fill_fail", "fault");
        drainPendingRetires();
        return out;
    }

    {
        // The fill program happens off the request's critical path
        // (its latency is not charged to the read), so its device
        // ops queue as background work.
        const sched::BackgroundScope bg(demands_);
        const int fill_region = kRead;
        auto slot = allocateSlot(fill_region, false, false);
        for (int attempt = 0; !slot && attempt < 4; ++attempt) {
            if (!garbageCollectIfUseful(fill_region) &&
                !evictBlock(fill_region)) {
                break;
            }
            slot = allocateSlot(fill_region, false, false);
        }
        if (slot) {
            const auto inst = installPage(*slot, lba, false, 1, data);
            fcht_.insert(lba, inst.id);
            replenishReserve(fill_region);
        }
    }
    drainPendingRetires();
    return out;
}

void
FlashCache::replenishReserve(int region)
{
    if (regions_[region].freeBlocks.size() <= 1)
        garbageCollect(region);
}

bool
FlashCache::garbageCollectIfUseful(int region)
{
    // The read region only GCs once enough invalid pages accumulated
    // (capacity below the configured threshold, section 5.1).
    const Region& reg = regions_[region];
    const double total = static_cast<double>(reg.ownedBlocks) *
        framesPerBlock_ * 2;
    if (total <= 0)
        return false;
    if (static_cast<double>(reg.invalidCount) / total <
        config_.readGcInvalidFraction) {
        return false;
    }
    return garbageCollect(region);
}

CacheAccessResult
FlashCache::write(Lba lba)
{
    return writeImpl(lba, nullptr);
}

CacheAccessResult
FlashCache::writeData(Lba lba, const std::uint8_t* data)
{
    if (!config_.realData)
        fatal("writeData requires realData mode");
    return writeImpl(lba, data);
}

CacheAccessResult
FlashCache::writeImpl(Lba lba, const std::uint8_t* data)
{
    FC_SPAN(tracer_, "cache.write", "cache");
    CacheAccessResult out;
    const int wr = config_.splitRegions ? kWrite : kRead;

    const std::uint64_t id = fcht_.find(lba);
    bool invalidated_in_read = false;
    std::uint8_t carried_count = 1;
    if (id != Fcht::npos && fpst_[id].state == PageState::Valid) {
        out.hit = true;
        stats_.fgst.writes.hit();
        const int old_region = regionOf(blockOf(id));
        invalidated_in_read = old_region == kRead && config_.splitRegions;
        // The page's access history survives the out-of-place
        // update; a frequently rewritten page is "frequently
        // accessed" for the section 5.2 heuristics too.
        if (fpst_[id].accessCount < 255)
            carried_count = fpst_[id].accessCount + 1;
        else
            carried_count = 255;
        invalidatePage(id, true);
    } else {
        stats_.fgst.writes.miss();
    }

    auto slot = allocateSlot(wr, false, false);
    for (int attempt = 0; !slot && attempt < 6; ++attempt) {
        // Section 5.1: GC is the common case; eviction only when a
        // block's worth of invalid pages does not exist.
        if (!garbageCollect(wr) && !evictBlock(wr))
            break;
        slot = allocateSlot(wr, false, false);
    }
    if (!slot)
        fatal("write region out of space and unreclaimable");

    const auto inst = installPage(*slot, lba, true, carried_count, data);
    out.latency += inst.latency;
    fcht_.insert(lba, inst.id);

    // Keep a one-block reserve so the next GC has somewhere to
    // relocate valid pages to (GC itself is still on-demand: it
    // only runs when a block's worth of invalid pages exists).
    replenishReserve(wr);

    // Out-of-place writes eat read-region capacity; compact when the
    // invalid fraction passes the threshold (section 5.1).
    if (invalidated_in_read)
        garbageCollectIfUseful(kRead);

    drainPendingRetires();
    return out;
}

bool
FlashCache::flushPage(std::uint64_t id, Seconds& time_sink)
{
    const sched::BackgroundScope bg(demands_);
    // Flushing means reading the flash copy first; an unreadable
    // dirty page is lost for real.
    FpstEntry& e = fpst_[id];
    PageDescriptor desc;
    desc.eccStrength = e.eccStrength;
    desc.mode = e.mode;

    std::uint8_t* const buf = config_.realData ? pageBuf_.data()
                                               : nullptr;
    const auto res = readWithRetry(addressOf(id), desc, buf);
    time_sink += res.latency;
    if (res.status == ReadStatus::Uncorrectable) {
        ++stats_.uncorrectableReads;
        ++stats_.dataLossPages;
        return false;
    }
    bool wfail = false;
    const Seconds wlat = config_.realData
        ? payloadStore_->writeTagged(e.lba, buf, nextSeq_++, wfail)
        : store_->write(e.lba, wfail);
    FC_LEAF(tracer_, "disk.flush", "disk", wlat);
    time_sink += wlat;
    if (wfail) {
        ++stats_.diskFlushFailures;
        ++stats_.dataLossPages;
        FC_INSTANT(tracer_, "fault.disk_flush_fail", "fault");
        return false;
    }
    ++stats_.evictionFlushes;
    return true;
}

void
FlashCache::flushAll()
{
    const sched::BackgroundScope bg(demands_);
    for (std::uint64_t id = 0; id < fpst_.size(); ++id) {
        FpstEntry& e = fpst_[id];
        if (e.state == PageState::Valid && e.dirty) {
            if (flushPage(id, stats_.evictionTime))
                e.dirty = false;
            else
                invalidatePage(id, true); // unreadable: lost
        }
    }
    drainPendingRetires();
}

void
FlashCache::drainPendingRetires()
{
    const sched::BackgroundScope bg(demands_);
    while (!pendingRetire_.empty()) {
        const std::uint32_t b = pendingRetire_.back();
        pendingRetire_.pop_back();
        // Retirement itself can queue more failures; a block may also
        // already be gone by the time its turn comes.
        if (fbst_[b].retired || fbst_[b].region < 0)
            continue;
        FC_INSTANT(tracer_, "fault.block_retire", "fault");
        retireBlock(b);
    }
}

void
FlashCache::recover()
{
    if (!config_.realData || !payloadStore_)
        fatal("recover() requires realData mode (no payloads to scan "
              "otherwise)");
    FC_SPAN(tracer_, "cache.recover", "cache");
    const sched::BackgroundScope bg(demands_);
    FlashDevice& dev = ctrl_->device();
    const FlashGeometry& geom = dev.geometry();

    // Forget everything DRAM held: the tables are rebuilt from the
    // medium alone.
    fcht_ = Fcht(config_.fchtBuckets);
    for (Region& reg : regions_) {
        reg.freeBlocks.clear();
        lruClear(reg);
        for (auto& cur : reg.cursor) {
            cur.block = kNoBlock;
            cur.frame = 0;
            cur.sub = 0;
        }
        reg.ownedBlocks = 0;
        reg.validCount = 0;
        reg.invalidCount = 0;
    }
    pendingRetire_.clear();
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (fbst_[b].retired)
            continue;
        fbst_[b].validPages = 0;
        fbst_[b].invalidPages = 0;
        fbst_[b].totalEcc = 0;
        fbst_[b].region = -1;
    }

    // Per-page scan verdicts: 0 = free, 1 = invalid (torn, duplicate,
    // stale or unreadable), 2 = live.
    std::vector<std::uint8_t> pstate(fpst_.size(), 0);
    struct Winner
    {
        std::uint64_t id;
        OobRecord rec;
    };
    std::unordered_map<Lba, Winner> winners;
    std::vector<std::uint64_t> blockMaxSeq(numBlocks_, 0);
    std::uint64_t maxSeq = 0;

    // Pass 1: read every programmed page's spare area, reject torn
    // pages by the OOB CRC, and resolve duplicate tags by sequence
    // number (out-of-place writes leave superseded copies behind).
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (fbst_[b].retired)
            continue;
        for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
            // An SLC-mode frame (density reconfig / hot migration)
            // has no second MLC page; addressing sub 1 is a fault.
            const std::uint8_t nsub =
                dev.frameMode(b, f) == DensityMode::SLC ? 1 : 2;
            for (std::uint8_t sub = 0; sub < nsub; ++sub) {
                const PageAddress addr{b, f, sub};
                if (!dev.isProgrammed(addr))
                    continue;
                ++stats_.recovery.scannedPages;
                const std::uint64_t id = pageId(addr);
                const PageBytes pb = dev.pageData(addr);
                OobRecord rec;
                if (!pb ||
                    pb.size < geom.pageDataBytes + geom.pageSpareBytes ||
                    !parseOobRecord(pb.data + geom.pageDataBytes,
                                    geom.pageSpareBytes, rec)) {
                    pstate[id] = 1;
                    ++stats_.recovery.tornPages;
                    continue;
                }
                maxSeq = std::max(maxSeq, rec.seq);
                blockMaxSeq[b] = std::max(blockMaxSeq[b], rec.seq);
                const auto [it, inserted] =
                    winners.try_emplace(rec.lba, Winner{id, rec});
                if (!inserted) {
                    ++stats_.recovery.duplicatePages;
                    if (rec.seq > it->second.rec.seq) {
                        pstate[it->second.id] = 1;
                        it->second = Winner{id, rec};
                    } else {
                        pstate[id] = 1;
                    }
                }
            }
        }
    }

    // Pass 2: drop copies the backing store has since superseded
    // (generation tags beat flash sequence numbers), then validate
    // every survivor through the real ECC pipeline — recovery never
    // reinstates a page it cannot actually read back.
    for (auto& [lba, w] : winners) {
        if (payloadStore_->generation(lba) > w.rec.seq) {
            pstate[w.id] = 1;
            ++stats_.recovery.stalePages;
            continue;
        }
        const PageAddress addr = addressOf(w.id);
        PageDescriptor desc;
        desc.eccStrength = static_cast<std::uint8_t>(
            std::min<unsigned>(w.rec.eccStrength,
                               config_.maxEccStrength));
        desc.mode = dev.frameMode(addr.block, addr.frame);
        const auto res = readWithRetry(addr, desc, pageBuf_.data());
        stats_.recovery.scanTime += res.latency;
        if (res.status == ReadStatus::Uncorrectable) {
            ++stats_.uncorrectableReads;
            ++stats_.recovery.uncorrectablePages;
            pstate[w.id] = 1;
            continue;
        }
        pstate[w.id] = 2;
    }

    // Pass 3a: rebuild the FPST (modes come from the device, live
    // entries from the winning OOB records) and the per-block counts.
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (fbst_[b].retired)
            continue;
        std::uint16_t slc = 0;
        std::uint16_t nvalid = 0, ninvalid = 0;
        for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
            const DensityMode m = dev.frameMode(b, f);
            if (m == DensityMode::SLC)
                ++slc;
            for (std::uint8_t sub = 0; sub < 2; ++sub) {
                const std::uint64_t id = pageId({b, f, sub});
                FpstEntry& e = fpst_[id];
                e.mode = m;
                e.lba = kInvalidLba;
                e.dirty = false;
                e.accessCount = 0;
                e.eccStrength = config_.initialEccStrength;
                if (pstate[id] == 2) {
                    e.state = PageState::Valid;
                    ++nvalid;
                } else if (pstate[id] == 1) {
                    e.state = PageState::Invalid;
                    ++ninvalid;
                } else {
                    e.state = PageState::Free;
                }
            }
        }
        fbst_[b].slcFrames = slc;
        fbst_[b].validPages = nvalid;
        fbst_[b].invalidPages = ninvalid;
    }
    for (const auto& [lba, w] : winners) {
        if (pstate[w.id] != 2)
            continue;
        FpstEntry& e = fpst_[w.id];
        e.lba = lba;
        e.dirty = w.rec.dirty; // conservative: dirty stays dirty
        e.accessCount = 1;
        e.eccStrength = static_cast<std::uint8_t>(
            std::min<unsigned>(w.rec.eccStrength,
                               config_.maxEccStrength));
        fbst_[blockOf(w.id)].totalEcc += e.eccStrength >
            config_.initialEccStrength
            ? e.eccStrength - config_.initialEccStrength : 0;
        fcht_.insert(lba, w.id);
        ++stats_.recovery.recoveredPages;
        if (e.dirty)
            ++stats_.recovery.recoveredDirty;
    }

    // Pass 3b: region membership. Live blocks keep the region their
    // newest page was written under; empty blocks refill toward the
    // configured split ratio.
    std::uint32_t usable = 0;
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (!fbst_[b].retired)
            ++usable;
    }
    const std::uint32_t read_target = config_.splitRegions
        ? std::clamp<std::uint32_t>(
              static_cast<std::uint32_t>(std::lround(
                  config_.readRegionFraction * usable)),
              2, usable >= 4 ? usable - 2 : 2)
        : usable;

    struct LiveBlock
    {
        std::uint64_t seq;
        std::uint32_t block;
    };
    std::vector<LiveBlock> live;
    std::vector<std::uint32_t> garbage, clean;
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        const FbstEntry& fb = fbst_[b];
        if (fb.retired)
            continue;
        if (fb.validPages > 0) {
            int r = kRead;
            if (config_.splitRegions) {
                std::uint64_t best = 0;
                for (std::uint16_t f = 0; f < framesPerBlock_; ++f) {
                    for (std::uint8_t sub = 0; sub < 2; ++sub) {
                        const std::uint64_t id = pageId({b, f, sub});
                        if (pstate[id] != 2)
                            continue;
                        const auto& w =
                            winners.at(fpst_[id].lba);
                        if (w.rec.seq >= best) {
                            best = w.rec.seq;
                            r = w.rec.region ? kWrite : kRead;
                        }
                    }
                }
            }
            fbst_[b].region = static_cast<std::int8_t>(r);
            ++regions_[r].ownedBlocks;
            regions_[r].validCount += fb.validPages;
            regions_[r].invalidCount += fb.invalidPages;
            live.push_back({blockMaxSeq[b], b});
        } else if (fb.invalidPages > 0) {
            garbage.push_back(b);
        } else {
            clean.push_back(b);
        }
    }
    auto refillRegion = [&](std::uint32_t) {
        if (!config_.splitRegions)
            return kRead;
        return regions_[kRead].ownedBlocks < read_target ? kRead
                                                         : kWrite;
    };
    for (const std::uint32_t b : garbage) {
        const int r = refillRegion(b);
        fbst_[b].region = static_cast<std::int8_t>(r);
        ++regions_[r].ownedBlocks;
        regions_[r].invalidCount += fbst_[b].invalidPages;
        ++stats_.recovery.erasedBlocks;
        if (eraseBlockTracked(b, stats_.recovery.scanTime))
            regions_[r].freeBlocks.push_back(b);
    }
    for (const std::uint32_t b : clean) {
        const int r = refillRegion(b);
        fbst_[b].region = static_cast<std::int8_t>(r);
        ++regions_[r].ownedBlocks;
        regions_[r].freeBlocks.push_back(b);
    }

    // Oldest-first LRU insertion: program sequence numbers double as
    // a recency proxy, so the hottest blocks end up most recent.
    std::sort(live.begin(), live.end(),
              [](const LiveBlock& a, const LiveBlock& b) {
                  return a.seq < b.seq;
              });
    for (const LiveBlock& lb : live)
        lruTouch(regions_[regionOf(lb.block)], lb.block);

    nextSeq_ = std::max(maxSeq, payloadStore_->maxGeneration()) + 1;
    checkInvariants();
}

std::uint64_t
FlashCache::capacityPages() const
{
    std::uint64_t pages = 0;
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (!fbst_[b].retired)
            pages += blockPageSlots(b);
    }
    return pages;
}

std::uint64_t
FlashCache::validPages() const
{
    return regions_[0].validCount + regions_[1].validCount;
}

std::uint64_t
FlashCache::invalidPages() const
{
    return regions_[0].invalidCount + regions_[1].invalidCount;
}

double
FlashCache::occupancy() const
{
    const std::uint64_t cap = capacityPages();
    return cap ? static_cast<double>(validPages()) /
        static_cast<double>(cap) : 0.0;
}

std::uint32_t
FlashCache::liveBlocks() const
{
    return numBlocks_ - static_cast<std::uint32_t>(stats_.retiredBlocks);
}

bool
FlashCache::failed() const
{
    if (config_.splitRegions) {
        return regions_[kRead].ownedBlocks < 2 ||
            regions_[kWrite].ownedBlocks < 2;
    }
    return regions_[kRead].ownedBlocks < 2;
}

double
FlashCache::gcOverheadFraction() const
{
    return stats_.flashBusyTime > 0.0
        ? stats_.gcTime / stats_.flashBusyTime : 0.0;
}

const FpstEntry&
FlashCache::fpstEntry(std::uint64_t page_id) const
{
    return fpst_.at(page_id);
}

void
FlashCache::checkInvariants() const
{
    std::uint64_t valid = 0, invalid = 0;
    std::vector<std::uint64_t> per_block_valid(numBlocks_, 0);
    std::vector<std::uint64_t> per_block_invalid(numBlocks_, 0);
    for (std::uint64_t id = 0; id < fpst_.size(); ++id) {
        const FpstEntry& e = fpst_[id];
        if (e.state == PageState::Valid) {
            ++valid;
            ++per_block_valid[blockOf(id)];
            if (fcht_.find(e.lba) != id)
                panic("FCHT does not map a valid page's LBA back");
        } else if (e.state == PageState::Invalid) {
            ++invalid;
            ++per_block_invalid[blockOf(id)];
        }
    }
    if (valid != validPages())
        panic("valid page count mismatch");
    if (invalid != invalidPages())
        panic("invalid page count mismatch");
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (per_block_valid[b] != fbst_[b].validPages)
            panic("FBST valid count mismatch");
        if (per_block_invalid[b] != fbst_[b].invalidPages)
            panic("FBST invalid count mismatch");
    }
    if (fcht_.size() != valid)
        panic("FCHT size != valid pages");

    // GC bucket invariants: the buckets partition exactly the
    // LRU-resident blocks by invalid-page count, gcMaxInvalid bounds
    // every occupied bucket, and the bucket-based victim pick agrees
    // with the seed's full-region scan.
    for (const Region& reg : regions_) {
        std::size_t bucketed = 0;
        for (std::size_t c = 0; c < reg.gcBucketHead.size(); ++c) {
            for (std::uint32_t b = reg.gcBucketHead[c]; b != kNoBlock;
                 b = gcNext_[b]) {
                ++bucketed;
                if (fbst_[b].invalidPages != c)
                    panic("GC bucket index != block invalid count");
                if (!reg.lruBlocks.contains(b))
                    panic("GC bucket holds a non-LRU block");
                if (c > reg.gcMaxInvalid)
                    panic("GC bucket above the tracked maximum");
            }
        }
        if (bucketed != reg.lruBlocks.size())
            panic("GC buckets out of sync with the LRU");

        std::uint32_t seed_victim = kNoBlock;
        std::uint16_t best = 0;
        for (const std::uint32_t b : reg.lruBlocks) {
            if (fbst_[b].invalidPages > best) {
                best = fbst_[b].invalidPages;
                seed_victim = b;
            }
        }
        std::uint32_t m = reg.gcMaxInvalid;
        while (m > 0 && reg.gcBucketHead[m] == kNoBlock)
            --m;
        std::uint32_t bucket_victim = kNoBlock;
        if (m > 0) {
            bucket_victim = reg.gcBucketHead[m];
            if (gcNext_[bucket_victim] != kNoBlock) {
                for (const std::uint32_t b : reg.lruBlocks) {
                    if (fbst_[b].invalidPages == m) {
                        bucket_victim = b;
                        break;
                    }
                }
            }
        }
        if (seed_victim != bucket_victim)
            panic("GC victim pick diverges from the seed scan");
    }
}


void
FlashCache::saveState(std::ostream& os) const
{
    putMagic(os, "FCCHE002");
    putScalar<std::uint32_t>(os, numBlocks_);
    putScalar<std::uint32_t>(os, framesPerBlock_);
    putScalar<std::uint8_t>(os, config_.splitRegions ? 1 : 0);

    for (const FpstEntry& e : fpst_) {
        putScalar<std::uint64_t>(os, e.lba);
        putScalar<std::uint8_t>(os, static_cast<std::uint8_t>(e.state));
        putScalar<std::uint8_t>(os, e.eccStrength);
        putScalar<std::uint8_t>(os, static_cast<std::uint8_t>(e.mode));
        putScalar<std::uint8_t>(os, e.accessCount);
        putScalar<std::uint8_t>(os, e.dirty ? 1 : 0);
    }
    for (const FbstEntry& b : fbst_) {
        putScalar<std::uint32_t>(os, b.totalEcc);
        putScalar<std::uint16_t>(os, b.slcFrames);
        putScalar<std::uint16_t>(os, b.validPages);
        putScalar<std::uint16_t>(os, b.invalidPages);
        putScalar<std::uint8_t>(os, b.retired ? 1 : 0);
        putScalar<std::int8_t>(os, b.region);
    }
    for (const Region& reg : regions_) {
        putVector(os, reg.freeBlocks);
        std::vector<std::uint32_t> lru(reg.lruBlocks.begin(),
                                       reg.lruBlocks.end());
        putVector(os, lru);
        for (const auto& cur : reg.cursor) {
            putScalar<std::uint32_t>(os, cur.block);
            putScalar<std::uint16_t>(os, cur.frame);
            putScalar<std::uint8_t>(os, cur.sub);
        }
        putScalar<std::uint32_t>(os, reg.ownedBlocks);
        putScalar<std::uint64_t>(os, reg.validCount);
        putScalar<std::uint64_t>(os, reg.invalidCount);
    }
    putScalar<std::uint64_t>(os, windowReads_);
    putScalar<std::uint64_t>(os, nextSeq_);
}

void
FlashCache::loadState(std::istream& is)
{
    expectMagic(is, "FCCHE002");
    if (getScalar<std::uint32_t>(is) != numBlocks_ ||
        getScalar<std::uint32_t>(is) != framesPerBlock_) {
        fatal("cache state file geometry mismatch");
    }
    if ((getScalar<std::uint8_t>(is) != 0) != config_.splitRegions)
        fatal("cache state file split-mode mismatch");

    for (FpstEntry& e : fpst_) {
        e.lba = getScalar<std::uint64_t>(is);
        e.state = static_cast<PageState>(getScalar<std::uint8_t>(is));
        e.eccStrength = getScalar<std::uint8_t>(is);
        e.mode = static_cast<DensityMode>(getScalar<std::uint8_t>(is));
        e.accessCount = getScalar<std::uint8_t>(is);
        e.dirty = getScalar<std::uint8_t>(is) != 0;
    }
    for (FbstEntry& b : fbst_) {
        b.totalEcc = getScalar<std::uint32_t>(is);
        b.slcFrames = getScalar<std::uint16_t>(is);
        b.validPages = getScalar<std::uint16_t>(is);
        b.invalidPages = getScalar<std::uint16_t>(is);
        b.retired = getScalar<std::uint8_t>(is) != 0;
        b.region = getScalar<std::int8_t>(is);
    }
    for (Region& reg : regions_) {
        reg.freeBlocks = getVector<std::uint32_t>(is);
        reg.freeBlocks.reserve(numBlocks_);
        const auto lru = getVector<std::uint32_t>(is);
        lruClear(reg);
        // Saved MRU-first; rebuild by inserting coldest-first (the
        // FBST loaded above supplies the GC bucket counts).
        for (auto it = lru.rbegin(); it != lru.rend(); ++it)
            lruTouch(reg, *it);
        for (auto& cur : reg.cursor) {
            cur.block = getScalar<std::uint32_t>(is);
            cur.frame = getScalar<std::uint16_t>(is);
            cur.sub = getScalar<std::uint8_t>(is);
        }
        reg.ownedBlocks = getScalar<std::uint32_t>(is);
        reg.validCount = getScalar<std::uint64_t>(is);
        reg.invalidCount = getScalar<std::uint64_t>(is);
    }
    windowReads_ = getScalar<std::uint64_t>(is);
    nextSeq_ = getScalar<std::uint64_t>(is);

    // The FCHT is derived state: rebuild it from the FPST.
    fcht_ = Fcht(config_.fchtBuckets);
    for (std::uint64_t id = 0; id < fpst_.size(); ++id) {
        if (fpst_[id].state == PageState::Valid)
            fcht_.insert(fpst_[id].lba, id);
    }
    checkInvariants();
}

} // namespace flashcache
