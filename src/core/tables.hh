/**
 * @file
 * The four DRAM-resident management tables of the flash based disk
 * cache (paper section 3): FCHT, FPST, FBST and FGST. All four are
 * kept in DRAM at run time to avoid flash wear from metadata churn;
 * their combined overhead is ~2% of the flash size.
 */

#ifndef FLASHCACHE_CORE_TABLES_HH
#define FLASHCACHE_CORE_TABLES_HH

#include <cstdint>
#include <vector>

#include "flash/geometry.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace flashcache {

/** Allocation state of one logical flash page. */
enum class PageState : std::uint8_t
{
    Free,    ///< erased, available for programming
    Valid,   ///< holds live cached data
    Invalid, ///< superseded by an out-of-place write; awaits GC
};

/**
 * Flash page status table entry (section 3.2): ECC strength,
 * SLC/MLC mode, saturating access counter and valid bit — one per
 * logical flash page. The ECC strength persists across page reuse
 * because it reflects the physical wear of the underlying cells.
 */
struct FpstEntry
{
    Lba lba = kInvalidLba;
    PageState state = PageState::Free;
    std::uint8_t eccStrength = 1;
    DensityMode mode = DensityMode::MLC;
    std::uint8_t accessCount = 0;
    bool dirty = false;
};

/**
 * Flash block status table entry (section 3.3): erase count lives in
 * the device; here we cache the per-block sums the wear-out cost
 * function needs, plus region bookkeeping.
 */
struct FbstEntry
{
    std::uint32_t totalEcc = 0;   ///< sum of page ECC strengths
    std::uint16_t slcFrames = 0;  ///< frames converted to SLC
    std::uint16_t validPages = 0;
    std::uint16_t invalidPages = 0;
    bool retired = false;
    std::int8_t region = -1;      ///< owning region, -1 = free pool

    /**
     * Degree of wear out (section 3.3):
     * wear_i = N_erase,i + k1 * TotalECC,i + k2 * TotalSLC_MLC,i.
     */
    double
    wearOut(std::uint32_t erase_count, double k1, double k2) const
    {
        return static_cast<double>(erase_count) + k1 * totalEcc +
            k2 * slcFrames;
    }
};

/**
 * Flash global status table (section 3.4): summary statistics —
 * miss rate and average latencies — that drive the reconfiguration
 * heuristics of section 5.2.
 */
struct Fgst
{
    RatioStat reads;         ///< flash read hits vs misses
    RatioStat writes;        ///< write updates vs fresh fills
    RunningStat hitLatency;  ///< t_hit samples
    RunningStat missPenalty; ///< t_miss samples

    /** Record a read outcome in both the cumulative ratio and the
     *  recency-weighted estimate the reconfiguration policy uses. */
    void
    recordRead(bool hit)
    {
        if (hit)
            reads.hit();
        else
            reads.miss();
        ewmaMiss_ += kEwmaGain * ((hit ? 0.0 : 1.0) - ewmaMiss_);
    }

    double
    missRate() const
    {
        return reads.missRate();
    }

    /** Recency-weighted miss rate (time constant ~4k reads); a cold
     *  warmup does not poison steady-state policy decisions. */
    double
    recentMissRate() const
    {
        return ewmaMiss_;
    }

    /** Record the FPST access count a hit page had before the hit;
     *  hits on cold pages mean the capacity margin still earns hits
     *  (long-tailed workload), hits concentrated on hot pages mean
     *  the margin is dead (short-tailed workload). */
    void
    recordHitPageCount(std::uint8_t pre_count)
    {
        ewmaMarginal_ += kEwmaGain * ((pre_count <= 1 ? 1.0 : 0.0) -
                                      ewmaMarginal_);
    }

    /** Recency-weighted fraction of hits landing on cold pages. */
    double
    marginalHitFraction() const
    {
        return ewmaMarginal_;
    }

    Seconds
    avgHitLatency() const
    {
        return hitLatency.mean();
    }

    Seconds
    avgMissPenalty() const
    {
        return missPenalty.mean();
    }

  private:
    static constexpr double kEwmaGain = 1.0 / 4096.0;
    double ewmaMiss_ = 0.5;
    double ewmaMarginal_ = 0.5;
};

/**
 * FlashCache hash table (section 3.1): maps disk LBAs to flash page
 * ids. The paper organizes it as a fully associative table indexed
 * by a hash; the indexable-entry count is configurable because the
 * paper reports ~100 indexable entries already reach peak
 * throughput. Probe lengths are tracked so the claim stays
 * measurable.
 *
 * Implemented as an open-addressed flat table (linear probing with
 * backward-shift deletion) that grows on load factor, so steady
 * state probes are short and allocation-free. The configured bucket
 * count is the number of distinct *home positions* the hash can
 * reach: with few buckets, entries pile into long runs exactly like
 * the seed implementation's chains did, which preserves the
 * section 3.1 sweep semantics.
 *
 * `buckets == 0` selects auto mode: every slot is a home position,
 * so the probe cost tracks the load factor alone. Quantized homes
 * cluster entries into runs that coalesce with their neighbours
 * (under the auto-sized paper config every home carries ~2 entries
 * 4 slots apart, and the run tails dominate the lookup cost), so
 * the cache uses auto mode unless the sweep knob is set explicitly.
 */
class Fcht
{
  public:
    static constexpr std::uint64_t npos = ~static_cast<std::uint64_t>(0);

    explicit Fcht(std::size_t buckets = 4096); ///< 0 = auto mode

    /** Look up an LBA. @return page id or npos. */
    std::uint64_t find(Lba lba) const;

    /** Insert a mapping; the LBA must not already be present. */
    void insert(Lba lba, std::uint64_t page_id);

    /** Remove a mapping. @return true when it existed. */
    bool erase(Lba lba);

    /** Redirect an existing mapping to a new page id. */
    void update(Lba lba, std::uint64_t page_id);

    std::size_t size() const { return size_; }

    /** Indexable hash entries (home positions); in auto mode every
     *  slot is a home, so this tracks the current slot count. */
    std::size_t
    buckets() const
    {
        return indexCount_ != 0 ? indexCount_ : slots_.size();
    }

    /** Current flat-table slot count (grows on load factor). */
    std::size_t slots() const { return slots_.size(); }

    /** Mean occupied slots inspected per find() so far. */
    double avgProbeLength() const;

  private:
    struct Slot
    {
        Lba lba;
        std::uint64_t pageId; ///< npos marks an empty slot
    };

    /** Position a probe sequence for this LBA starts at. */
    std::size_t
    homeOf(Lba lba) const
    {
        // Same multiplicative hash as the seed chains. Auto mode
        // uses the full slot range; otherwise the bucket index is
        // spread across the flat table so exactly `buckets` distinct
        // home positions exist.
        const auto hash = static_cast<std::size_t>(
            (lba * 0x9E3779B97F4A7C15ull) >> 32);
        if (indexCount_ == 0)
            return hash & (slots_.size() - 1);
        const std::size_t bucket = hash % indexCount_;
        return static_cast<std::size_t>(
            (static_cast<unsigned __int128>(bucket) * slots_.size()) /
            indexCount_);
    }

    /** Slot holding the LBA, or the table size when absent; probe
     *  instrumentation only accumulates when count_probes is set
     *  (find() counts, erase()/update() do not — seed semantics). */
    std::size_t findSlot(Lba lba, bool count_probes) const;

    void grow();
    void place(Lba lba, std::uint64_t page_id);

    std::vector<Slot> slots_;
    std::size_t indexCount_;
    std::size_t size_ = 0;
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t probes_ = 0;
};

/**
 * The seed chained FCHT (fixed bucket vector of entry chains),
 * retained verbatim as the differential-test oracle and the bench
 * baseline for the open-addressed rewrite — the same pattern PR 1
 * used for the bit-serial BCH reference.
 */
class FchtChained
{
  public:
    static constexpr std::uint64_t npos = ~static_cast<std::uint64_t>(0);

    explicit FchtChained(std::size_t buckets = 4096);

    std::uint64_t find(Lba lba) const;
    void insert(Lba lba, std::uint64_t page_id);
    bool erase(Lba lba);
    void update(Lba lba, std::uint64_t page_id);

    std::size_t size() const { return size_; }
    std::size_t buckets() const { return buckets_.size(); }
    double avgProbeLength() const;

  private:
    struct Entry
    {
        Lba lba;
        std::uint64_t pageId;
    };

    std::size_t
    bucketOf(Lba lba) const
    {
        return static_cast<std::size_t>(
            (lba * 0x9E3779B97F4A7C15ull) >> 32) % buckets_.size();
    }

    std::vector<std::vector<Entry>> buckets_;
    std::size_t size_ = 0;
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t probes_ = 0;
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_TABLES_HH
