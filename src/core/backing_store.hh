/**
 * @file
 * Interface the flash disk cache uses to reach the backing disk.
 *
 * The cache core calls read() on misses and write() when flushing or
 * evicting dirty pages; the system simulator implements it with the
 * DiskModel, and tests implement it with instrumented fakes.
 */

#ifndef FLASHCACHE_CORE_BACKING_STORE_HH
#define FLASHCACHE_CORE_BACKING_STORE_HH

#include <cstdint>

#include "util/types.hh"

namespace flashcache {

/**
 * Abstract page-granular backing store.
 */
class BackingStore
{
  public:
    virtual ~BackingStore() = default;

    /** Fetch one page. @return access latency. */
    virtual Seconds read(Lba lba) = 0;

    /** Persist one page. @return access latency. */
    virtual Seconds write(Lba lba) = 0;

    /// @name Fault-aware variants. `failed` reports a latent-sector
    /// error that survived the store's internal retries; the default
    /// implementations delegate to the plain hooks and never fail, so
    /// existing stores keep working unchanged.
    /// @{
    virtual Seconds
    read(Lba lba, bool& failed)
    {
        failed = false;
        return read(lba);
    }

    virtual Seconds
    write(Lba lba, bool& failed)
    {
        failed = false;
        return write(lba);
    }
    /// @}
};

/**
 * A backing store that also moves page payloads, required by the
 * cache's real-data mode (FlashCacheConfig::realData). The plain
 * read()/write() latency hooks remain the timing source; these
 * variants carry the bytes.
 */
class PayloadBackingStore : public BackingStore
{
  public:
    /** Fetch one page's contents into `out` (page-size bytes). */
    virtual Seconds readData(Lba lba, std::uint8_t* out) = 0;

    /** Persist one page's contents. */
    virtual Seconds writeData(Lba lba, const std::uint8_t* data) = 0;

    /** Fault-aware fetch; defaults to the plain hook, never failing. */
    virtual Seconds
    readData(Lba lba, std::uint8_t* out, bool& failed)
    {
        failed = false;
        return readData(lba, out);
    }

    /**
     * Persist one page tagged with the flash program sequence number
     * of the copy being flushed (a T10-DIF-style generation tag).
     * Crash recovery compares on-flash sequence numbers against
     * generation() so a surviving-but-superseded flash copy of an
     * already-flushed page can never resurrect stale data. Stores
     * that do not track generations fall back to writeData() and
     * recovery simply trusts flash (safe when flushes are rare or
     * recovery is never used).
     */
    virtual Seconds
    writeTagged(Lba lba, const std::uint8_t* data, std::uint64_t seq,
                bool& failed)
    {
        (void)seq;
        failed = false;
        return writeData(lba, data);
    }

    /** Generation tag of the store's copy of `lba`; 0 = untagged. */
    virtual std::uint64_t generation(Lba lba) const
    {
        (void)lba;
        return 0;
    }

    /** Highest generation tag ever written; recovery restarts the
     *  flash sequence counter above it. */
    virtual std::uint64_t maxGeneration() const { return 0; }
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_BACKING_STORE_HH
