/**
 * @file
 * Interface the flash disk cache uses to reach the backing disk.
 *
 * The cache core calls read() on misses and write() when flushing or
 * evicting dirty pages; the system simulator implements it with the
 * DiskModel, and tests implement it with instrumented fakes.
 */

#ifndef FLASHCACHE_CORE_BACKING_STORE_HH
#define FLASHCACHE_CORE_BACKING_STORE_HH

#include <cstdint>

#include "util/types.hh"

namespace flashcache {

/**
 * Abstract page-granular backing store.
 */
class BackingStore
{
  public:
    virtual ~BackingStore() = default;

    /** Fetch one page. @return access latency. */
    virtual Seconds read(Lba lba) = 0;

    /** Persist one page. @return access latency. */
    virtual Seconds write(Lba lba) = 0;
};

/**
 * A backing store that also moves page payloads, required by the
 * cache's real-data mode (FlashCacheConfig::realData). The plain
 * read()/write() latency hooks remain the timing source; these
 * variants carry the bytes.
 */
class PayloadBackingStore : public BackingStore
{
  public:
    /** Fetch one page's contents into `out` (page-size bytes). */
    virtual Seconds readData(Lba lba, std::uint8_t* out) = 0;

    /** Persist one page's contents. */
    virtual Seconds writeData(Lba lba, const std::uint8_t* data) = 0;
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_BACKING_STORE_HH
