/**
 * @file
 * The flash based disk cache — the paper's core contribution
 * (sections 3 and 5).
 *
 * A software-managed secondary disk cache held in NAND flash behind
 * a small DRAM primary disk cache (the PDC lives in the system
 * simulator; this class manages the flash level). Key mechanisms:
 *
 *  - FCHT/FPST/FBST/FGST management tables in DRAM (section 3).
 *  - Optional split into a read region and a write region
 *    (default 90%/10%, section 3.5): reads fill the read region,
 *    writes append out-of-place into the write-region log, and
 *    garbage collection only ever scans the owning region's blocks.
 *  - Background garbage collection (section 5.1): write-region GC
 *    compacts the block with the most invalid pages; read-region GC
 *    triggers when more than a configured fraction of the region is
 *    invalid.
 *  - Wear-level-aware replacement (section 3.6): LRU block eviction,
 *    except when the victim's wear exceeds the globally newest
 *    block's wear by a threshold — then the newest block's content
 *    migrates into the old block and the newest block is evicted.
 *  - Programmable-controller integration (section 5.2): pages whose
 *    corrected-error count reaches their ECC strength are
 *    reconfigured (stronger ECC vs MLC->SLC density drop, chosen by
 *    the latency heuristics), read-hot MLC pages migrate to SLC on
 *    access-counter saturation, and fully exhausted blocks retire.
 */

#ifndef FLASHCACHE_CORE_FLASH_CACHE_HH
#define FLASHCACHE_CORE_FLASH_CACHE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "controller/memory_controller.hh"
#include "controller/reconfig_policy.hh"
#include "core/backing_store.hh"
#include "core/lru.hh"
#include "core/tables.hh"
#include "sched/demand.hh"
#include "util/types.hh"

namespace flashcache {

namespace obs {
class MetricRegistry;
class Tracer;
} // namespace obs

/** Tuning knobs; defaults follow the paper. */
struct FlashCacheConfig
{
    /** Split read/write regions (section 3.5) vs unified baseline. */
    bool splitRegions = true;

    /** Fraction of blocks owned by the read region when split. */
    double readRegionFraction = 0.9;

    /** Enable the programmable controller responses of section 5.2;
     *  off = fixed-strength baseline (Figure 12's "BCH-1"). */
    bool adaptiveReconfig = true;

    /** ECC strength newly formatted pages start with. */
    std::uint8_t initialEccStrength = 1;

    /** Hardware ECC limit (paper: 12 bits per 2 KB page). */
    std::uint8_t maxEccStrength = 12;

    /** Saturation point of the FPST access counter; a saturated MLC
     *  page migrates to SLC (section 5.2.2). */
    std::uint8_t accessSaturation = 64;

    /** Allow hot-page MLC->SLC migration. */
    bool hotPageMigration = true;

    /** Wear-leveling on (section 3.6). */
    bool wearLeveling = true;

    /** Wear cost-function weights; k2 > k1 because a density switch
     *  signals far more wear than an ECC bump (section 3.3). */
    double wearK1 = 2.0;
    double wearK2 = 40.0;

    /** Evicting a block this much more worn than the newest block
     *  triggers migration instead (erase-count-equivalents). */
    double wearThreshold = 64.0;

    /** Read-region GC triggers when its invalid-page fraction
     *  exceeds this (capacity below 90%, section 5.1). */
    double readGcInvalidFraction = 0.10;

    /** GC only reclaims a block whose invalid fraction is at least
     *  this; blocks full of cold valid pages are evicted (flushed)
     *  instead of being copied forever. Set to 0 to emulate a
     *  storage log that can never evict (Figure 1(b)'s regime). */
    double gcMinInvalidFraction = 0.25;

    /** FCHT bucket count (section 3.1 sweeps this); 0 selects the
     *  table's auto mode, where every slot is a home position and
     *  probe cost tracks the load factor alone. */
    std::size_t fchtBuckets = 0;

    /** Reads between access-counter aging sweeps (halving), which
     *  keeps the relative-frequency estimate fresh. */
    std::uint64_t agingWindow = 1ull << 18;

    /** Real-data mode: page payloads move through the actual BCH +
     *  CRC pipeline with physically injected bit errors. Requires a
     *  store_data FlashDevice and a PayloadBackingStore; use
     *  readData()/writeData() instead of read()/write(). */
    bool realData = false;
};

/** Outcome of one cache-level access. */
struct CacheAccessResult
{
    bool hit = false;
    Seconds latency = 0.0;
};

/** Counters beyond the FGST. */
struct FlashCacheStats
{
    Fgst fgst;

    std::uint64_t gcRuns = 0;
    std::uint64_t gcPageCopies = 0;
    std::uint64_t gcErases = 0;
    Seconds gcTime = 0.0;

    std::uint64_t evictions = 0;
    std::uint64_t evictionFlushes = 0;
    Seconds evictionTime = 0.0;

    std::uint64_t wearMigrations = 0;
    std::uint64_t eccReconfigs = 0;
    std::uint64_t densityReconfigs = 0;

    /// @name Section 5.2.1 policy decisions only (Figure 11's
    /// breakdown); the reconfig counters above also include the
    /// forced responses to uncorrectable reads.
    /// @{
    std::uint64_t policyEccChoices = 0;
    std::uint64_t policyDensityChoices = 0;
    /// @}
    std::uint64_t hotMigrations = 0;
    std::uint64_t retiredBlocks = 0;

    std::uint64_t uncorrectableReads = 0;
    std::uint64_t dataLossPages = 0;

    /** Transient-error re-reads the driver issued (section 4.1). */
    std::uint64_t eccRetryReads = 0;

    /// @name Degraded-mode event counts (fault.* metrics): how the
    /// cache absorbed injected medium/disk failures.
    /// @{
    std::uint64_t programFailReprograms = 0; ///< re-programs after status fail
    std::uint64_t eraseFailRetirements = 0;  ///< blocks retired by erase fail
    std::uint64_t diskFillFailures = 0;  ///< miss fills abandoned (disk fault)
    std::uint64_t diskFlushFailures = 0; ///< dirty flushes lost to disk fault
    /// @}

    /** Crash-recovery scan results (recovery.* metrics). */
    struct RecoveryStats
    {
        std::uint64_t scannedPages = 0;   ///< programmed pages examined
        std::uint64_t tornPages = 0;      ///< OOB CRC rejects (torn/partial)
        std::uint64_t duplicatePages = 0; ///< older copies of a duplicate tag
        std::uint64_t stalePages = 0;     ///< dropped by disk generation tag
        std::uint64_t uncorrectablePages = 0; ///< failed validation read
        std::uint64_t recoveredPages = 0; ///< live pages reinstated
        std::uint64_t recoveredDirty = 0; ///< of those, still dirty
        std::uint64_t erasedBlocks = 0;   ///< garbage blocks erased in-scan
        Seconds scanTime = 0.0;           ///< simulated scan/validate time
    } recovery;

    /// @name Diagnostics for the reconfiguration policy: the access
    /// frequency of faulting pages and the two heuristic costs.
    /// @{
    RunningStat faultPageFreq;
    RunningStat faultEccCost;
    RunningStat faultDensityCost;
    /// @}

    Seconds reconfigTime = 0.0; ///< density/hot migration copy time
    Seconds flashBusyTime = 0.0; ///< all flash op time incl. GC
};

/**
 * The flash based disk cache.
 */
class FlashCache
{
  public:
    /**
     * @param controller Programmable flash memory controller.
     * @param store      Backing disk.
     * @param config     Policy knobs.
     */
    FlashCache(FlashMemoryController& controller, BackingStore& store,
               const FlashCacheConfig& config = FlashCacheConfig());

    /** Look up / fill one page read. */
    CacheAccessResult read(Lba lba);

    /** Accept one page write-back (out-of-place into the write
     *  region; the disk is updated later by flush/eviction). */
    CacheAccessResult write(Lba lba);

    /** Real-data read: the page contents land in `out` (pageDataBytes
     *  of the device geometry). Requires config.realData. */
    CacheAccessResult readData(Lba lba, std::uint8_t* out);

    /** Real-data write-back of one page's contents. */
    CacheAccessResult writeData(Lba lba, const std::uint8_t* data);

    /** Write every dirty page back to the disk. */
    void flushAll();

    /**
     * Rebuild every DRAM table from the medium after an uncontrolled
     * shutdown (power cut). Call on a freshly constructed cache whose
     * device holds the post-crash contents: scans every programmed
     * page, parses the self-describing OOB records, discards torn
     * pages by CRC, resolves duplicate LBAs by sequence number,
     * drops copies the backing store has since superseded (generation
     * tags), validates survivors through the ECC pipeline, and
     * rebuilds FCHT/FPST/FBST/region membership. Recovered dirty
     * pages stay dirty (conservative: they will be flushed, never
     * silently dropped). Requires realData mode — the modeled path
     * stores no bytes to scan.
     */
    void recover();

    const FlashCacheStats& stats() const { return stats_; }
    const FlashCacheConfig& config() const { return config_; }
    const Fcht& fcht() const { return fcht_; }

    /** Register every `cache.*` metric, including the derived write
     *  amplification / GC efficiency / occupancy gauges. */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /** Attach (or detach with nullptr) a request tracer; propagates
     *  to the memory controller so array/ECC leaves line up under
     *  the cache-level spans. */
    void setTracer(obs::Tracer* tracer);
    obs::Tracer* tracer() const { return tracer_; }

    /**
     * Attach (or detach with nullptr) the scheduler demand sink the
     * devices below record into. The cache itself records nothing; it
     * opens background scopes around GC, eviction, wear migration,
     * reconfiguration copies, flushes and recovery so those device
     * ops queue as background work that yields to foreground traffic
     * — exactly the ops whose time is charged to the stats sinks
     * (gcTime/evictionTime/reconfigTime) instead of request latency.
     */
    void setDemandSink(sched::DemandSink* sink) { demands_ = sink; }

    /** Total logical page slots at current density modes. */
    std::uint64_t capacityPages() const;

    std::uint64_t validPages() const;
    std::uint64_t invalidPages() const;

    /** Valid fraction of total capacity. */
    double occupancy() const;

    /** Valid fraction of one region's nominal page slots (0 = read
     *  region, 1 = write region; 0 when the region owns no blocks). */
    double regionOccupancy(int region) const;

    /** Blocks not yet retired. */
    std::uint32_t liveBlocks() const;

    /**
     * True when so many blocks retired that the cache can no longer
     * operate (Figure 12's "point of total Flash failure").
     */
    bool failed() const;

    /** Fraction of flash busy time spent on GC work. */
    double gcOverheadFraction() const;

    /** Access the FPST entry of a page id (tests/benches). */
    const FpstEntry& fpstEntry(std::uint64_t page_id) const;

    /** Run invariant checks (tests); panics on violation. */
    void checkInvariants() const;

    /// @name Warm-restart persistence (section 3: the management
    /// tables live on disk and load into DRAM at run time). The
    /// FlashDevice state must be saved/loaded alongside; statistics
    /// restart fresh. Geometry and split mode must match on load.
    /// @{
    void saveState(std::ostream& os) const;
    void loadState(std::istream& is);
    /// @}

  private:
    static constexpr int kRead = 0;
    static constexpr int kWrite = 1;
    static constexpr std::uint32_t kNoBlock = ~0u;

    /** Per-region allocation and replacement state. */
    struct Region
    {
        std::vector<std::uint32_t> freeBlocks;
        IntrusiveLru lruBlocks; ///< filled, evictable
        /** Append cursors: [0] general, [1] dedicated SLC. */
        struct Cursor
        {
            std::uint32_t block = kNoBlock;
            std::uint16_t frame = 0;
            std::uint8_t sub = 0;
        };
        std::array<Cursor, 2> cursor;
        std::uint32_t ownedBlocks = 0;
        std::uint64_t validCount = 0;
        std::uint64_t invalidCount = 0;

        /// @name Incremental GC victim tracking: doubly linked buckets
        /// of LRU-resident blocks keyed by invalid-page count (links
        /// live in FlashCache::gcPrev_/gcNext_), plus a lazily decayed
        /// upper bound on the occupied bucket indices. Victim pick is
        /// O(1) amortized instead of the seed's full-region scan.
        /// @{
        std::vector<std::uint32_t> gcBucketHead;
        std::uint32_t gcMaxInvalid = 0;
        /// @}
    };

    /// @name Page id <-> address mapping.
    /// @{
    std::uint64_t
    pageId(const PageAddress& a) const
    {
        return (static_cast<std::uint64_t>(a.block) * framesPerBlock_ +
                a.frame) * 2 + a.sub;
    }

    PageAddress
    addressOf(std::uint64_t id) const
    {
        PageAddress a;
        a.sub = static_cast<std::uint8_t>(id & 1);
        const std::uint64_t fid = id >> 1;
        a.frame = static_cast<std::uint16_t>(fid % framesPerBlock_);
        a.block = static_cast<std::uint32_t>(fid / framesPerBlock_);
        return a;
    }

    std::uint32_t
    blockOf(std::uint64_t id) const
    {
        return static_cast<std::uint32_t>(id / (2 * framesPerBlock_));
    }
    /// @}

    int regionOf(std::uint32_t block) const;

    /** Pages a block can hold at its current frame modes. */
    std::uint32_t blockPageSlots(std::uint32_t block) const;

    /** Advance a cursor to its next free slot; false when the block
     *  is exhausted. */
    bool cursorNext(Region::Cursor& cur) const;

    /**
     * Allocate one page slot in a region.
     *
     * @param region     kRead or kWrite.
     * @param want_slc   Use the dedicated SLC cursor.
     * @param background Charge erase latency to gcTime.
     * @return page id, or nullopt when the region is out of space.
     */
    std::optional<std::uint64_t> allocateSlot(int region, bool want_slc,
                                              bool background);

    /** Take a block from the free list (re-erasing it to SLC if the
     *  SLC cursor asked and it isn't mostly SLC yet). */
    std::optional<std::uint32_t> takeFreeBlock(int region, bool want_slc,
                                               bool background);

    /** Outcome of installPage: where the page actually landed (a
     *  program-status failure re-programs on a fresh slot). */
    struct InstallResult
    {
        std::uint64_t id = 0;
        Seconds latency = 0.0;
    };

    /** Program a new valid page and wire up all tables; `data`
     *  (real-data mode) routes through the real encoder. On a
     *  program-status failure the slot is marked invalid, the block
     *  queued for retirement, and the program retried on a fresh
     *  slot — the returned id is where the page finally landed. */
    InstallResult installPage(std::uint64_t id, Lba lba, bool dirty,
                              std::uint8_t access_count,
                              const std::uint8_t* data = nullptr);

    /** Mark a valid page invalid (out-of-place supersede). */
    void invalidatePage(std::uint64_t id, bool drop_mapping);

    /** Garbage collect the region block with the most invalid pages.
     *  @return true when a block was reclaimed. */
    bool garbageCollect(int region);

    /** Evict a block chosen by wear-aware LRU (section 3.6). */
    bool evictBlock(int region);

    /** Section 3.6 check used by eviction and GC: swap with the
     *  globally newest block when the victim is too worn.
     *  @return true when the swap happened (space was freed). */
    bool tryWearSwap(std::uint32_t victim);

    /** Section 3.6 migration: evict `newest` instead of `victim`,
     *  moving its young content into the worn victim block. */
    void wearLevelSwap(std::uint32_t victim, std::uint32_t newest);

    /** GC the read region only past its invalid-fraction threshold. */
    bool garbageCollectIfUseful(int region);

    /** Keep a one-block reserve so GC relocation never starves. */
    void replenishReserve(int region);

    /** Flush or drop every valid page of a block, then erase it.
     *  @return false when the erase failed (block retired). */
    bool reclaimBlock(std::uint32_t block, bool flush_dirty,
                      Seconds& time_sink);

    /** Read a dirty page back and persist it to the backing store.
     *  @return false when the copy was unreadable or the disk write
     *  failed (data loss). */
    bool flushPage(std::uint64_t id, Seconds& time_sink);

    /** Erase + bookkeeping. On an erase failure the block is retired
     *  in place (region capacity shrinks) and false is returned —
     *  callers must not hand it to a free list. */
    bool eraseBlockTracked(std::uint32_t block, Seconds& time_sink);

    /** Retire blocks queued by program-status failures; runs at the
     *  end of public entry points so retirement (which itself
     *  relocates pages) never reenters a half-done install. */
    void drainPendingRetires();

    /** Read a page, re-reading once when a transient error spike
     *  (not persistent wear) made the first attempt uncorrectable.
     *  With `out` non-null (real-data mode) the payload goes through
     *  the actual BCH pipeline into the buffer. */
    ControllerReadResult readWithRetry(const PageAddress& addr,
                                       const PageDescriptor& desc,
                                       std::uint8_t* out = nullptr);

    /** Shared read path; `out` selects the real-data pipeline. */
    CacheAccessResult readImpl(Lba lba, std::uint8_t* out);

    /** Shared write path; `data` selects the real-data pipeline. */
    CacheAccessResult writeImpl(Lba lba, const std::uint8_t* data);

    /** Copy one valid page elsewhere in its region (GC / wear
     *  migration / density relocation). @return new page id. */
    std::optional<std::uint64_t> relocatePage(std::uint64_t id,
                                              bool want_slc,
                                              Seconds& time_sink);

    /** Apply section 5.2 triggers after a read hit. */
    void maybeReconfigure(std::uint64_t id,
                          const ControllerReadResult& res);

    /** Retire a block whose pages exhausted ECC and density. */
    void retireBlock(std::uint32_t block);

    /** Periodic access-counter aging. */
    void maybeAge();

    double pageAccessFreq(const FpstEntry& e) const;

    /// @name GC bucket + LRU maintenance. All lruBlocks membership
    /// changes go through these wrappers so the invalid-count buckets
    /// stay consistent with the replacement list.
    /// @{
    void gcBucketInsert(Region& reg, std::uint32_t block);
    void gcBucketRemove(Region& reg, std::uint32_t block);
    /** Move a block between buckets after invalidPages changed. */
    void gcBucketShift(Region& reg, std::uint32_t block,
                       std::uint16_t old_count);
    void lruTouch(Region& reg, std::uint32_t block);
    bool lruErase(Region& reg, std::uint32_t block);
    void lruClear(Region& reg);
    /** Pick the seed-identical GC victim (first block in MRU order
     *  with maximal invalidPages), or kNoBlock when none invalid.
     *  Writes the decayed bucket upper bound back into the region
     *  (lazy decrement — paid for by past increments). */
    std::uint32_t gcPickVictim(Region& reg);
    /// @}

    FlashMemoryController* ctrl_;
    BackingStore* store_;
    PayloadBackingStore* payloadStore_ = nullptr; ///< real-data mode
    FlashCacheConfig config_;

    std::uint32_t framesPerBlock_;
    std::uint32_t numBlocks_;

    Fcht fcht_;
    std::vector<FpstEntry> fpst_;
    std::vector<FbstEntry> fbst_;
    std::array<Region, 2> regions_;

    /** Per-block GC bucket links (shared across regions; a block is
     *  in at most one region's buckets at a time). */
    std::vector<std::uint32_t> gcPrev_;
    std::vector<std::uint32_t> gcNext_;

    /** Constructor-sized page workspace for relocate/flush/migration
     *  copies in real-data mode (no per-call buffers). */
    std::vector<std::uint8_t> pageBuf_;

    FlashCacheStats stats_;
    obs::Tracer* tracer_ = nullptr;
    sched::DemandSink* demands_ = nullptr;
    std::uint64_t readsSinceAging_ = 0;
    std::uint64_t windowReads_ = 0;

    /** Global program sequence number stamped into every OOB record;
     *  strictly increasing across installs and flush generations. */
    std::uint64_t nextSeq_ = 1;

    /** Blocks awaiting retirement after a program-status failure
     *  (drained at the end of the public entry points). */
    std::vector<std::uint32_t> pendingRetire_;
};

} // namespace flashcache

#endif // FLASHCACHE_CORE_FLASH_CACHE_HH
