#include "core/tables.hh"

#include "util/log.hh"

namespace flashcache {

Fcht::Fcht(std::size_t buckets)
    : buckets_(buckets == 0 ? 1 : buckets)
{
}

std::uint64_t
Fcht::find(Lba lba) const
{
    ++lookups_;
    const auto& chain = buckets_[bucketOf(lba)];
    for (const Entry& e : chain) {
        ++probes_;
        if (e.lba == lba)
            return e.pageId;
    }
    return npos;
}

void
Fcht::insert(Lba lba, std::uint64_t page_id)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (const Entry& e : chain) {
        if (e.lba == lba)
            panic("FCHT double insert for LBA");
    }
    chain.push_back({lba, page_id});
    ++size_;
}

bool
Fcht::erase(Lba lba)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].lba == lba) {
            chain[i] = chain.back();
            chain.pop_back();
            --size_;
            return true;
        }
    }
    return false;
}

void
Fcht::update(Lba lba, std::uint64_t page_id)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (Entry& e : chain) {
        if (e.lba == lba) {
            e.pageId = page_id;
            return;
        }
    }
    panic("FCHT update of missing LBA");
}

double
Fcht::avgProbeLength() const
{
    return lookups_ ? static_cast<double>(probes_) /
        static_cast<double>(lookups_) : 0.0;
}

} // namespace flashcache
