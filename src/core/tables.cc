#include "core/tables.hh"

#include <algorithm>

#include "util/log.hh"

namespace flashcache {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 16;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Open-addressed Fcht.
// ---------------------------------------------------------------------

Fcht::Fcht(std::size_t buckets)
    : indexCount_(buckets)
{
    // Start the flat table around the configured index width (the
    // seed allocated one chain head per bucket); it doubles whenever
    // the load factor passes ~0.7. Auto mode (buckets == 0) has no
    // configured width, so it starts small and grows on demand.
    slots_.assign(roundUpPow2(std::min<std::size_t>(
                      indexCount_ == 0 ? 16 : indexCount_, 1 << 20)),
                  Slot{0, npos});
}

std::size_t
Fcht::findSlot(Lba lba, bool count_probes) const
{
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = homeOf(lba); slots_[i].pageId != npos;
         i = (i + 1) & mask) {
        if (count_probes)
            ++probes_;
        if (slots_[i].lba == lba)
            return i;
    }
    return slots_.size();
}

std::uint64_t
Fcht::find(Lba lba) const
{
    ++lookups_;
    const std::size_t i = findSlot(lba, true);
    return i == slots_.size() ? npos : slots_[i].pageId;
}

void
Fcht::place(Lba lba, std::uint64_t page_id)
{
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = homeOf(lba);
    while (slots_[i].pageId != npos)
        i = (i + 1) & mask;
    slots_[i] = {lba, page_id};
}

void
Fcht::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{0, npos});
    for (const Slot& s : old) {
        if (s.pageId != npos)
            place(s.lba, s.pageId);
    }
}

void
Fcht::insert(Lba lba, std::uint64_t page_id)
{
    if (page_id == npos)
        panic("FCHT cannot map to the reserved npos page id");
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = homeOf(lba);
    while (slots_[i].pageId != npos) {
        if (slots_[i].lba == lba)
            panic("FCHT double insert for LBA");
        i = (i + 1) & mask;
    }
    // Keep load factor below ~0.7 so probe runs stay short.
    if ((size_ + 1) * 10 > slots_.size() * 7) {
        grow();
        place(lba, page_id);
    } else {
        slots_[i] = {lba, page_id};
    }
    ++size_;
}

bool
Fcht::erase(Lba lba)
{
    std::size_t i = findSlot(lba, false);
    if (i == slots_.size())
        return false;
    // Backward-shift deletion: refill the hole from the probe run so
    // no tombstones accumulate and find() stays empty-terminated.
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & mask;
        if (slots_[j].pageId == npos)
            break;
        const std::size_t h = homeOf(slots_[j].lba);
        const bool home_between =
            i < j ? (h > i && h <= j) : (h > i || h <= j);
        if (!home_between) {
            slots_[i] = slots_[j];
            i = j;
        }
    }
    slots_[i].pageId = npos;
    --size_;
    return true;
}

void
Fcht::update(Lba lba, std::uint64_t page_id)
{
    const std::size_t i = findSlot(lba, false);
    if (i == slots_.size())
        panic("FCHT update of missing LBA");
    slots_[i].pageId = page_id;
}

double
Fcht::avgProbeLength() const
{
    return lookups_ ? static_cast<double>(probes_) /
        static_cast<double>(lookups_) : 0.0;
}

// ---------------------------------------------------------------------
// Seed chained implementation (reference oracle / bench baseline).
// ---------------------------------------------------------------------

FchtChained::FchtChained(std::size_t buckets)
    : buckets_(buckets == 0 ? 1 : buckets)
{
}

std::uint64_t
FchtChained::find(Lba lba) const
{
    ++lookups_;
    const auto& chain = buckets_[bucketOf(lba)];
    for (const Entry& e : chain) {
        ++probes_;
        if (e.lba == lba)
            return e.pageId;
    }
    return npos;
}

void
FchtChained::insert(Lba lba, std::uint64_t page_id)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (const Entry& e : chain) {
        if (e.lba == lba)
            panic("FCHT double insert for LBA");
    }
    chain.push_back({lba, page_id});
    ++size_;
}

bool
FchtChained::erase(Lba lba)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].lba == lba) {
            chain[i] = chain.back();
            chain.pop_back();
            --size_;
            return true;
        }
    }
    return false;
}

void
FchtChained::update(Lba lba, std::uint64_t page_id)
{
    auto& chain = buckets_[bucketOf(lba)];
    for (Entry& e : chain) {
        if (e.lba == lba) {
            e.pageId = page_id;
            return;
        }
    }
    panic("FCHT update of missing LBA");
}

double
FchtChained::avgProbeLength() const
{
    return lookups_ ? static_cast<double>(probes_) /
        static_cast<double>(lookups_) : 0.0;
}

} // namespace flashcache
