/**
 * @file
 * Page reconfiguration policy (paper section 5.2).
 *
 * When a page starts failing consistently, the driver must choose
 * between enforcing a stronger ECC and reducing the cell density
 * (MLC -> SLC). The paper picks whichever costs less overall access
 * latency, using heuristics over runtime statistics from the FPST
 * and FGST:
 *
 *   dt_cs   = freq_i * dcode_delay                (stronger ECC)
 *   dt_d   ~= dmiss * (t_miss + t_hit)            (capacity loss)
 *            - freq_i * dSLC                      (faster reads)
 *
 * where freq_i is the page's relative access frequency, dcode_delay
 * the extra decode latency of the next ECC level, dmiss the miss
 * rate increase from halving the page's density, and dSLC the read
 * latency saved by SLC sensing. A second, independent trigger
 * migrates read-hot MLC pages to SLC when their FPST access counter
 * saturates (section 5.2.2).
 */

#ifndef FLASHCACHE_CONTROLLER_RECONFIG_POLICY_HH
#define FLASHCACHE_CONTROLLER_RECONFIG_POLICY_HH

#include "util/types.hh"

namespace flashcache {

/** What to do with a page whose error count reached its ECC limit. */
enum class ReconfigDecision
{
    IncreaseEcc,  ///< bump the page's BCH strength
    SwitchToSlc,  ///< halve density, keep (or reset) strength
    RetireBlock,  ///< both knobs exhausted: remove the block
};

/** Runtime statistics feeding one reconfiguration decision. */
struct ReconfigInputs
{
    /** Relative access frequency of the page, in [0, 1]. */
    double pageAccessFreq = 0.0;

    /** Current flash disk-cache miss rate (FGST). */
    double missRate = 0.0;

    /** Average miss penalty t_miss (FGST), seconds. */
    Seconds missPenalty = 0.0;

    /** Average hit latency t_hit (FGST), seconds. */
    Seconds hitLatency = 0.0;

    /** Extra decode latency of stepping the ECC one level up. */
    Seconds deltaCodeDelay = 0.0;

    /** Read latency saved by SLC vs MLC sensing. */
    Seconds deltaSlcGain = 0.0;

    /** Estimated miss-rate increase from losing one page of
     *  capacity (half a frame). */
    double deltaMiss = 0.0;

    /** False when the page already runs the maximum BCH strength. */
    bool canIncreaseEcc = true;

    /** False when the page is already SLC. */
    bool canSwitchToSlc = true;
};

/** Latency-cost heuristics of section 5.2.1. */
struct ReconfigCosts
{
    Seconds strongerEcc = 0.0;   ///< dt_cs
    Seconds densitySwitch = 0.0; ///< dt_d
};

/**
 * Stateless decision engine; one instance per cache is fine.
 */
class ReconfigPolicy
{
  public:
    /** Evaluate both heuristic costs (exposed for tests/benches). */
    static ReconfigCosts costs(const ReconfigInputs& in);

    /** Choose the response to a fault increase (section 5.2.1). */
    static ReconfigDecision onFaultIncrease(const ReconfigInputs& in);
};

} // namespace flashcache

#endif // FLASHCACHE_CONTROLLER_RECONFIG_POLICY_HH
