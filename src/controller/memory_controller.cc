#include "controller/memory_controller.hh"

#include <algorithm>
#include <cstring>

#include "ecc/crc32.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace flashcache {

namespace {

/** OOB magic bytes: make an all-zero (torn/unwritten) spare tail
 *  unparseable even in the vanishing case of a colliding CRC. */
constexpr std::uint8_t kOobMagic0 = 0xF1;
constexpr std::uint8_t kOobMagic1 = 0x0C;

} // namespace

void
packOobRecord(std::uint8_t* spare, std::uint32_t spare_bytes,
              const OobRecord& rec)
{
    if (spare_bytes < kOobRecordBytes)
        panic("spare area too small for the OOB record");
    std::uint8_t* const tail = spare + spare_bytes - kOobRecordBytes;
    std::memcpy(tail, &rec.lba, 8);
    std::memcpy(tail + 8, &rec.seq, 8);
    tail[16] = static_cast<std::uint8_t>((rec.dirty ? 1 : 0) |
                                         ((rec.region & 1) << 1));
    tail[17] = rec.eccStrength;
    tail[18] = kOobMagic0;
    tail[19] = kOobMagic1;
    // The OOB CRC covers everything before it: data CRC, BCH parity,
    // and the record body — one check rejects any torn prefix.
    const std::uint32_t crc = crc32(spare, spare_bytes - 4);
    std::memcpy(tail + 20, &crc, 4);
}

bool
parseOobRecord(const std::uint8_t* spare, std::uint32_t spare_bytes,
               OobRecord& rec)
{
    if (spare_bytes < kOobRecordBytes)
        return false;
    const std::uint8_t* const tail = spare + spare_bytes - kOobRecordBytes;
    if (tail[18] != kOobMagic0 || tail[19] != kOobMagic1)
        return false;
    std::uint32_t stored;
    std::memcpy(&stored, tail + 20, 4);
    if (crc32(spare, spare_bytes - 4) != stored)
        return false;
    std::memcpy(&rec.lba, tail, 8);
    std::memcpy(&rec.seq, tail + 8, 8);
    rec.dirty = (tail[16] & 1) != 0;
    rec.region = (tail[16] >> 1) & 1;
    rec.eccStrength = tail[17];
    return true;
}

FlashMemoryController::FlashMemoryController(FlashDevice& device,
                                             const EccTimingModel& timing,
                                             unsigned max_ecc)
    : device_(&device), timing_(timing), maxEcc_(max_ecc),
      injectRng_(0xC0FFEE)
{
}

void
FlashMemoryController::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("controller.reads", "controller page reads",
                &stats_.reads);
    reg.counter("controller.writes", "controller page programs",
                &stats_.writes);
    reg.counter("controller.erases", "controller block erases",
                &stats_.erases);
    reg.counter("ecc.corrected_reads", "reads with corrected errors",
                &stats_.correctedReads);
    reg.counter("ecc.uncorrectable_reads",
                "reads past the code strength",
                &stats_.uncorrectableReads);
    reg.counter("ecc.bits_corrected", "total bits corrected",
                &stats_.bitsCorrected);
    reg.counter("ecc.busy", "ECC engine busy seconds",
                &stats_.eccTime);
    reg.counter("controller.program_failures",
                "program-status failures reported by the device",
                &stats_.programFailures);
    reg.counter("controller.erase_failures",
                "erase failures reported by the device",
                &stats_.eraseFailures);
    const ControllerStats* st = &stats_;
    reg.gauge("ecc.corrected_read_rate",
              "fraction of reads needing correction", [st] {
                  return st->reads ? static_cast<double>(
                      st->correctedReads) /
                      static_cast<double>(st->reads) : 0.0;
              });
}

const BchCode&
FlashMemoryController::codeFor(unsigned t)
{
    auto it = codes_.find(t);
    if (it == codes_.end()) {
        it = codes_.emplace(t, std::make_unique<BchCode>(
            15, t, device_->geometry().pageDataBytes * 8)).first;
    }
    return *it->second;
}

ControllerReadResult
FlashMemoryController::readPage(const PageAddress& addr,
                                const PageDescriptor& desc)
{
    ControllerReadResult res;
    const auto raw = device_->readPage(addr);
    res.rawBitErrors = raw.hardBitErrors;

    const Seconds ecc_lat = decodeLatency(desc.eccStrength);
    FC_LEAF(tracer_, "flash.read", "flash", raw.latency);
    FC_LEAF(tracer_, "ecc.decode", "ecc", ecc_lat);
    res.latency = raw.latency + ecc_lat;
    stats_.eccTime += ecc_lat;
    if (demands_)
        demands_->record(sched::ResourceKind::Ecc, 0, ecc_lat);
    ++stats_.reads;

    if (raw.hardBitErrors == 0) {
        res.status = ReadStatus::Clean;
    } else if (raw.hardBitErrors <= desc.eccStrength) {
        res.status = ReadStatus::Corrected;
        res.correctedBits = raw.hardBitErrors;
        ++stats_.correctedReads;
        stats_.bitsCorrected += raw.hardBitErrors;
    } else {
        res.status = ReadStatus::Uncorrectable;
        ++stats_.uncorrectableReads;
    }
    return res;
}

ControllerWriteResult
FlashMemoryController::writePage(const PageAddress& addr,
                                 const PageDescriptor& desc)
{
    const Seconds enc = timing_.encodeLatency(desc.eccStrength);
    const auto prog = device_->programPage(addr);
    FC_LEAF(tracer_, "ecc.encode", "ecc", enc);
    FC_LEAF(tracer_, "flash.program", "flash", prog.latency);
    stats_.eccTime += enc;
    if (demands_)
        demands_->record(sched::ResourceKind::Ecc, 0, enc);
    ++stats_.writes;
    if (prog.failed) {
        ++stats_.programFailures;
        FC_INSTANT(tracer_, "fault.program_fail", "fault");
    }
    return {prog.latency + enc, prog.failed};
}

ControllerEraseResult
FlashMemoryController::eraseBlock(std::uint32_t block)
{
    ++stats_.erases;
    const auto er = device_->eraseBlock(block);
    FC_LEAF(tracer_, "flash.erase", "flash", er.latency);
    if (er.failed) {
        ++stats_.eraseFailures;
        FC_INSTANT(tracer_, "fault.erase_fail", "fault");
    }
    return {er.latency, er.failed};
}

ControllerWriteResult
FlashMemoryController::writePageReal(const PageAddress& addr,
                                     const PageDescriptor& desc,
                                     const std::uint8_t* data,
                                     const OobRecord* oob)
{
    const auto& geom = device_->geometry();
    wspare_.assign(geom.pageSpareBytes, 0);

    // Spare layout: [0..3] CRC32 of the data, [4..] BCH parity, and
    // (cache programs) the self-describing OOB record in the tail.
    const std::uint32_t crc = crc32(data, geom.pageDataBytes);
    std::memcpy(wspare_.data(), &crc, 4);
    if (desc.eccStrength > 0) {
        const BchCode& code = codeFor(desc.eccStrength);
        const std::uint32_t reserved = oob ? kOobRecordBytes : 0;
        if (4 + code.parityBytes() + reserved > geom.pageSpareBytes)
            panic("BCH parity does not fit the spare area");
        code.encode(data, wspare_.data() + 4);
    }
    if (oob)
        packOobRecord(wspare_.data(), geom.pageSpareBytes, *oob);

    const Seconds enc = timing_.encodeLatency(desc.eccStrength);
    const auto prog = device_->programPage(addr, data, wspare_.data());
    FC_LEAF(tracer_, "ecc.encode", "ecc", enc);
    FC_LEAF(tracer_, "flash.program", "flash", prog.latency);
    stats_.eccTime += enc;
    if (demands_)
        demands_->record(sched::ResourceKind::Ecc, 0, enc);
    ++stats_.writes;
    if (prog.failed) {
        ++stats_.programFailures;
        FC_INSTANT(tracer_, "fault.program_fail", "fault");
    }
    return {prog.latency + enc, prog.failed};
}

ControllerReadResult
FlashMemoryController::readPageReal(const PageAddress& addr,
                                    const PageDescriptor& desc,
                                    std::uint8_t* out,
                                    unsigned extra_bit_errors)
{
    const auto& geom = device_->geometry();
    ControllerReadResult res;

    const auto raw = device_->readPage(addr);
    const Seconds ecc_lat = decodeLatency(desc.eccStrength);
    FC_LEAF(tracer_, "flash.read", "flash", raw.latency);
    FC_LEAF(tracer_, "ecc.decode", "ecc", ecc_lat);
    res.latency = raw.latency + ecc_lat;
    stats_.eccTime += ecc_lat;
    if (demands_)
        demands_->record(sched::ResourceKind::Ecc, 0, ecc_lat);
    ++stats_.reads;

    const PageBytes stored = device_->pageData(addr);
    if (!stored)
        panic("real data path requires a store_data FlashDevice");

    dataBuf_.assign(stored.data, stored.data + geom.pageDataBytes);
    spareBuf_.assign(stored.data + geom.pageDataBytes,
                     stored.data + stored.size);

    // Physically inject the medium's hard errors (plus any extra the
    // caller wants) across the protected region: data + parity.
    const unsigned nerr = raw.hardBitErrors + extra_bit_errors;
    res.rawBitErrors = nerr;
    const std::uint32_t parity_bits = desc.eccStrength > 0
        ? codeFor(desc.eccStrength).parityBits() : 0;
    const std::uint32_t protected_bits = geom.pageDataBytes * 8 +
        parity_bits;
    // Rejection sampling into a flat workspace; one RNG draw per loop
    // iteration with duplicates re-drawn, exactly like the previous
    // std::set-based sampler, so injection sequences are unchanged.
    pickBuf_.clear();
    while (pickBuf_.size() < nerr && pickBuf_.size() < protected_bits) {
        const auto p = static_cast<std::uint32_t>(
            injectRng_.uniformInt(protected_bits));
        if (std::find(pickBuf_.begin(), pickBuf_.end(), p) ==
            pickBuf_.end()) {
            pickBuf_.push_back(p);
        }
    }
    for (const std::uint32_t p : pickBuf_) {
        if (p < geom.pageDataBytes * 8) {
            dataBuf_[p / 8] ^= static_cast<std::uint8_t>(1u << (p % 8));
        } else {
            const std::uint32_t q = p - geom.pageDataBytes * 8;
            spareBuf_[4 + q / 8] ^=
                static_cast<std::uint8_t>(1u << (q % 8));
        }
    }

    bool ok = true;
    unsigned corrected = 0;
    if (desc.eccStrength > 0) {
        const BchCode& code = codeFor(desc.eccStrength);
        const auto dec = code.decode(dataBuf_.data(),
                                     spareBuf_.data() + 4);
        ok = dec.ok;
        corrected = dec.correctedBits;
    } else {
        ok = pickBuf_.empty();
    }

    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, spareBuf_.data(), 4);
    const bool crc_ok = crc32(dataBuf_.data(), geom.pageDataBytes) ==
        stored_crc;

    std::memcpy(out, dataBuf_.data(), geom.pageDataBytes);
    if (ok && crc_ok) {
        if (corrected == 0 && pickBuf_.empty()) {
            res.status = ReadStatus::Clean;
        } else {
            res.status = ReadStatus::Corrected;
            res.correctedBits = corrected;
            ++stats_.correctedReads;
            stats_.bitsCorrected += corrected;
        }
    } else {
        res.status = ReadStatus::Uncorrectable;
        ++stats_.uncorrectableReads;
    }
    return res;
}

} // namespace flashcache
