#include "controller/reconfig_policy.hh"

namespace flashcache {

ReconfigCosts
ReconfigPolicy::costs(const ReconfigInputs& in)
{
    ReconfigCosts c;
    c.strongerEcc = in.pageAccessFreq * in.deltaCodeDelay;
    c.densitySwitch = in.deltaMiss * (in.missPenalty + in.hitLatency) -
        in.pageAccessFreq * in.deltaSlcGain;
    return c;
}

ReconfigDecision
ReconfigPolicy::onFaultIncrease(const ReconfigInputs& in)
{
    if (!in.canIncreaseEcc && !in.canSwitchToSlc)
        return ReconfigDecision::RetireBlock;
    if (!in.canIncreaseEcc)
        return ReconfigDecision::SwitchToSlc;
    if (!in.canSwitchToSlc)
        return ReconfigDecision::IncreaseEcc;

    const ReconfigCosts c = costs(in);
    return c.strongerEcc <= c.densitySwitch
        ? ReconfigDecision::IncreaseEcc
        : ReconfigDecision::SwitchToSlc;
}

} // namespace flashcache
