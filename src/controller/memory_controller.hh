/**
 * @file
 * The programmable flash memory controller (paper section 4).
 *
 * Sits between the software-managed disk cache and the raw NAND
 * device. Every access carries a descriptor — ECC strength and
 * density mode read out of the FPST by the driver — and the
 * controller runs the (modeled or real) BCH + CRC pipeline at that
 * strength.
 *
 * Two data paths share one timing/correctness contract:
 *  - Modeled (default): bit errors come as counts from the device's
 *    reliability model; correction succeeds iff count <= strength.
 *    Fast enough for billion-access trace simulation.
 *  - Real: page payloads round-trip through the actual BchCode
 *    encoder/decoder with physically injected bit flips, and CRC32
 *    verifies the result. Used by integration tests and the
 *    micro-benchmarks; requires a store_data FlashDevice.
 */

#ifndef FLASHCACHE_CONTROLLER_MEMORY_CONTROLLER_HH
#define FLASHCACHE_CONTROLLER_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/ecc_timing.hh"
#include "flash/flash_device.hh"
#include "util/types.hh"

namespace flashcache {

namespace obs {
class MetricRegistry;
class Tracer;
} // namespace obs

/** Per-access control message generated from the FPST (section 5.2). */
struct PageDescriptor
{
    /** BCH correctable bits; 0 disables ECC (CRC only). */
    std::uint8_t eccStrength = 1;

    /** Requested density mode; must match the frame's current mode
     *  for reads. */
    DensityMode mode = DensityMode::MLC;
};

/** Outcome classification of a controller read. */
enum class ReadStatus : std::uint8_t
{
    Clean,         ///< no bit errors present
    Corrected,     ///< errors present, all corrected by BCH
    Uncorrectable, ///< more errors than the code strength (CRC flags)
};

/** Full result of a controller page read. */
struct ControllerReadResult
{
    ReadStatus status = ReadStatus::Clean;
    /** Errors the ECC engine repaired. */
    unsigned correctedBits = 0;
    /** Raw hard errors present on the medium. */
    unsigned rawBitErrors = 0;
    /** Flash array + ECC decode + CRC latency. */
    Seconds latency = 0.0;
};

/** Result of a controller page program. */
struct ControllerWriteResult
{
    /** Encode + program latency. */
    Seconds latency = 0.0;
    /** Device reported program-status failure; page holds garbage. */
    bool failed = false;
};

/** Result of a controller block erase. */
struct ControllerEraseResult
{
    Seconds latency = 0.0;
    /** Erase verify failed; the block must be retired. */
    bool failed = false;
};

/** Controller-side counters. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t erases = 0;
    std::uint64_t correctedReads = 0;
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t bitsCorrected = 0;
    std::uint64_t programFailures = 0;
    std::uint64_t eraseFailures = 0;
    Seconds eccTime = 0.0;
};

/**
 * Self-describing out-of-band record stored in the tail of the spare
 * area by every real-path cache program. Recovery rebuilds the DRAM
 * tables (FCHT/FPST/FBST, region membership) from these records
 * alone; the CRC (which also covers the data CRC and BCH parity
 * earlier in the spare) plus a 2-byte magic rejects torn pages.
 */
struct OobRecord
{
    Lba lba = kInvalidLba;
    /** Global program sequence number; resolves duplicate LBAs. */
    std::uint64_t seq = 0;
    /** Owning region at program time (0 = read, 1 = write). */
    std::uint8_t region = 0;
    /** Page held data newer than the backing store. */
    bool dirty = false;
    /** ECC strength the page was encoded at. */
    std::uint8_t eccStrength = 1;
};

/** Spare-area bytes reserved for the OOB record (tail of the spare):
 *  lba(8) seq(8) flags(1) ecc(1) magic(2) crc(4). */
inline constexpr std::uint32_t kOobRecordBytes = 24;

/** Serialize an OOB record into the spare tail; `spare` must span
 *  the full spare area and spare_bytes >= kOobRecordBytes. */
void packOobRecord(std::uint8_t* spare, std::uint32_t spare_bytes,
                   const OobRecord& rec);

/** Parse and CRC-validate the spare tail. @return false for torn,
 *  erased-noise, or pre-OOB pages. */
bool parseOobRecord(const std::uint8_t* spare, std::uint32_t spare_bytes,
                    OobRecord& rec);

/**
 * Programmable controller front-end over one FlashDevice.
 */
class FlashMemoryController
{
  public:
    /**
     * @param device  The NAND array this controller drives.
     * @param timing  ECC accelerator timing model.
     * @param max_ecc Hardware strength limit (paper: 12).
     */
    FlashMemoryController(FlashDevice& device,
                          const EccTimingModel& timing = EccTimingModel(),
                          unsigned max_ecc = 12);

    FlashDevice& device() { return *device_; }
    const FlashDevice& device() const { return *device_; }
    unsigned maxEccStrength() const { return maxEcc_; }
    const EccTimingModel& timingModel() const { return timing_; }

    /** Modeled-path read: error counts, no payload. */
    ControllerReadResult readPage(const PageAddress& addr,
                                  const PageDescriptor& desc);

    /** Modeled-path program. */
    ControllerWriteResult writePage(const PageAddress& addr,
                                    const PageDescriptor& desc);

    ControllerEraseResult eraseBlock(std::uint32_t block);

    /**
     * Real-path program: encodes `data` (pageDataBytes) with BCH at
     * the descriptor strength plus CRC32 into the spare area and
     * stores it in the device. When `oob` is given the record is
     * packed into the spare tail (kOobRecordBytes) for crash
     * recovery. Requires a store_data device.
     */
    ControllerWriteResult writePageReal(const PageAddress& addr,
                                        const PageDescriptor& desc,
                                        const std::uint8_t* data,
                                        const OobRecord* oob = nullptr);

    /**
     * Real-path read: fetches the stored payload, flips
     * device-reported hard error bits plus any extra injected ones,
     * runs the real BCH decode and CRC check, and returns the
     * recovered payload in `out` (pageDataBytes).
     */
    ControllerReadResult readPageReal(const PageAddress& addr,
                                      const PageDescriptor& desc,
                                      std::uint8_t* out,
                                      unsigned extra_bit_errors = 0);

    const ControllerStats& stats() const { return stats_; }

    /** Register `controller.*` and `ecc.*` metrics. */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /** Attach (or detach with nullptr) a request tracer; array and
     *  ECC latencies then appear as separate leaf events. */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }
    obs::Tracer* tracer() const { return tracer_; }

    /** Attach (or detach with nullptr) a scheduler demand sink: each
     *  encode/decode is recorded as an Ecc engine demand (the array
     *  op itself is recorded by the device). Not owned. */
    void attachDemandSink(sched::DemandSink* sink) { demands_ = sink; }

    /** Decode latency the pipeline charges at a strength. */
    Seconds
    decodeLatency(unsigned t) const
    {
        return timing_.decodeLatency(t).total() + timing_.crcLatency();
    }

  private:
    const BchCode& codeFor(unsigned t);

    FlashDevice* device_;
    EccTimingModel timing_;
    unsigned maxEcc_;
    ControllerStats stats_;
    obs::Tracer* tracer_ = nullptr;
    sched::DemandSink* demands_ = nullptr;
    std::map<unsigned, std::unique_ptr<BchCode>> codes_;
    Rng injectRng_;

    /// @name Real-path workspaces, reused across calls so steady
    /// state allocates nothing (the PR 1 BCH workspace pattern);
    /// makes readPageReal/writePageReal non-reentrant.
    /// @{
    std::vector<std::uint8_t> dataBuf_;
    std::vector<std::uint8_t> spareBuf_;
    std::vector<std::uint8_t> wspare_;
    std::vector<std::uint32_t> pickBuf_;
    /// @}
};

} // namespace flashcache

#endif // FLASHCACHE_CONTROLLER_MEMORY_CONTROLLER_HH
