#include "util/atomic_file.hh"

#include <cstdio>
#include <fstream>

namespace flashcache {

bool
atomicWriteFile(const std::string& path,
                const std::function<void(std::ostream&)>& writer)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        writer(os);
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace flashcache
