#include "util/log.hh"

#include <cstdio>
#include <cstdlib>

namespace flashcache {

namespace {
bool verboseEnabled = true;
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string& msg)
{
    if (verboseEnabled)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace flashcache
