#include "util/log.hh"

#include <cstdio>
#include <cstdlib>

namespace flashcache {

namespace {

const char*
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "log";
}

void
stderrSink(LogLevel level, const std::string& msg)
{
    std::fprintf(stderr, "%s: %s\n", levelPrefix(level), msg.c_str());
}

LogSink activeSink = stderrSink;
LogLevel activeLevel = LogLevel::Info;

} // namespace

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
setLogSink(LogSink sink)
{
    activeSink = sink ? std::move(sink) : stderrSink;
}

void
setLogLevel(LogLevel level)
{
    activeLevel = level;
}

LogLevel
logLevel()
{
    return activeLevel;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(activeLevel))
        return;
    activeSink(level, msg);
}

void
debug(const std::string& msg)
{
    logMessage(LogLevel::Debug, msg);
}

void
inform(const std::string& msg)
{
    logMessage(LogLevel::Info, msg);
}

void
warn(const std::string& msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
error(const std::string& msg)
{
    logMessage(LogLevel::Error, msg);
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

} // namespace flashcache
