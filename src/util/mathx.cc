#include "util/mathx.hh"

#include <cmath>
#include <limits>

#include "util/log.hh"

namespace flashcache {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalCdfInv(double p)
{
    if (p <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();

    // Acklam's algorithm: rational approximations in three regions,
    // refined with one Halley step against erfc for ~1e-15 accuracy.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
             + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
              + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step.
    const double e = normalCdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double
logChoose(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return -std::numeric_limits<double>::infinity();
    return std::lgamma(static_cast<double>(n) + 1.0) -
        std::lgamma(static_cast<double>(k) + 1.0) -
        std::lgamma(static_cast<double>(n - k) + 1.0);
}

double
logAddExp(double a, double b)
{
    if (a == -std::numeric_limits<double>::infinity())
        return b;
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    const double m = a > b ? a : b;
    return m + std::log1p(std::exp(-(a > b ? a - b : b - a)));
}

double
binomialTailAbove(std::uint64_t n, double p, std::uint64_t t)
{
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return t >= n ? 0.0 : 1.0;
    if (t >= n)
        return 0.0;

    const double mean = static_cast<double>(n) * p;

    // Exact lower-tail sum: valid and fast whenever t is small, which
    // covers ECC strengths (t <= ~64).
    if (t <= 256) {
        const double logp = std::log(p);
        const double log1mp = std::log1p(-p);
        double log_cdf = -std::numeric_limits<double>::infinity();
        for (std::uint64_t k = 0; k <= t; ++k) {
            const double term = logChoose(n, k) +
                static_cast<double>(k) * logp +
                static_cast<double>(n - k) * log1mp;
            log_cdf = logAddExp(log_cdf, term);
        }
        const double cdf = std::exp(log_cdf);
        return cdf >= 1.0 ? 0.0 : 1.0 - cdf;
    }

    // Large-t fallback: normal approximation with continuity correction.
    const double sd = std::sqrt(mean * (1.0 - p));
    return 1.0 - normalCdf((static_cast<double>(t) + 0.5 - mean) / sd);
}

} // namespace flashcache
