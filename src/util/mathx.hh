/**
 * @file
 * Numerical helpers for the reliability model: the standard normal
 * CDF and its inverse, and log-space binomial tail probabilities used
 * to evaluate P(page has more bad bits than the ECC can correct).
 */

#ifndef FLASHCACHE_UTIL_MATHX_HH
#define FLASHCACHE_UTIL_MATHX_HH

#include <cstdint>

namespace flashcache {

/** Standard normal CDF Phi(x). */
double normalCdf(double x);

/** Inverse standard normal CDF (Acklam's rational approximation). */
double normalCdfInv(double p);

/** log(n choose k) via lgamma. */
double logChoose(std::uint64_t n, std::uint64_t k);

/**
 * Upper binomial tail P(X > t) for X ~ Binomial(n, p), computed
 * stably in log space; exact summation of the lower tail when t is
 * small (the regime the ECC model lives in), with a normal
 * approximation fallback for large n*p.
 */
double binomialTailAbove(std::uint64_t n, double p, std::uint64_t t);

/** log(exp(a) + exp(b)) without overflow. */
double logAddExp(double a, double b);

} // namespace flashcache

#endif // FLASHCACHE_UTIL_MATHX_HH
