/**
 * @file
 * Minimal gem5-style status/error reporting with leveled logging.
 *
 * panic() is for internal invariant violations (a flashcache bug);
 * fatal() is for user/configuration errors that make continuing
 * meaningless; debug()/inform()/warn()/error() report conditions
 * without stopping and are filtered by a global level and delivered
 * through a pluggable sink (default: prefixed lines on stderr).
 */

#ifndef FLASHCACHE_UTIL_LOG_HH
#define FLASHCACHE_UTIL_LOG_HH

#include <functional>
#include <sstream>
#include <string>

namespace flashcache {

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] void panic(const std::string& msg);

/** Exit(1) with a message; use for invalid user configuration. */
[[noreturn]] void fatal(const std::string& msg);

/** Severity of a non-fatal log message, least severe first. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Receives every message at or above the active level. */
using LogSink = std::function<void(LogLevel, const std::string&)>;

/**
 * Replace the log sink (nullptr restores the default stderr sink).
 * Level filtering happens before the sink is invoked.
 */
void setLogSink(LogSink sink);

/** Drop messages below this level. Default: LogLevel::Info. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit through the active sink if `level` passes the filter. */
void logMessage(LogLevel level, const std::string& msg);

/** Verbose diagnostics, off by default. */
void debug(const std::string& msg);

/** Print an informational message and continue. */
void inform(const std::string& msg);

/** Print a warning and continue. */
void warn(const std::string& msg);

/** Print an error (continuing is the caller's decision). */
void error(const std::string& msg);

/**
 * Legacy switch kept for existing call sites: verbose maps to
 * LogLevel::Info (inform() visible), quiet to LogLevel::Warn.
 */
void setVerbose(bool verbose);

} // namespace flashcache

#endif // FLASHCACHE_UTIL_LOG_HH
