/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic() is for internal invariant violations (a flashcache bug);
 * fatal() is for user/configuration errors that make continuing
 * meaningless; warn()/inform() report conditions without stopping.
 */

#ifndef FLASHCACHE_UTIL_LOG_HH
#define FLASHCACHE_UTIL_LOG_HH

#include <sstream>
#include <string>

namespace flashcache {

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] void panic(const std::string& msg);

/** Exit(1) with a message; use for invalid user configuration. */
[[noreturn]] void fatal(const std::string& msg);

/** Print a warning to stderr and continue. */
void warn(const std::string& msg);

/** Print an informational message to stderr and continue. */
void inform(const std::string& msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace flashcache

#endif // FLASHCACHE_UTIL_LOG_HH
