#include "util/rng.hh"

#include <cmath>

#include "util/log.hh"

namespace flashcache {

namespace {

/** splitmix64, used only to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("uniformInt(0)");
    // Rejection to avoid modulo bias.
    const std::uint64_t limit = ~static_cast<std::uint64_t>(0) -
        (~static_cast<std::uint64_t>(0) % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double lambda)
{
    // -log(1-u) with u in [0,1) avoids log(0).
    return -std::log1p(-uniform()) / lambda;
}

double
Rng::normal()
{
    if (haveCachedNormal_) {
        haveCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    haveCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean < 0)
        panic("poisson with negative mean");
    if (mean == 0)
        return 0;
    if (mean > 64.0) {
        const double v = normal(mean, std::sqrt(mean));
        return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    // Knuth inversion by multiplication.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
        prod *= uniform();
        ++k;
    }
    return k;
}

// ZipfSampler: rejection-inversion after Hormann & Derflinger (1996).
// h(x) integrates the density envelope (x+1)^-alpha.

double
ZipfSampler::h(double x) const
{
    if (alpha_ == 1.0)
        return std::log1p(x);
    return (std::pow(x + 1.0, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
}

double
ZipfSampler::hInv(double x) const
{
    if (alpha_ == 1.0)
        return std::expm1(x);
    return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_)) - 1.0;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    if (n == 0)
        fatal("ZipfSampler over empty support");
    if (alpha < 0.0)
        fatal("ZipfSampler with negative alpha");
    hx0_ = h(-0.5);
    hxn_ = h(static_cast<double>(n) - 0.5);
    // s bounds acceptance for the k = 0 bucket.
    s_ = 1.0 - hInv(h(0.5) - std::pow(1.0, -alpha_));
}

std::uint64_t
ZipfSampler::sample(Rng& rng) const
{
    if (alpha_ == 0.0)
        return rng.uniformInt(n_);
    while (true) {
        const double u = hx0_ + rng.uniform() * (hxn_ - hx0_);
        const double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5 < 0.0
            ? 0.0 : x + 0.5);
        if (k >= n_)
            k = n_ - 1;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ ||
            u >= h(kd + 0.5) - std::pow(kd + 1.0, -alpha_)) {
            return k;
        }
    }
}

} // namespace flashcache
