/**
 * @file
 * Common scalar types and unit helpers shared by every flashcache module.
 *
 * Time is carried as double seconds throughout the simulator; the
 * helpers below make device datasheet constants (Table 2/3 of the
 * paper) readable at their point of definition.
 */

#ifndef FLASHCACHE_UTIL_TYPES_HH
#define FLASHCACHE_UTIL_TYPES_HH

#include <cstdint>

namespace flashcache {

/** Logical block address on the backing disk, in units of cache pages. */
using Lba = std::uint64_t;

/** Simulated time, in seconds. */
using Seconds = double;

/** Energy, in joules. */
using Joules = double;

/** Power, in watts. */
using Watts = double;

/** An invalid/empty LBA marker. */
inline constexpr Lba kInvalidLba = ~static_cast<Lba>(0);

/// @name Unit constructors for datasheet constants.
/// @{
constexpr Seconds nanoseconds(double v) { return v * 1e-9; }
constexpr Seconds microseconds(double v) { return v * 1e-6; }
constexpr Seconds milliseconds(double v) { return v * 1e-3; }

constexpr Watts milliwatts(double v) { return v * 1e-3; }
constexpr Watts microwatts(double v) { return v * 1e-6; }

constexpr std::uint64_t kib(std::uint64_t v) { return v << 10; }
constexpr std::uint64_t mib(std::uint64_t v) { return v << 20; }
constexpr std::uint64_t gib(std::uint64_t v) { return v << 30; }
/// @}

} // namespace flashcache

#endif // FLASHCACHE_UTIL_TYPES_HH
