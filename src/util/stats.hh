/**
 * @file
 * Statistics primitives used by every flashcache module: streaming
 * mean/variance, ratio counters, and fixed-bin histograms. These back
 * the FGST (flash global status table) and the per-bench reporting.
 */

#ifndef FLASHCACHE_UTIL_STATS_HH
#define FLASHCACHE_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flashcache {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Hit/miss style ratio counter.
 */
class RatioStat
{
  public:
    void hit() { ++hits_; }
    void miss() { ++misses_; }
    void reset() { hits_ = misses_ = 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t total() const { return hits_ + misses_; }

    /** Miss ratio in [0,1]; 0 when no events were recorded. */
    double missRate() const;

    /** Hit ratio in [0,1]; 0 when no events were recorded. */
    double hitRate() const;

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp
 * into the first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Lower edge of bin i (i == bins() gives the upper range edge). */
    double
    binLo(std::size_t i) const
    {
        return lo_ + static_cast<double>(i) * width_;
    }

    std::uint64_t total() const { return total_; }

    /** Value below which the given fraction of samples fall. */
    double percentile(double p) const;

    /** Render "lo..hi: count" lines, skipping empty bins. */
    std::string toString() const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace flashcache

#endif // FLASHCACHE_UTIL_STATS_HH
