/**
 * @file
 * Crash-safe file replacement: write to a temporary sibling, then
 * rename over the target. A power cut or error mid-write leaves the
 * previous file contents intact — state snapshots are either the old
 * version or the complete new one, never a torn mix.
 */

#ifndef FLASHCACHE_UTIL_ATOMIC_FILE_HH
#define FLASHCACHE_UTIL_ATOMIC_FILE_HH

#include <functional>
#include <ostream>
#include <string>

namespace flashcache {

/**
 * Atomically replace `path`: `writer` streams the new contents into a
 * temporary file next to it, which is renamed over `path` only when
 * every write succeeded. On failure the temporary is removed and the
 * original file is untouched.
 *
 * @return true when the new contents are durably in place.
 */
bool atomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& writer);

} // namespace flashcache

#endif // FLASHCACHE_UTIL_ATOMIC_FILE_HH
