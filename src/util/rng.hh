/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * All stochastic behaviour in flashcache flows through Rng so that a
 * (seed, workload) pair replays bit-identically. The generator is
 * xoshiro256**; samplers cover the distributions the paper's
 * methodology needs (Table 4): uniform, Zipf (power-law file
 * popularity), exponential, and normal (oxide-thickness variation in
 * the wear-out model).
 */

#ifndef FLASHCACHE_UTIL_RNG_HH
#define FLASHCACHE_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace flashcache {

/**
 * xoshiro256** pseudo random generator with distribution samplers.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed replays the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /** Exponential variate with rate lambda (mean 1/lambda). */
    double exponential(double lambda);

    /** Standard normal variate (Box-Muller with caching). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Poisson variate with the given mean. Uses inversion for small
     * means and a normal approximation above 64.
     */
    std::uint64_t poisson(double mean);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

/**
 * Zipf(alpha) sampler over {0, .., n-1} using rejection-inversion
 * (Hormann & Derflinger), O(1) per sample even for large n.
 *
 * P(k) is proportional to 1 / (k+1)^alpha; rank 0 is the most popular
 * item. alpha = 0 degenerates to uniform.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Support size (number of distinct items).
     * @param alpha Tail exponent; the paper sweeps 0.8, 1.2, 1.6.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one rank in [0, n). */
    std::uint64_t sample(Rng& rng) const;

    std::uint64_t n() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double alpha_;
    double hx0_;
    double hxn_;
    double s_;
};

} // namespace flashcache

#endif // FLASHCACHE_UTIL_RNG_HH
