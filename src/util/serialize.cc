#include "util/serialize.hh"

namespace flashcache {

void
putMagic(std::ostream& os, const char (&magic)[9])
{
    os.write(magic, 8);
}

void
expectMagic(std::istream& is, const char (&magic)[9])
{
    char buf[8];
    is.read(buf, 8);
    if (!is || std::memcmp(buf, magic, 8) != 0)
        fatal(std::string("bad state file magic; expected ") + magic);
}

} // namespace flashcache
