#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/log.hh"

namespace flashcache {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RatioStat::missRate() const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(misses_) / static_cast<double>(t) : 0.0;
}

double
RatioStat::hitRate() const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(hits_) / static_cast<double>(t) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram with empty range");
}

void
Histogram::add(double x)
{
    double idx = (x - lo_) / width_;
    std::size_t bin;
    if (idx < 0.0) {
        bin = 0;
    } else if (idx >= static_cast<double>(counts_.size())) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>(idx);
    }
    ++counts_[bin];
    ++total_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return lo_;
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += static_cast<double>(counts_[i]);
        if (cum >= target)
            return binLo(i + 1);
    }
    return binLo(counts_.size());
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (!counts_[i])
            continue;
        os << binLo(i) << ".." << binLo(i + 1) << ": "
           << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace flashcache
