/**
 * @file
 * Minimal binary serialization helpers for persisting simulator
 * state (the section 3 tables are "read from the hard disk drive and
 * stored in DRAM at run-time"). Fixed little-endian-style encoding
 * of scalar PODs plus length-prefixed vectors; loaders fatal() on
 * malformed input rather than returning garbage.
 */

#ifndef FLASHCACHE_UTIL_SERIALIZE_HH
#define FLASHCACHE_UTIL_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/log.hh"

namespace flashcache {

/** Write one scalar. */
template <typename T>
void
putScalar(std::ostream& os, T v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/** Read one scalar; fatal on truncated input. */
template <typename T>
T
getScalar(std::istream& is)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is)
        fatal("truncated state file");
    return v;
}

/** Write a length-prefixed vector of scalars. */
template <typename T>
void
putVector(std::ostream& os, const std::vector<T>& v)
{
    putScalar<std::uint64_t>(os, v.size());
    for (const T& x : v)
        putScalar(os, x);
}

/** Read a length-prefixed vector of scalars. */
template <typename T>
std::vector<T>
getVector(std::istream& is)
{
    const auto n = getScalar<std::uint64_t>(is);
    if (n > (1ull << 32))
        fatal("implausible vector length in state file");
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(getScalar<T>(is));
    return v;
}

/** Write a fixed 8-byte magic tag. */
void putMagic(std::ostream& os, const char (&magic)[9]);

/** Read and verify an 8-byte magic tag; fatal on mismatch. */
void expectMagic(std::istream& is, const char (&magic)[9]);

} // namespace flashcache

#endif // FLASHCACHE_UTIL_SERIALIZE_HH
