/**
 * @file
 * Request-lifecycle tracer: scoped span events on the simulated
 * clock, recorded into a preallocated ring buffer and exportable as
 * Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * The tracer owns a simulated clock. Leaf events (a flash array
 * read, an ECC decode, a disk seek) record their modeled latency and
 * advance the clock; enclosing spans (a cache read, a GC pass, a
 * whole request) measure clock-now minus clock-at-entry, so spans
 * nest exactly and timestamps are monotone by construction — a GC
 * stall or an ECC-latency spike is visually attributable to the leaf
 * that consumed the time.
 *
 * Cost model: instrumentation sites take a `Tracer*` and do nothing
 * when it is null (one predictable branch). Defining
 * `FLASHCACHE_TRACING=0` compiles the FC_* macros to nothing, which
 * is the configuration the bench uses to prove the serving path is
 * unaffected. The ring buffer is sized once at construction and
 * never allocates while recording; when full it overwrites the
 * oldest events and counts the drops.
 */

#ifndef FLASHCACHE_OBS_TRACE_HH
#define FLASHCACHE_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/types.hh"

#ifndef FLASHCACHE_TRACING
#define FLASHCACHE_TRACING 1
#endif

namespace flashcache {
namespace obs {

/**
 * One completed event. Names are string literals interned by the
 * caller (the tracer stores the pointer, not a copy).
 */
struct TraceEvent
{
    const char* name;
    const char* cat;
    Seconds start;
    Seconds dur;
    std::uint32_t seq;   ///< record order, for stable sorting
    std::uint16_t depth; ///< span nesting depth at record time
};

class Tracer
{
  public:
    /** @param capacity Ring size in events (preallocated). */
    explicit Tracer(std::size_t capacity = 1u << 16);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// @name Simulated clock.
    /// @{
    Seconds now() const { return now_; }
    void advance(Seconds dt) { now_ += dt; }
    /// @}

    /** Record a leaf op of modeled duration `dur` and advance the
     *  clock past it. */
    void
    leaf(const char* name, const char* cat, Seconds dur)
    {
        record(name, cat, now_, dur);
        now_ += dur;
    }

    /** Record a zero-duration marker at the current clock. */
    void instant(const char* name, const char* cat)
    {
        record(name, cat, now_, 0.0);
    }

    /** Open a span; returns the depth token SpanGuard hands back. */
    std::uint16_t
    enter()
    {
        return depth_++;
    }

    /** Close a span opened at `start` with `enter()`'s token. */
    void
    exit(const char* name, const char* cat, Seconds start,
         std::uint16_t depth)
    {
        depth_ = depth;
        record(name, cat, start, now_ - start, depth);
    }

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t recorded() const { return seq_; }

    /** Discard all events (clock keeps running). */
    void clear();

    /** Events oldest-first (copies out of the ring). */
    std::vector<TraceEvent> events() const;

    /**
     * Chrome trace-event JSON: complete ("ph":"X") events with µs
     * timestamps on the simulated clock, sorted by start time so
     * viewers nest them correctly; span depth is echoed in args.
     */
    void exportChromeTrace(std::ostream& os) const;

  private:
    void
    record(const char* name, const char* cat, Seconds start,
           Seconds dur)
    {
        record(name, cat, start, dur, depth_);
    }

    void
    record(const char* name, const char* cat, Seconds start,
           Seconds dur, std::uint16_t depth)
    {
        TraceEvent& e = ring_[head_];
        e.name = name;
        e.cat = cat;
        e.start = start;
        e.dur = dur;
        e.seq = seq_++;
        e.depth = depth;
        if (++head_ == ring_.size())
            head_ = 0;
        if (count_ < ring_.size())
            ++count_;
        else
            ++dropped_;
    }

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint32_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint16_t depth_ = 0;
    Seconds now_ = 0.0;
};

/**
 * RAII span: captures the clock and depth at construction, records
 * the enclosing event at destruction. Null-safe — with no tracer the
 * whole object is two dead stores.
 */
class SpanGuard
{
  public:
    SpanGuard(Tracer* t, const char* name, const char* cat)
        : t_(t), name_(name), cat_(cat)
    {
        if (t_) {
            start_ = t_->now();
            depth_ = t_->enter();
        }
    }

    ~SpanGuard()
    {
        if (t_)
            t_->exit(name_, cat_, start_, depth_);
    }

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

  private:
    Tracer* t_;
    const char* name_;
    const char* cat_;
    Seconds start_ = 0.0;
    std::uint16_t depth_ = 0;
};

} // namespace obs
} // namespace flashcache

/// @name Instrumentation macros — compiled out when FLASHCACHE_TRACING=0.
/// @{
#define FC_OBS_CONCAT2(a, b) a##b
#define FC_OBS_CONCAT(a, b) FC_OBS_CONCAT2(a, b)

#if FLASHCACHE_TRACING
#define FC_SPAN(tracer, name, cat)                                      \
    ::flashcache::obs::SpanGuard FC_OBS_CONCAT(fcSpan, __LINE__)(       \
        (tracer), (name), (cat))
#define FC_LEAF(tracer, name, cat, dur)                                 \
    do {                                                                \
        ::flashcache::obs::Tracer* fcT = (tracer);                      \
        if (fcT)                                                        \
            fcT->leaf((name), (cat), (dur));                            \
    } while (0)
#define FC_INSTANT(tracer, name, cat)                                   \
    do {                                                                \
        ::flashcache::obs::Tracer* fcT = (tracer);                      \
        if (fcT)                                                        \
            fcT->instant((name), (cat));                                \
    } while (0)
#else
#define FC_SPAN(tracer, name, cat)                                      \
    do {                                                                \
    } while (0)
#define FC_LEAF(tracer, name, cat, dur)                                 \
    do {                                                                \
    } while (0)
#define FC_INSTANT(tracer, name, cat)                                   \
    do {                                                                \
    } while (0)
#endif
/// @}

#endif // FLASHCACHE_OBS_TRACE_HH
