/**
 * @file
 * Minimal JSON support for the observability exporters: a streaming
 * writer with deterministic member order (insertion order — the
 * stats schema promises stable key order) and a small recursive-
 * descent parser used by the golden tests, the bench cross-checks
 * and the trace validation.
 *
 * Deliberately tiny: objects preserve insertion order, numbers are
 * doubles, no unicode escapes beyond pass-through. Good enough to
 * round-trip everything this repository emits; not a general JSON
 * library.
 */

#ifndef FLASHCACHE_OBS_JSON_HH
#define FLASHCACHE_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flashcache {
namespace obs {

/**
 * Streaming JSON writer. Members appear exactly in emission order,
 * which is what makes the exported schemas stable. Misuse (a value
 * with no pending key inside an object, unbalanced end calls) is a
 * programming error and panics.
 */
class JsonWriter
{
  public:
    /** @param indent Spaces per nesting level; 0 = compact. */
    explicit JsonWriter(std::ostream& os, int indent = 2);

    /** The writer must be balanced (all scopes closed) when done. */
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the member key for the next value (objects only). */
    void key(std::string_view k);

    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void value(std::string_view v);
    void value(const char* v) { value(std::string_view(v)); }
    void nullValue();

    /// @name One-call members: key + value.
    /// @{
    template <typename T>
    void
    member(std::string_view k, T v)
    {
        key(k);
        value(v);
    }
    /// @}

  private:
    enum class Scope : std::uint8_t { Object, Array };

    /** Comma/newline bookkeeping before any value or key. */
    void preValue();
    void newlineIndent();
    void writeEscaped(std::string_view s);

    std::ostream* os_;
    int indent_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool keyPending_ = false;
};

/**
 * Parsed JSON value. Object members keep source order so key-order
 * assertions are possible.
 */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue* find(std::string_view key) const;

    /** Member keys in source order (empty unless an object). */
    std::vector<std::string> keys() const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 *
 * @param text  The document.
 * @param error Optional; receives a short description on failure.
 * @return The value, or nullopt on malformed input.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* error = nullptr);

} // namespace obs
} // namespace flashcache

#endif // FLASHCACHE_OBS_JSON_HH
