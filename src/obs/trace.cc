#include "obs/trace.hh"

#include <algorithm>

#include "obs/json.hh"

namespace flashcache {
namespace obs {

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

void
Tracer::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest event sits at head_ once the ring has wrapped.
    const std::size_t first =
        count_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    return out;
}

void
Tracer::exportChromeTrace(std::ostream& os) const
{
    std::vector<TraceEvent> evs = events();
    // Spans are recorded at close, so children precede their parents
    // in the ring; trace viewers want begin-time order.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.start != b.start)
                             return a.start < b.start;
                         if (a.depth != b.depth)
                             return a.depth < b.depth;
                         return a.seq < b.seq;
                     });

    JsonWriter w(os, 0);
    w.beginObject();
    w.member("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    for (const TraceEvent& e : evs) {
        w.beginObject();
        w.member("name", e.name);
        w.member("cat", e.cat);
        w.member("ph", "X");
        w.member("ts", e.start * 1e6);
        w.member("dur", e.dur * 1e6);
        w.member("pid", 0);
        w.member("tid", 0);
        w.key("args");
        w.beginObject();
        w.member("depth", static_cast<std::int64_t>(e.depth));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace obs
} // namespace flashcache
