#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/log.hh"

namespace flashcache {
namespace obs {

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(&os), indent_(indent)
{
}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        warn("JsonWriter destroyed with unclosed scopes");
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    *os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_; ++i)
        *os_ << ' ';
}

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return; // top-level value
    if (stack_.back() == Scope::Object) {
        if (!keyPending_)
            panic("JsonWriter: value inside object without key()");
        keyPending_ = false;
        return; // key() already handled the comma/indent
    }
    if (!firstInScope_)
        *os_ << ',';
    firstInScope_ = false;
    newlineIndent();
}

void
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (keyPending_)
        panic("JsonWriter: key() twice without a value");
    if (!firstInScope_)
        *os_ << ',';
    firstInScope_ = false;
    newlineIndent();
    *os_ << '"';
    writeEscaped(k);
    *os_ << "\":";
    if (indent_ > 0)
        *os_ << ' ';
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    preValue();
    *os_ << '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || keyPending_)
        panic("JsonWriter: unbalanced endObject()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newlineIndent();
    *os_ << '}';
    firstInScope_ = false;
}

void
JsonWriter::beginArray()
{
    preValue();
    *os_ << '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        panic("JsonWriter: unbalanced endArray()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newlineIndent();
    *os_ << ']';
    firstInScope_ = false;
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the honest encoding.
        *os_ << "null";
        return;
    }
    // Shortest representation that round-trips a double; integers
    // under 2^53 print without an exponent or trailing ".0".
    char buf[40];
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::abs(v) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    *os_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    *os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    *os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    *os_ << (v ? "true" : "false");
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    *os_ << '"';
    writeEscaped(v);
    *os_ << '"';
}

void
JsonWriter::nullValue()
{
    preValue();
    *os_ << "null";
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    for (const char c : s) {
        switch (c) {
          case '"': *os_ << "\\\""; break;
          case '\\': *os_ << "\\\\"; break;
          case '\n': *os_ << "\\n"; break;
          case '\r': *os_ << "\\r"; break;
          case '\t': *os_ << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                *os_ << buf;
            } else {
                *os_ << c;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const char* what)
    {
        if (error_ && error_->empty()) {
            *error_ = std::string(what) + " at offset " +
                std::to_string(pos_);
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            fail("expected string");
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    fail("unterminated escape");
                    return false;
                }
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    // Basic-multilingual-plane only; encode as UTF-8.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return false;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseValue(JsonValue& v)
    {
        if (++depth_ > kMaxDepth) {
            fail("nesting too deep");
            --depth_;
            return false;
        }
        const bool ok = parseValueInner(v);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(JsonValue& v)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':') {
                    fail("expected ':' in object");
                    return false;
                }
                ++pos_;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                v.object.emplace_back(std::move(key),
                                      std::move(member));
                skipWs();
                if (pos_ >= text_.size()) {
                    fail("unterminated object");
                    return false;
                }
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                fail("expected ',' or '}' in object");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                v.array.push_back(std::move(item));
                skipWs();
                if (pos_ >= text_.size()) {
                    fail("unterminated array");
                    return false;
                }
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                fail("expected ',' or ']' in array");
                return false;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            return parseString(v.str);
        }
        if (literal("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return true;
        }
        if (literal("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return true;
        }
        if (literal("null")) {
            v.type = JsonValue::Type::Null;
            return true;
        }
        // Number: delegate validation + conversion to strtod over the
        // JSON number grammar's character set.
        const std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
                digits = true;
            ++pos_;
        }
        if (!digits) {
            pos_ = start;
            fail("unexpected character");
            return false;
        }
        const std::string num(text_.substr(start, pos_ - start));
        char* end = nullptr;
        v.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) {
            fail("malformed number");
            return false;
        }
        v.type = JsonValue::Type::Number;
        return true;
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

const JsonValue*
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto& [k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::vector<std::string>
JsonValue::keys() const
{
    std::vector<std::string> out;
    out.reserve(object.size());
    for (const auto& [k, v] : object)
        out.push_back(k);
    return out;
}

std::optional<JsonValue>
parseJson(std::string_view text, std::string* error)
{
    if (error)
        error->clear();
    return Parser(text, error).parse();
}

} // namespace obs
} // namespace flashcache
