/**
 * @file
 * Shared command-line plumbing for the observability exporters so
 * trace_tool and every bench expose the same `--stats-json FILE` /
 * `--trace-out FILE` flags without duplicating the parsing.
 */

#ifndef FLASHCACHE_OBS_CLI_HH
#define FLASHCACHE_OBS_CLI_HH

#include <cstddef>
#include <string>

namespace flashcache {
namespace obs {

class MetricRegistry;
class Tracer;

/** Observability flags recognised by every tool. */
struct CliOptions
{
    std::string statsJson; ///< --stats-json FILE (empty = off)
    std::string traceOut;  ///< --trace-out FILE (empty = off)
    std::size_t traceEvents = 1u << 16; ///< --trace-events N
    unsigned clients = 0;  ///< --clients N (0 = tool default)
    unsigned channels = 0; ///< --channels N (0 = tool default)

    bool wantStats() const { return !statsJson.empty(); }
    bool wantTrace() const { return !traceOut.empty(); }

    /**
     * Extract the flags above from argv, compacting it in place so
     * the caller's own argument handling never sees them. fatal()s
     * on a flag with a missing value.
     */
    static CliOptions parse(int& argc, char** argv);

    /** One-line usage text for tools' --help output. */
    static const char* help();
};

/** Write the registry snapshot to `path` (fatal on I/O failure). */
void writeStatsJson(const MetricRegistry& reg, const std::string& path);

/** Write the Chrome trace to `path` (fatal on I/O failure). */
void writeTrace(const Tracer& tracer, const std::string& path);

} // namespace obs
} // namespace flashcache

#endif // FLASHCACHE_OBS_CLI_HH
