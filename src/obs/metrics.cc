#include "obs/metrics.hh"

#include <iomanip>
#include <sstream>

#include "obs/json.hh"
#include "util/log.hh"

namespace flashcache {
namespace obs {

double
MetricRegistry::Entry::scalar() const
{
    if (u64)
        return static_cast<double>(*u64);
    if (f64)
        return *f64;
    if (fn)
        return fn();
    panic("metric '" + meta.name + "' has no scalar source");
}

void
MetricRegistry::add(Entry e)
{
    if (has(e.meta.name))
        fatal("duplicate metric '" + e.meta.name + "'");
    entries_.push_back(std::move(e));
}

void
MetricRegistry::counter(std::string name, std::string desc,
                        const std::uint64_t* v)
{
    Entry e;
    e.meta = {std::move(name), std::move(desc), MetricKind::Counter};
    e.u64 = v;
    add(std::move(e));
}

void
MetricRegistry::counter(std::string name, std::string desc,
                        const double* v)
{
    Entry e;
    e.meta = {std::move(name), std::move(desc), MetricKind::Counter};
    e.f64 = v;
    add(std::move(e));
}

void
MetricRegistry::gauge(std::string name, std::string desc,
                      std::function<double()> fn)
{
    Entry e;
    e.meta = {std::move(name), std::move(desc), MetricKind::Gauge};
    e.fn = std::move(fn);
    add(std::move(e));
}

void
MetricRegistry::histogram(std::string name, std::string desc,
                          const Histogram* h)
{
    Entry e;
    e.meta = {std::move(name), std::move(desc), MetricKind::Histogram};
    e.hist = h;
    add(std::move(e));
}

void
MetricRegistry::ratio(const std::string& prefix, const std::string& desc,
                      const RatioStat* r)
{
    gauge(prefix + "_hits", desc + " (hits)",
          [r] { return static_cast<double>(r->hits()); });
    gauge(prefix + "_misses", desc + " (misses)",
          [r] { return static_cast<double>(r->misses()); });
    gauge(prefix + "_hit_rate", desc + " (hit rate)",
          [r] { return r->hitRate(); });
}

void
MetricRegistry::runningStat(const std::string& prefix,
                            const std::string& desc, const RunningStat* s)
{
    gauge(prefix + "_count", desc + " (samples)",
          [s] { return static_cast<double>(s->count()); });
    gauge(prefix + "_mean", desc + " (mean)",
          [s] { return s->mean(); });
    gauge(prefix + "_min", desc + " (min)", [s] { return s->min(); });
    gauge(prefix + "_max", desc + " (max)", [s] { return s->max(); });
}

bool
MetricRegistry::has(std::string_view name) const
{
    for (const Entry& e : entries_) {
        if (e.meta.name == name)
            return true;
    }
    return false;
}

double
MetricRegistry::value(std::string_view name) const
{
    for (const Entry& e : entries_) {
        if (e.meta.name != name)
            continue;
        if (e.meta.kind == MetricKind::Histogram)
            panic("metric '" + e.meta.name +
                  "' is a histogram, not a scalar");
        return e.scalar();
    }
    panic("unknown metric '" + std::string(name) + "'");
}

void
MetricRegistry::visitScalars(
    const std::function<void(const MetricDesc&, double)>& fn) const
{
    for (const Entry& e : entries_) {
        if (e.meta.kind == MetricKind::Histogram)
            continue;
        fn(e.meta, e.scalar());
    }
}

std::vector<MetricDesc>
MetricRegistry::descriptors() const
{
    std::vector<MetricDesc> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(e.meta);
    return out;
}

void
MetricRegistry::toJson(std::ostream& os, std::string_view schema) const
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", schema);
    w.key("metrics");
    w.beginObject();
    for (const Entry& e : entries_) {
        if (e.meta.kind != MetricKind::Histogram) {
            w.member(e.meta.name, e.scalar());
            continue;
        }
        const Histogram& h = *e.hist;
        w.key(e.meta.name);
        w.beginObject();
        w.member("count", h.total());
        w.member("p50", h.percentile(0.50));
        w.member("p95", h.percentile(0.95));
        w.member("p99", h.percentile(0.99));
        w.key("bins");
        w.beginArray();
        for (std::size_t i = 0; i < h.bins(); ++i) {
            if (!h.binCount(i))
                continue;
            w.beginArray();
            w.value(h.binLo(i));
            w.value(h.binLo(i + 1));
            w.value(h.binCount(i));
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << '\n';
}

void
MetricRegistry::dumpText(std::ostream& os) const
{
    for (const Entry& e : entries_) {
        if (e.meta.kind == MetricKind::Histogram) {
            const Histogram& h = *e.hist;
            os << std::left << std::setw(36) << e.meta.name + ".count"
               << std::setw(18) << h.total()
               << "# " << e.meta.desc << " (samples)\n";
            std::ostringstream p50, p99;
            p50 << h.percentile(0.50);
            p99 << h.percentile(0.99);
            os << std::left << std::setw(36) << e.meta.name + ".p50"
               << std::setw(18) << p50.str()
               << "# " << e.meta.desc << " (median)\n";
            os << std::left << std::setw(36) << e.meta.name + ".p99"
               << std::setw(18) << p99.str()
               << "# " << e.meta.desc << " (99th pct)\n";
            continue;
        }
        // Counters backed by u64 print as integers; everything else
        // via ostream's default double formatting (matches the old
        // hand-written dumpStats lines).
        std::ostringstream val;
        if (e.u64)
            val << *e.u64;
        else
            val << e.scalar();
        os << std::left << std::setw(36) << e.meta.name
           << std::setw(18) << val.str()
           << "# " << e.meta.desc << "\n";
    }
}

} // namespace obs
} // namespace flashcache
