#include "obs/cli.hh"

#include <cstdlib>
#include <fstream>
#include <string_view>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace flashcache {
namespace obs {

CliOptions
CliOptions::parse(int& argc, char** argv)
{
    CliOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto takeValue = [&](const char* flag) -> const char* {
            if (i + 1 >= argc)
                fatal(std::string(flag) + " requires a value");
            return argv[++i];
        };
        if (arg == "--stats-json") {
            opts.statsJson = takeValue("--stats-json");
        } else if (arg == "--trace-out") {
            opts.traceOut = takeValue("--trace-out");
        } else if (arg == "--trace-events") {
            opts.traceEvents = static_cast<std::size_t>(
                std::strtoull(takeValue("--trace-events"), nullptr, 10));
            if (opts.traceEvents == 0)
                fatal("--trace-events must be positive");
        } else if (arg == "--clients") {
            opts.clients = static_cast<unsigned>(
                std::strtoul(takeValue("--clients"), nullptr, 10));
            if (opts.clients == 0)
                fatal("--clients must be positive");
        } else if (arg == "--channels") {
            opts.channels = static_cast<unsigned>(
                std::strtoul(takeValue("--channels"), nullptr, 10));
            if (opts.channels == 0)
                fatal("--channels must be positive");
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

const char*
CliOptions::help()
{
    return "  --stats-json FILE    write a JSON metrics snapshot\n"
           "  --trace-out FILE     write a Chrome trace-event JSON\n"
           "  --trace-events N     trace ring capacity (default 65536)\n"
           "  --clients N          closed-loop clients (scheduler)\n"
           "  --channels N         independent flash channels\n";
}

namespace {

std::ofstream
openOut(const std::string& path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '" + path + "' for writing");
    return os;
}

} // namespace

void
writeStatsJson(const MetricRegistry& reg, const std::string& path)
{
    std::ofstream os = openOut(path);
    reg.toJson(os);
    if (!os)
        fatal("error writing '" + path + "'");
}

void
writeTrace(const Tracer& tracer, const std::string& path)
{
    std::ofstream os = openOut(path);
    tracer.exportChromeTrace(os);
    if (!os)
        fatal("error writing '" + path + "'");
}

} // namespace obs
} // namespace flashcache
