/**
 * @file
 * Unified metric registry — the canonical naming and export layer
 * over every counter in the stack.
 *
 * Modules keep their cheap accumulation storage (the per-layer stat
 * structs increment plain fields on the hot path, which costs
 * nothing extra), and register each field here once at construction
 * under a stable dotted name (`system.*`, `pdc.*`, `cache.*`,
 * `controller.*`, `flash.*`, `ftl.*`, `ecc.*`, `power.*`). The
 * registry is the single source of truth for what a metric is
 * called, what it means, and how to read it; both exporters — the
 * gem5-style text dump and the JSON snapshot — render from it, so a
 * metric registered once appears everywhere.
 *
 * Read side only: sampling a gauge or serializing happens outside
 * the serving path. Registration order is the export order, which is
 * what makes the JSON schema's key order stable.
 */

#ifndef FLASHCACHE_OBS_METRICS_HH
#define FLASHCACHE_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace flashcache {
namespace obs {

/** What a registry entry measures. */
enum class MetricKind : std::uint8_t
{
    Counter,   ///< monotone count owned by a module (u64 or double)
    Gauge,     ///< computed on read
    Histogram, ///< distribution (bins + percentiles in exports)
};

/** One registered metric (histograms excluded from scalar visits). */
struct MetricDesc
{
    std::string name;
    std::string desc;
    MetricKind kind;
};

/**
 * The registry. Pointers/callbacks registered here must outlive the
 * registry (modules register fields of their own stat structs and
 * are destroyed after it, or the registry is rebuilt alongside).
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    /// @name Registration. Names must be unique; duplicates panic.
    /// @{
    void counter(std::string name, std::string desc,
                 const std::uint64_t* v);

    /** Floating counter: accumulated seconds/joules. */
    void counter(std::string name, std::string desc, const double* v);

    void gauge(std::string name, std::string desc,
               std::function<double()> fn);

    void histogram(std::string name, std::string desc,
                   const Histogram* h);

    /** Expands to `<prefix>_hits`, `_misses` and a `_hit_rate`
     *  gauge. */
    void ratio(const std::string& prefix, const std::string& desc,
               const RatioStat* r);

    /** Expands to `<prefix>_count`, `_mean`, `_min`, `_max`. */
    void runningStat(const std::string& prefix, const std::string& desc,
                     const RunningStat* s);
    /// @}

    std::size_t size() const { return entries_.size(); }
    bool has(std::string_view name) const;

    /** Sample one scalar metric by name; panics when the name is
     *  unknown or names a histogram. */
    double value(std::string_view name) const;

    /** Visit scalar metrics (counters + gauges) in registration
     *  order. */
    void visitScalars(
        const std::function<void(const MetricDesc&, double)>& fn) const;

    /** Metric descriptors in registration order (all kinds). */
    std::vector<MetricDesc> descriptors() const;

    /**
     * JSON snapshot with stable key order (= registration order):
     *
     *   { "schema": "<schema>",
     *     "metrics": { "name": <number>, ...,
     *                  "histname": {"count":..., "p50":..., "p95":...,
     *                                "p99":..., "bins":[[lo,hi,n],..]} } }
     */
    void toJson(std::ostream& os,
                std::string_view schema = "flashcache-stats-v1") const;

    /** gem5-style `name  value  # description` lines. */
    void dumpText(std::ostream& os) const;

  private:
    struct Entry
    {
        MetricDesc meta;
        const std::uint64_t* u64 = nullptr;
        const double* f64 = nullptr;
        std::function<double()> fn;
        const Histogram* hist = nullptr;

        double scalar() const;
    };

    void add(Entry e);

    std::vector<Entry> entries_;
};

} // namespace obs
} // namespace flashcache

#endif // FLASHCACHE_OBS_METRICS_HH
