#include "workload/macro.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace flashcache {

MacroWorkload::MacroWorkload(const MacroConfig& cfg)
    : cfg_(cfg),
      zipf_(std::max<std::uint64_t>(cfg.readPages, 1), cfg.alpha),
      writeZipf_(std::max<std::uint64_t>(cfg.readPages, 1),
                 cfg.writeAlpha > 0.0 ? cfg.writeAlpha : cfg.alpha)
{
}

std::uint64_t
MacroWorkload::workingSetPages() const
{
    return cfg_.readPages + cfg_.writeRangePages();
}

TraceRecord
MacroWorkload::next(Rng& rng)
{
    TraceRecord r;

    // Continue a sequential read run if one is open.
    if (runRemaining_ > 0) {
        --runRemaining_;
        r.lba = runNext_++ % cfg_.readPages;
        return r;
    }

    r.isWrite = rng.bernoulli(cfg_.writeFraction);

    if (r.isWrite) {
        const std::uint64_t wrank = writeZipf_.sample(rng);
        if (rng.bernoulli(cfg_.writeOverlap)) {
            r.lba = wrank;
        } else {
            r.lba = cfg_.readPages + wrank % cfg_.writeRangePages();
        }
        return r;
    }

    const std::uint64_t rank = zipf_.sample(rng);

    r.lba = rank;
    if (cfg_.seqRunMean > 1.0) {
        // Geometric run length with the configured mean.
        const double p = 1.0 / cfg_.seqRunMean;
        std::uint64_t len = 1;
        while (!rng.bernoulli(p) && len < 64)
            ++len;
        if (len > 1) {
            runRemaining_ = len - 1;
            runNext_ = r.lba + 1;
        }
    }
    return r;
}

std::vector<MacroConfig>
table4MacroConfigs(double scale)
{
    auto pages = [&](double mbytes) {
        return std::max<std::uint64_t>(
            static_cast<std::uint64_t>(mbytes * scale * 1024.0 * 1024.0 /
                                       2048.0), 64);
    };

    std::vector<MacroConfig> out;

    // dbt2 / OLTP on a 2 GB database: update-heavy transactions with
    // moderate skew; writes concentrate in a small hot slice (logs
    // and frequently updated tables).
    // Reads follow TPC-C's strong skew (most of the database is
    // cold history); writes concentrate further.
    out.push_back({"dbt2", "OLTP 2GB database (TPC-C style)",
                   pages(2048), 1.3, 1.5, 0.35, 0.15, 1.0, 0.0625});

    // SPECWeb99 on a 1.8 GB fileset: read-mostly web serving, strong
    // Zipf file popularity, short sequential file reads.
    out.push_back({"SPECWeb99", "1.8GB SPECWeb99 disk image",
                   pages(1843), 1.1, 0.0, 0.05, 0.50, 4.0, 0.10});

    // UMass WebSearch: nearly read-only index lookups over a very
    // large footprint (Figure 7 prints 5116.7 MB for trace 1).
    out.push_back({"WebSearch1", "search engine disk access pattern 1",
                   pages(5116.7), 0.7, 0.0, 0.01, 0.50, 2.0, 0.25});
    out.push_back({"WebSearch2", "search engine disk access pattern 2",
                   pages(4500), 0.75, 0.0, 0.01, 0.50, 2.0, 0.25});

    // UMass Financial: OLTP at a financial institution. Trace 1 is
    // write-dominated, trace 2 read-dominated with a small footprint
    // (Figure 7 prints 443.8 MB).
    out.push_back({"Financial1", "financial application pattern 1",
                   pages(700), 1.2, 0.0, 0.77, 0.60, 1.0, 0.25});
    // Alpha calibrated so the optimal SLC fraction at half the
    // working set is ~70%, matching the paper's Figure 7(a) reading
    // of the real trace's very strong locality.
    out.push_back({"Financial2", "financial application pattern 2",
                   pages(443.8), 1.5, 0.0, 0.18, 0.40, 1.0, 0.25});

    return out;
}

MacroConfig
macroConfig(const std::string& name, double scale)
{
    for (const MacroConfig& c : table4MacroConfigs(scale)) {
        if (c.name == name)
            return c;
    }
    fatal("unknown macro workload: " + name);
}

std::unique_ptr<WorkloadGenerator>
makeMacro(const MacroConfig& cfg)
{
    return std::make_unique<MacroWorkload>(cfg);
}

} // namespace flashcache
