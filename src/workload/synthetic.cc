#include "workload/synthetic.hh"

#include <cmath>

#include "util/log.hh"

namespace flashcache {

namespace {

/**
 * Shared skeleton: popularity-ranked page selection where rank 0 is
 * hottest, with separate read and write page ranges.
 */
class RankedWorkload : public WorkloadGenerator
{
  public:
    explicit RankedWorkload(const SyntheticConfig& cfg)
        : cfg_(cfg)
    {
        if (cfg.workingSetPages == 0)
            fatal("workload with empty working set");
        if (cfg.shape == TailShape::Zipf)
            zipf_ = std::make_unique<ZipfSampler>(cfg.workingSetPages,
                                                  cfg.alpha);
    }

    TraceRecord
    next(Rng& rng) override
    {
        TraceRecord r;
        r.isWrite = rng.bernoulli(cfg_.writeFraction);
        const std::uint64_t rank = sampleRank(rng);
        if (r.isWrite) {
            // The write stream reuses the hot read pages for the
            // overlapping fraction and otherwise lives in its own
            // range above the read footprint.
            if (rng.bernoulli(cfg_.writeOverlap)) {
                r.lba = rank;
            } else {
                r.lba = cfg_.workingSetPages +
                    rank % std::max<std::uint64_t>(
                        cfg_.workingSetPages / 4, 1);
            }
        } else {
            r.lba = rank;
        }
        return r;
    }

    std::string name() const override { return cfg_.name; }

    std::uint64_t
    workingSetPages() const override
    {
        return cfg_.workingSetPages +
            std::max<std::uint64_t>(cfg_.workingSetPages / 4, 1);
    }

  private:
    std::uint64_t
    sampleRank(Rng& rng)
    {
        switch (cfg_.shape) {
          case TailShape::Uniform:
            return rng.uniformInt(cfg_.workingSetPages);
          case TailShape::Zipf:
            return zipf_->sample(rng);
          case TailShape::Exponential: {
            // Popularity e^(-lambda * rank): rank = Exp(lambda).
            // Overflowing draws fold back over the whole range; a
            // clamp would pile the entire tail mass onto the single
            // coldest rank and break popularity monotonicity.
            const auto rank = static_cast<std::uint64_t>(
                rng.exponential(cfg_.lambda));
            return rank % cfg_.workingSetPages;
          }
        }
        panic("unreachable tail shape");
    }

    SyntheticConfig cfg_;
    std::unique_ptr<ZipfSampler> zipf_;
};

} // namespace

std::unique_ptr<WorkloadGenerator>
makeSynthetic(const SyntheticConfig& config)
{
    return std::make_unique<RankedWorkload>(config);
}

std::vector<SyntheticConfig>
table4MicroConfigs(double scale)
{
    const auto pages = static_cast<std::uint64_t>(262144 * scale);
    std::vector<SyntheticConfig> out;

    SyntheticConfig c;
    c.workingSetPages = std::max<std::uint64_t>(pages, 64);

    c.name = "uniform";
    c.shape = TailShape::Uniform;
    out.push_back(c);

    c.shape = TailShape::Zipf;
    c.name = "alpha1";
    c.alpha = 0.8;
    out.push_back(c);
    c.name = "alpha2";
    c.alpha = 1.2;
    out.push_back(c);
    c.name = "alpha3";
    c.alpha = 1.6;
    out.push_back(c);

    c.shape = TailShape::Exponential;
    c.alpha = 0.0;
    c.name = "exp1";
    c.lambda = 0.01;
    out.push_back(c);
    c.name = "exp2";
    c.lambda = 0.1;
    out.push_back(c);

    return out;
}

} // namespace flashcache
