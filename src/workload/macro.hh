/**
 * @file
 * Macro-benchmark workload models (Table 4).
 *
 * The paper drives its evaluation with dbt2 (OLTP) and SPECWeb99
 * traffic generated under M5, plus the UMass storage-trace
 * repository's WebSearch1/2 and Financial1/2 traces. Neither the
 * binaries nor the traces are redistributable here, so each workload
 * is replaced by a generator that matches its published
 * characteristics: footprint (working set size), read/write mix,
 * popularity tail shape, and sequentiality. DESIGN.md documents the
 * substitution; the per-workload constants cite what they mimic.
 */

#ifndef FLASHCACHE_WORKLOAD_MACRO_HH
#define FLASHCACHE_WORKLOAD_MACRO_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace flashcache {

/** Characteristic parameters of one macro workload model. */
struct MacroConfig
{
    std::string name;
    std::string description;

    /** Read footprint in 2 KB pages. */
    std::uint64_t readPages = 0;

    /** Zipf popularity exponent of the access stream. */
    double alpha = 1.0;

    /** Zipf exponent of the write-back stream; 0 reuses alpha.
     *  OLTP writes are typically more concentrated than reads. */
    double writeAlpha = 0.0;

    /** Fraction of accesses that are write-backs. */
    double writeFraction = 0.2;

    /** Fraction of writes that target read-hot pages. */
    double writeOverlap = 0.3;

    /** Mean sequential run length in pages (1 = fully random). */
    double seqRunMean = 1.0;

    /** Size of the dedicated write-back range as a fraction of the
     *  read footprint (database logs / updated tables are a small,
     *  hot slice of the dataset). */
    double writeRangeFraction = 0.25;

    std::uint64_t
    writeRangePages() const
    {
        const auto pages = static_cast<std::uint64_t>(
            writeRangeFraction * static_cast<double>(readPages));
        return pages == 0 ? 1 : pages;
    }
};

/**
 * Zipf-popularity generator with sequential runs and a separate
 * write-back stream, parameterized by a MacroConfig.
 */
class MacroWorkload : public WorkloadGenerator
{
  public:
    explicit MacroWorkload(const MacroConfig& cfg);

    TraceRecord next(Rng& rng) override;
    std::string name() const override { return cfg_.name; }
    std::uint64_t workingSetPages() const override;

    const MacroConfig& config() const { return cfg_; }

  private:
    MacroConfig cfg_;
    ZipfSampler zipf_;
    ZipfSampler writeZipf_;
    Lba runNext_ = 0;
    std::uint64_t runRemaining_ = 0;
};

/**
 * The six macro benchmarks of Table 4, footprints scaled by `scale`
 * (1.0 reproduces the paper's working set sizes, e.g. Financial2 =
 * 443.8 MB and WebSearch1 = 5116.7 MB as printed on Figure 7).
 */
std::vector<MacroConfig> table4MacroConfigs(double scale = 1.0);

/** Look up one macro config by Table 4 name; fatal if unknown. */
MacroConfig macroConfig(const std::string& name, double scale = 1.0);

/** Construct the generator for a macro config. */
std::unique_ptr<WorkloadGenerator> makeMacro(const MacroConfig& cfg);

} // namespace flashcache

#endif // FLASHCACHE_WORKLOAD_MACRO_HH
