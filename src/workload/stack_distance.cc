#include "workload/stack_distance.hh"

#include <algorithm>
#include <unordered_map>

#include "util/log.hh"

namespace flashcache {

StackDistance::StackDistance() = default;

void
StackDistance::bitAdd(std::size_t i, int delta)
{
    raw_[i] = static_cast<std::int8_t>(raw_[i] + delta);
    for (++i; i < bit_.size(); i += i & (~i + 1))
        bit_[i] += delta;
}

void
StackDistance::growTo(std::size_t n)
{
    if (raw_.size() >= n)
        return;
    const std::size_t size = std::max<std::size_t>(
        {static_cast<std::size_t>(1024), raw_.size() * 2, n});
    raw_.resize(size, 0);
    // Rebuild the tree in O(n): seed leaves, then propagate each
    // node into its parent.
    bit_.assign(size + 1, 0);
    for (std::size_t i = 1; i <= size; ++i)
        bit_[i] += raw_[i - 1];
    for (std::size_t i = 1; i <= size; ++i) {
        const std::size_t j = i + (i & (~i + 1));
        if (j <= size)
            bit_[j] += bit_[i];
    }
}

std::uint64_t
StackDistance::bitSum(std::size_t i) const
{
    std::uint64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1))
        s += static_cast<std::uint64_t>(bit_[i]);
    return s;
}

void
StackDistance::access(Lba lba)
{
    growTo(time_ + 2);

    const auto it = last_.find(lba);
    if (it == last_.end()) {
        ++cold_;
    } else {
        // Stack distance = number of distinct pages touched since
        // the previous access of this page.
        const std::uint64_t prev = it->second;
        const std::uint64_t d = bitSum(time_ == 0 ? 0 : time_ - 1) -
            bitSum(prev);
        if (histogram_.size() <= d)
            histogram_.resize(d + 1, 0);
        ++histogram_[d];
        bitAdd(prev, -1);
        cumulativeDirty_ = true;
    }
    bitAdd(time_, 1);
    last_[lba] = time_;
    ++time_;
    cumulativeDirty_ = true;
}

std::uint64_t
StackDistance::hitsAtSize(std::uint64_t pages) const
{
    if (pages == 0)
        return 0;
    if (cumulativeDirty_) {
        cumulative_.assign(histogram_.size(), 0);
        std::uint64_t acc = 0;
        for (std::size_t d = 0; d < histogram_.size(); ++d) {
            acc += histogram_[d];
            cumulative_[d] = acc;
        }
        cumulativeDirty_ = false;
    }
    if (cumulative_.empty())
        return 0;
    // A distance-d access hits caches of size >= d + 1.
    const std::uint64_t idx = std::min<std::uint64_t>(
        pages - 1, cumulative_.size() - 1);
    return cumulative_[static_cast<std::size_t>(idx)];
}

double
StackDistance::missRateAtSize(std::uint64_t pages) const
{
    if (time_ == 0)
        return 0.0;
    return 1.0 - static_cast<double>(hitsAtSize(pages)) /
        static_cast<double>(time_);
}

std::vector<std::uint64_t>
popularityProfile(const std::vector<Lba>& accesses)
{
    std::unordered_map<Lba, std::uint64_t> counts;
    for (const Lba l : accesses)
        ++counts[l];
    std::vector<std::uint64_t> out;
    out.reserve(counts.size());
    for (const auto& [lba, c] : counts)
        out.push_back(c);
    std::sort(out.begin(), out.end(), std::greater<>());
    return out;
}

} // namespace flashcache
