/**
 * @file
 * Synthetic micro-benchmark generators (Table 4).
 *
 * The paper generates disk traces whose page popularity follows a
 * uniform, Zipf (alpha = 0.8 / 1.2 / 1.6) or exponential
 * (lambda = 0.01 / 0.1) distribution over a 512 MB footprint, to
 * show the macro benchmarks span the same tail-shape spectrum
 * (section 6.2, Figure 11).
 *
 * Generators are disk-level: the read stream and the write-back
 * stream are drawn over partially disjoint page sets, because reads
 * of recently written pages are absorbed by the DRAM primary disk
 * cache above the flash (section 5.1).
 */

#ifndef FLASHCACHE_WORKLOAD_SYNTHETIC_HH
#define FLASHCACHE_WORKLOAD_SYNTHETIC_HH

#include <memory>
#include <string>

#include "util/rng.hh"
#include "workload/trace.hh"

namespace flashcache {

/**
 * Interface all workload generators implement.
 */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Draw the next access. */
    virtual TraceRecord next(Rng& rng) = 0;

    /** Identifier matching Table 4 (e.g. "alpha2"). */
    virtual std::string name() const = 0;

    /** Pages the workload can touch. */
    virtual std::uint64_t workingSetPages() const = 0;

    /** Generate a trace of n records. */
    Trace
    generate(Rng& rng, std::uint64_t n)
    {
        Trace t;
        t.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            t.push_back(next(rng));
        return t;
    }
};

/** Popularity tail shapes of Table 4. */
enum class TailShape
{
    Uniform,     ///< extreme long tail (alpha = 0)
    Zipf,        ///< power law x^-alpha
    Exponential, ///< extreme short tail e^-lambda*x
};

/** Configuration of one synthetic generator. */
struct SyntheticConfig
{
    std::string name = "uniform";
    TailShape shape = TailShape::Uniform;
    double alpha = 0.0;  ///< Zipf exponent
    double lambda = 0.0; ///< exponential rate

    /** Footprint; Table 4 uses 512 MB = 262144 pages of 2 KB. */
    std::uint64_t workingSetPages = 262144;

    /** Fraction of accesses that are writes. */
    double writeFraction = 0.2;

    /** Fraction of the footprint writes overlap with reads; the rest
     *  of the write stream has its own pages (write-back locality). */
    double writeOverlap = 0.25;
};

/** Build a generator from a config. */
std::unique_ptr<WorkloadGenerator> makeSynthetic(
    const SyntheticConfig& config);

/**
 * The six micro-benchmarks of Table 4 (uniform, alpha1..3, exp1..2),
 * optionally scaled to a smaller footprint for fast simulation.
 *
 * @param scale Footprint multiplier (1.0 = the paper's 512 MB).
 */
std::vector<SyntheticConfig> table4MicroConfigs(double scale = 1.0);

} // namespace flashcache

#endif // FLASHCACHE_WORKLOAD_SYNTHETIC_HH
