/**
 * @file
 * LRU stack-distance analysis.
 *
 * One pass over a trace yields the LRU hit counts for *every* cache
 * size simultaneously (Mattson's algorithm with a Fenwick tree),
 * which the Figure 4 and Figure 7 benches use to sweep capacities
 * without re-simulating, and which the density-partition study uses
 * to evaluate SLC/MLC splits analytically.
 */

#ifndef FLASHCACHE_WORKLOAD_STACK_DISTANCE_HH
#define FLASHCACHE_WORKLOAD_STACK_DISTANCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace flashcache {

/**
 * Streaming LRU stack-distance accumulator.
 */
class StackDistance
{
  public:
    StackDistance();

    /** Feed one page access. */
    void access(Lba lba);

    std::uint64_t accesses() const { return time_; }
    std::uint64_t distinctPages() const { return last_.size(); }
    std::uint64_t coldMisses() const { return cold_; }

    /**
     * Hits an LRU cache of the given size (in pages) would have
     * scored on the stream so far.
     */
    std::uint64_t hitsAtSize(std::uint64_t pages) const;

    /** Miss rate at the given cache size. */
    double missRateAtSize(std::uint64_t pages) const;

    /**
     * Histogram of reuse distances: bucket d counts accesses whose
     * LRU stack distance was exactly d (0 = re-access of the MRU
     * page). Cold misses are not included.
     */
    const std::vector<std::uint64_t>& distanceHistogram() const
    {
        return histogram_;
    }

  private:
    /// @name Fenwick tree over access timestamps.
    /// A Fenwick tree cannot grow by appending zeros (new nodes
    /// cover old ranges), so the raw 0/1 occupancy array is kept and
    /// the tree is rebuilt on each doubling.
    /// @{
    void bitAdd(std::size_t i, int delta);
    std::uint64_t bitSum(std::size_t i) const; ///< sum of [0, i]
    void growTo(std::size_t n);
    /// @}

    std::unordered_map<Lba, std::uint64_t> last_; ///< page -> last time
    std::vector<int> bit_;
    std::vector<std::int8_t> raw_;
    std::vector<std::uint64_t> histogram_;
    mutable std::vector<std::uint64_t> cumulative_; ///< lazy prefix sums
    mutable bool cumulativeDirty_ = true;
    std::uint64_t time_ = 0;
    std::uint64_t cold_ = 0;
};

/**
 * Per-page access counts of a trace, sorted hottest first — the
 * popularity profile the SLC/MLC partition study needs.
 */
std::vector<std::uint64_t> popularityProfile(
    const std::vector<Lba>& accesses);

} // namespace flashcache

#endif // FLASHCACHE_WORKLOAD_STACK_DISTANCE_HH
