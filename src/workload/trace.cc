#include "workload/trace.hh"

#include <cstdio>
#include <unordered_set>

#include "util/log.hh"

namespace flashcache {

void
saveTraceCsv(const Trace& trace, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file for writing: " + path);
    for (const TraceRecord& r : trace) {
        std::fprintf(f, "%c,%llu\n", r.isWrite ? 'W' : 'R',
                     static_cast<unsigned long long>(r.lba));
    }
    std::fclose(f);
}

Trace
loadTraceCsv(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open trace file for reading: " + path);
    Trace out;
    char dir;
    unsigned long long lba;
    int line = 0;
    while (std::fscanf(f, " %c,%llu", &dir, &lba) == 2) {
        ++line;
        if (dir != 'R' && dir != 'W') {
            std::fclose(f);
            fatal("bad direction in trace " + path + " at record " +
                  std::to_string(line));
        }
        out.push_back({static_cast<Lba>(lba), dir == 'W'});
    }
    std::fclose(f);
    return out;
}

TraceSummary
summarizeTrace(const Trace& trace)
{
    TraceSummary s;
    std::unordered_set<Lba> pages;
    for (const TraceRecord& r : trace) {
        ++s.records;
        if (r.isWrite)
            ++s.writes;
        pages.insert(r.lba);
        if (r.lba > s.maxLba)
            s.maxLba = r.lba;
    }
    s.distinctPages = pages.size();
    return s;
}

} // namespace flashcache
