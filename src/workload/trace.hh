/**
 * @file
 * Disk access trace records and file IO.
 *
 * The paper's methodology (section 6) feeds disk traces — extracted
 * from M5 runs or from the UMass repository — into a lightweight
 * trace-driven flash disk cache simulator. This module defines the
 * in-memory record, a simple CSV on-disk format (compatible in
 * spirit with the UMass SPC format's fields we use), and helpers to
 * stream traces to and from disk.
 */

#ifndef FLASHCACHE_WORKLOAD_TRACE_HH
#define FLASHCACHE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace flashcache {

/** One disk-cache-level access: a page address and a direction. */
struct TraceRecord
{
    Lba lba = 0;
    bool isWrite = false;

    bool
    operator==(const TraceRecord& o) const
    {
        return lba == o.lba && isWrite == o.isWrite;
    }
};

/** An in-memory access trace. */
using Trace = std::vector<TraceRecord>;

/** Write a trace as "R,<lba>" / "W,<lba>" lines. */
void saveTraceCsv(const Trace& trace, const std::string& path);

/** Read a trace written by saveTraceCsv. Fatal on parse errors. */
Trace loadTraceCsv(const std::string& path);

/** Summary statistics of a trace. */
struct TraceSummary
{
    std::uint64_t records = 0;
    std::uint64_t writes = 0;
    std::uint64_t distinctPages = 0;
    Lba maxLba = 0;

    double
    writeFraction() const
    {
        return records ? static_cast<double>(writes) /
            static_cast<double>(records) : 0.0;
    }

    /** Footprint in bytes at the given page size. */
    std::uint64_t
    workingSetBytes(std::uint64_t page_bytes = 2048) const
    {
        return distinctPages * page_bytes;
    }
};

TraceSummary summarizeTrace(const Trace& trace);

} // namespace flashcache

#endif // FLASHCACHE_WORKLOAD_TRACE_HH
