#include "reliability/page_health.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.hh"

namespace flashcache {

std::vector<double>
sampleWeakestLifetimes(const CellLifetimeModel& model, Rng& rng,
                       unsigned n_cells, unsigned k,
                       double page_offset_decades)
{
    if (k == 0 || n_cells == 0)
        return {};
    k = std::min(k, n_cells);

    // Sequential generation of ascending uniform order statistics:
    // given U(j-1), the next is U(j-1) + (1 - U(j-1)) * B where
    // B = 1 - V^(1/(n-j+1)) is the minimum of the remaining n-j+1
    // uniforms rescaled to (U(j-1), 1).
    std::vector<double> out;
    out.reserve(k);
    double u = 0.0;
    for (unsigned j = 0; j < k; ++j) {
        const double remaining = static_cast<double>(n_cells - j);
        const double v = rng.uniform();
        // log1p for numerical stability at tiny probabilities.
        const double b = -std::expm1(std::log1p(-v) / remaining);
        u = u + (1.0 - u) * b;
        const double life = model.cyclesAtFailProb(
            std::max(u, std::numeric_limits<double>::min()),
            page_offset_decades);
        out.push_back(life);
    }
    // Monotonicity holds analytically; enforce against rounding.
    for (std::size_t i = 1; i < out.size(); ++i)
        out[i] = std::max(out[i], out[i - 1]);
    return out;
}

PageHealth::PageHealth(const CellLifetimeModel& model, Rng& rng,
                       unsigned n_cells, unsigned k,
                       double page_offset_decades)
    : weakest_(sampleWeakestLifetimes(model, rng, n_cells, k,
                                      page_offset_decades))
{
}

unsigned
PageHealth::hardErrors(double effective_cycles) const
{
    const auto it = std::upper_bound(weakest_.begin(), weakest_.end(),
                                     effective_cycles);
    return static_cast<unsigned>(it - weakest_.begin());
}

double
PageHealth::errorOnset(unsigned i) const
{
    if (i >= weakest_.size())
        return std::numeric_limits<double>::infinity();
    return weakest_[i];
}

} // namespace flashcache
