/**
 * @file
 * Per-page wear tracking with O(1) error-count queries.
 *
 * Simulating bit errors cell-by-cell would cost 16k+ samples per
 * page. Instead each page pre-samples the lifetimes of only its k
 * weakest cells using uniform order statistics: the j-th smallest of
 * n iid lifetimes maps through the inverse CDF of the cell lifetime
 * distribution. The number of hard (permanent) bit errors after c
 * effective W/E cycles is then just "how many sampled lifetimes are
 * <= c" — a binary search.
 *
 * Effective cycles account for density mode: an erase in MLC mode
 * wears the cell mlcWearMultiplier times faster (Table 1's 10x
 * SLC/MLC endurance gap).
 */

#ifndef FLASHCACHE_RELIABILITY_PAGE_HEALTH_HH
#define FLASHCACHE_RELIABILITY_PAGE_HEALTH_HH

#include <cstdint>
#include <vector>

#include "reliability/wear_model.hh"
#include "util/rng.hh"

namespace flashcache {

/**
 * Sample the k smallest of n iid cell lifetimes (in cycles),
 * ascending, for a page whose distribution is shifted by
 * page_offset_decades.
 */
std::vector<double> sampleWeakestLifetimes(const CellLifetimeModel& model,
                                           Rng& rng, unsigned n_cells,
                                           unsigned k,
                                           double page_offset_decades);

/**
 * Wear state of one flash page.
 */
class PageHealth
{
  public:
    /**
     * @param model    Shared lifetime distribution.
     * @param rng      Simulation RNG (per-page draws).
     * @param n_cells  Bits in the page including spare.
     * @param k        How many weak cells to track; errors beyond k
     *                 saturate (k >= max ECC strength + margin).
     * @param page_offset_decades Spatial quality of this page.
     */
    PageHealth(const CellLifetimeModel& model, Rng& rng, unsigned n_cells,
               unsigned k, double page_offset_decades = 0.0);

    /** Hard bit errors present after the given effective cycles. */
    unsigned hardErrors(double effective_cycles) const;

    /** Effective cycles at which the (i+1)-th bit error appears. */
    double errorOnset(unsigned i) const;

    /** Number of weak cells tracked (error count saturates here). */
    unsigned tracked() const
    {
        return static_cast<unsigned>(weakest_.size());
    }

  private:
    std::vector<double> weakest_;
};

} // namespace flashcache

#endif // FLASHCACHE_RELIABILITY_PAGE_HEALTH_HH
