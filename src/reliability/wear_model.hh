/**
 * @file
 * Statistical model of flash cell wear-out (paper section 4.1.3).
 *
 * The paper models cell lifetime as W = 10^(C1 * tox) with oxide
 * thickness tox normally distributed, so log10(lifetime) is normal:
 * L ~ N(mu, sigma) in decades of write/erase cycles. The distribution
 * is anchored by the datasheet convention that a cell fails by the
 * nominal endurance (100,000 W/E for SLC) with probability ~1e-4.
 * Given the anchor, mu = log10(nominal) - z(p0) * sigma with
 * z(p0) = PhiInv(1e-4) = -3.719.
 *
 * sigma (in decades) is the variability knob. The derivation's
 * remaining constant lives in the authors' thesis [15]; we calibrate
 * sigma's default so the reproduced Figure 6(b) spans the published
 * range (max tolerable cycles ~1e5 at t=1 rising to several million
 * at t=10 with no spatial variation). All qualitative behaviour —
 * monotone growth in t, diminishing returns, degradation under
 * spatial variation — is insensitive to this constant.
 *
 * Spatial variation (the "stdev = 5/10/20% of mean" series of Figure
 * 6(b)) shifts a whole page's lifetime distribution: bad cells
 * cluster, so the binding constraint is the weak-page tail. We model
 * a page-level offset in decades, and Figure 6(b)'s criterion that
 * "all Flash pages had to be recoverable" takes the offset at a low
 * quantile of the page population.
 */

#ifndef FLASHCACHE_RELIABILITY_WEAR_MODEL_HH
#define FLASHCACHE_RELIABILITY_WEAR_MODEL_HH

#include <cstdint>

namespace flashcache {

/** Tunable constants of the wear-out statistics. */
struct WearParams
{
    /** Datasheet endurance anchor (SLC W/E cycles). */
    double nominalCycles = 1e5;

    /** P(cell dead by nominalCycles); "of the order of 1e-4". */
    double failProbAtNominal = 1e-4;

    /** Stddev of log10(cell lifetime), decades. */
    double sigmaDecades = 3.5;

    /**
     * Wear acceleration while a page operates in MLC mode; Table 1
     * shows MLC endurance 10x below SLC.
     */
    double mlcWearMultiplier = 10.0;

    /**
     * Decades of weak-page lifetime shift per unit of spatial
     * stddev fraction (maps Figure 6(b)'s "% of mean" series onto
     * the log-lifetime axis).
     */
    double spatialShiftDecadesPerFrac = 3.0;
};

/**
 * The lognormal (base 10) cell lifetime distribution plus the
 * page-level analytics built on it.
 */
class CellLifetimeModel
{
  public:
    explicit CellLifetimeModel(const WearParams& params = WearParams());

    const WearParams& params() const { return params_; }

    /** Mean of log10(lifetime), decades. */
    double muDecades() const { return mu_; }

    /**
     * P(cell dead after the given W/E cycles).
     *
     * @param cycles              Effective erase cycles seen so far.
     * @param page_offset_decades Page-level lifetime shift (negative
     *                            for weak pages).
     */
    double cellFailProb(double cycles, double page_offset_decades = 0.0)
        const;

    /** Inverse CDF: cycles at which the fail probability reaches p. */
    double cyclesAtFailProb(double p, double page_offset_decades = 0.0)
        const;

    /**
     * Maximum W/E cycles a page tolerates before the probability of
     * holding more than t bad bits exceeds the target (Figure 6(b)).
     *
     * @param t                ECC correction strength in bits.
     * @param page_bits        Cells per page (2 KB page: 16384 data
     *                         + spare).
     * @param spatial_frac     Spatial stddev as a fraction of mean
     *                         (the figure sweeps 0, .05, .10, .20).
     * @param page_fail_target Acceptable P(page unrecoverable).
     */
    double maxTolerableCycles(unsigned t, unsigned page_bits,
                              double spatial_frac,
                              double page_fail_target = 0.5) const;

    /** The weak-page offset (decades) used for a spatial fraction. */
    double spatialOffsetDecades(double spatial_frac) const;

  private:
    WearParams params_;
    double mu_;
};

} // namespace flashcache

#endif // FLASHCACHE_RELIABILITY_WEAR_MODEL_HH
