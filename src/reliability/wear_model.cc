#include "reliability/wear_model.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"
#include "util/mathx.hh"

namespace flashcache {

CellLifetimeModel::CellLifetimeModel(const WearParams& params)
    : params_(params)
{
    if (params.nominalCycles <= 0 || params.sigmaDecades <= 0)
        fatal("CellLifetimeModel: non-positive parameters");
    if (params.failProbAtNominal <= 0 || params.failProbAtNominal >= 1)
        fatal("CellLifetimeModel: anchor probability out of (0,1)");
    mu_ = std::log10(params.nominalCycles) -
        normalCdfInv(params.failProbAtNominal) * params.sigmaDecades;
}

double
CellLifetimeModel::cellFailProb(double cycles,
                                double page_offset_decades) const
{
    if (cycles <= 0)
        return 0.0;
    const double z = (std::log10(cycles) - mu_ - page_offset_decades) /
        params_.sigmaDecades;
    return normalCdf(z);
}

double
CellLifetimeModel::cyclesAtFailProb(double p,
                                    double page_offset_decades) const
{
    return std::pow(10.0, mu_ + page_offset_decades +
                    params_.sigmaDecades * normalCdfInv(p));
}

double
CellLifetimeModel::spatialOffsetDecades(double spatial_frac) const
{
    // Weak-page quantile shift: "all Flash pages had to be
    // recoverable", so the binding page sits deep in the population
    // tail, spatial_frac decades-per-fraction below the mean.
    return -params_.spatialShiftDecadesPerFrac * spatial_frac;
}

double
CellLifetimeModel::maxTolerableCycles(unsigned t, unsigned page_bits,
                                      double spatial_frac,
                                      double page_fail_target) const
{
    const double offset = spatialOffsetDecades(spatial_frac);

    // P(page has > t bad bits) is monotone increasing in cycles;
    // bisect on log10(cycles).
    auto page_fail = [&](double log10_cycles) {
        const double p = cellFailProb(std::pow(10.0, log10_cycles),
                                      offset);
        return binomialTailAbove(page_bits, p, t);
    };

    double lo = 0.0;
    double hi = mu_ + offset + 8.0 * params_.sigmaDecades;
    if (page_fail(lo) > page_fail_target)
        return 1.0; // fails immediately even at one cycle
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (page_fail(mid) <= page_fail_target)
            lo = mid;
        else
            hi = mid;
    }
    return std::pow(10.0, lo);
}

} // namespace flashcache
