#include "sched/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hh"

namespace flashcache {
namespace sched {

// ---------------------------------------------------------------- histogram

void
LogHistogram::record(Seconds v)
{
    int bin = 0;
    if (v > kFloor) {
        bin = static_cast<int>(std::log2(v / kFloor) * kSubBuckets);
        bin = std::min(bin, kBins - 1);
    }
    ++bins_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
LogHistogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    const double target = std::max(1.0, total_ * p / 100.0);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBins; ++i) {
        cum += bins_[static_cast<std::size_t>(i)];
        if (static_cast<double>(cum) >= target) {
            const double lo =
                kFloor * std::exp2(static_cast<double>(i) / kSubBuckets);
            const double hi =
                kFloor * std::exp2(static_cast<double>(i + 1) / kSubBuckets);
            return std::sqrt(lo * hi);
        }
    }
    return kFloor * std::exp2(static_cast<double>(kOctaves));
}

void
LogHistogram::merge(const LogHistogram& other)
{
    for (int i = 0; i < kBins; ++i)
        bins_[static_cast<std::size_t>(i)] +=
            other.bins_[static_cast<std::size_t>(i)];
    total_ += other.total_;
}

// --------------------------------------------------------------- closed loop

ClosedLoop::ClosedLoop(const SchedConfig& cfg, DemandSink& sink)
    : config_(cfg), sink_(sink)
{
    assert(config_.clients > 0 && config_.flashChannels > 0 &&
           config_.dramPorts > 0);
    resources_.reserve(config_.flashChannels + 3);
    for (std::uint32_t c = 0; c < config_.flashChannels; ++c) {
        Resource r;
        r.group = Group::Flash;
        r.servers = 1;
        resources_.push_back(std::move(r));
    }
    {
        Resource disk;
        disk.group = Group::Disk;
        disk.servers = 1;
        resources_.push_back(std::move(disk));
    }
    {
        Resource ecc;
        ecc.group = Group::Ecc;
        ecc.servers = config_.resolvedEccUnits();
        resources_.push_back(std::move(ecc));
    }
    {
        Resource dram;
        dram.group = Group::Dram;
        dram.servers = config_.dramPorts;
        resources_.push_back(std::move(dram));
    }
    jobs_.resize(config_.clients);
}

bool
ClosedLoop::later(const Event& a, const Event& b)
{
    // Min-heap on (time, insertion sequence): "a sorts after b".
    if (a.t != b.t)
        return a.t > b.t;
    return a.seq > b.seq;
}

void
ClosedLoop::push(Seconds t, EventKind kind, std::uint32_t res,
                 std::uint32_t job, Seconds service)
{
    assert(t >= now_);
    heap_.push_back({t, nextSeq_++, kind, res, job, service});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

ClosedLoop::Event
ClosedLoop::pop()
{
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event ev = heap_.back();
    heap_.pop_back();
    return ev;
}

std::uint32_t
ClosedLoop::resourceOf(const Demand& d) const
{
    switch (d.kind) {
      case ResourceKind::FlashChannel:
        return d.channel % config_.flashChannels;
      case ResourceKind::Disk:
        return config_.flashChannels;
      case ResourceKind::Ecc:
        return config_.flashChannels + 1;
      case ResourceKind::DramPort:
        return config_.flashChannels + 2;
    }
    return config_.flashChannels + 2; // unreachable
}

void
ClosedLoop::advance(Resource& r, Seconds t)
{
    const Seconds dt = t - r.lastT;
    if (dt > 0) {
        r.busy += r.busyServers * dt;
        r.queueArea +=
            static_cast<double>(r.fg.size() + r.bg.size()) * dt;
        r.lastT = t;
    }
}

void
ClosedLoop::dispatch(std::uint32_t res, Seconds t)
{
    Resource& r = resources_[res];
    // Strict two-level priority: a freed server always takes a
    // waiting foreground stage before any background op (no
    // preemption of ops already in service).
    while (r.busyServers < r.servers &&
           (!r.fg.empty() || !r.bg.empty())) {
        if (!r.fg.empty()) {
            const FgWait w = r.fg.front();
            r.fg.pop_front();
            ++r.busyServers;
            const Job& j = jobs_[w.job];
            push(t + j.stages[j.cursor].service, EventKind::FgDone, res,
                 w.job);
        } else {
            const BgOp op = r.bg.front();
            r.bg.pop_front();
            ++r.busyServers;
            push(t + op.service, EventKind::BgDone, res, 0);
        }
    }
    r.maxQueue = std::max(
        r.maxQueue, static_cast<std::uint64_t>(r.fg.size() + r.bg.size()));
}

void
ClosedLoop::onClientReady(const Event& ev, const Source& source,
                          const DoneFn& done)
{
    sink_.clear();
    Seconds compute = 0;
    if (!source(compute))
        return; // workload exhausted: this client retires
    Job& j = jobs_[ev.job];
    j.compute = compute;
    j.issue = ev.t + compute;
    j.stages.clear();
    j.cursor = 0;
    for (const Demand& d : sink_.demands()) {
        if (d.background) {
            push(j.issue, EventKind::BgArrive, resourceOf(d), 0,
                 d.service);
            ++bgSubmitted_;
        } else {
            j.stages.push_back({resourceOf(d), d.service});
        }
    }
    if (j.stages.empty()) {
        ++fgCompleted_;
        done(j.compute, j.issue, j.issue);
        push(j.issue, EventKind::ClientReady, 0, ev.job);
    } else {
        push(j.issue, EventKind::StageArrive, j.stages[0].resource,
             ev.job);
    }
}

void
ClosedLoop::onStageArrive(const Event& ev)
{
    Resource& r = resources_[ev.res];
    advance(r, ev.t);
    jobs_[ev.job].arrival = ev.t;
    r.fg.push_back({ev.job, ev.t});
    dispatch(ev.res, ev.t);
}

void
ClosedLoop::onBgArrive(const Event& ev)
{
    Resource& r = resources_[ev.res];
    advance(r, ev.t);
    r.bg.push_back({ev.service, ev.t});
    dispatch(ev.res, ev.t);
}

void
ClosedLoop::onFgDone(const Event& ev, const DoneFn& done)
{
    Resource& r = resources_[ev.res];
    advance(r, ev.t);
    assert(r.busyServers > 0);
    --r.busyServers;
    ++r.fgServed;
    Job& j = jobs_[ev.job];
    r.sojourn.record(ev.t - j.arrival);
    dispatch(ev.res, ev.t);
    ++j.cursor;
    if (j.cursor < j.stages.size()) {
        push(ev.t, EventKind::StageArrive, j.stages[j.cursor].resource,
             ev.job);
    } else {
        ++fgCompleted_;
        done(j.compute, j.issue, ev.t);
        push(ev.t, EventKind::ClientReady, 0, ev.job);
    }
}

void
ClosedLoop::onBgDone(const Event& ev)
{
    Resource& r = resources_[ev.res];
    advance(r, ev.t);
    assert(r.busyServers > 0);
    --r.busyServers;
    ++r.bgServed;
    dispatch(ev.res, ev.t);
}

void
ClosedLoop::run(const Source& source, const DoneFn& done)
{
    for (std::uint32_t c = 0; c < config_.clients; ++c)
        push(now_, EventKind::ClientReady, 0, c);
    while (!heap_.empty()) {
        const Event ev = pop();
        assert(ev.t >= now_);
        now_ = ev.t;
        switch (ev.kind) {
          case EventKind::ClientReady:
            onClientReady(ev, source, done);
            break;
          case EventKind::StageArrive:
            onStageArrive(ev);
            break;
          case EventKind::BgArrive:
            onBgArrive(ev);
            break;
          case EventKind::FgDone:
            onFgDone(ev, done);
            break;
          case EventKind::BgDone:
            onBgDone(ev);
            break;
        }
    }
    // Close every resource's integrals out to the final event time
    // so utilization/queue-depth denominators line up with wallClock.
    for (Resource& r : resources_)
        advance(r, now_);
}

// ------------------------------------------------------------------ queries

template <typename Fn>
void
ClosedLoop::forGroup(Group g, Fn&& fn) const
{
    for (const Resource& r : resources_) {
        if (r.group == g)
            fn(r);
    }
}

double
ClosedLoop::utilization(Group g) const
{
    if (now_ <= 0)
        return 0.0;
    Seconds busy = 0;
    std::uint64_t servers = 0;
    forGroup(g, [&](const Resource& r) {
        busy += r.busy;
        servers += r.servers;
    });
    return servers ? busy / (static_cast<double>(servers) * now_) : 0.0;
}

Seconds
ClosedLoop::busySeconds(Group g) const
{
    Seconds busy = 0;
    forGroup(g, [&](const Resource& r) { busy += r.busy; });
    return busy;
}

std::uint64_t
ClosedLoop::served(Group g) const
{
    std::uint64_t n = 0;
    forGroup(g, [&](const Resource& r) { n += r.fgServed + r.bgServed; });
    return n;
}

std::uint64_t
ClosedLoop::backgroundServed(Group g) const
{
    std::uint64_t n = 0;
    forGroup(g, [&](const Resource& r) { n += r.bgServed; });
    return n;
}

double
ClosedLoop::meanQueueDepth(Group g) const
{
    if (now_ <= 0)
        return 0.0;
    double area = 0;
    forGroup(g, [&](const Resource& r) { area += r.queueArea; });
    return area / now_;
}

std::uint64_t
ClosedLoop::maxQueueDepth(Group g) const
{
    std::uint64_t m = 0;
    forGroup(g, [&](const Resource& r) { m = std::max(m, r.maxQueue); });
    return m;
}

double
ClosedLoop::sojournPercentile(Group g, double p) const
{
    LogHistogram merged;
    forGroup(g, [&](const Resource& r) { merged.merge(r.sojourn); });
    return merged.percentile(p);
}

void
ClosedLoop::registerMetrics(obs::MetricRegistry& reg)
{
    reg.gauge("sched.clients", "closed-loop client count",
              [this] { return static_cast<double>(config_.clients); });
    reg.gauge("sched.flash.channels", "independent flash channels",
              [this] {
                  return static_cast<double>(config_.flashChannels);
              });
    reg.gauge("sched.requests", "foreground requests completed",
              [this] { return static_cast<double>(fgCompleted_); });
    reg.gauge("sched.bg_jobs", "background ops submitted",
              [this] { return static_cast<double>(bgSubmitted_); });

    struct GroupName
    {
        Group g;
        const char* name;
    };
    static constexpr GroupName kGroups[] = {
        {Group::Flash, "flash"},
        {Group::Disk, "disk"},
        {Group::Ecc, "ecc"},
        {Group::Dram, "dram"},
    };
    for (const GroupName& gn : kGroups) {
        const std::string base = std::string("sched.") + gn.name;
        const Group g = gn.g;
        reg.gauge(base + ".utilization",
                  "fraction of server-time in service",
                  [this, g] { return utilization(g); });
        reg.gauge(base + ".busy", "server-seconds of service",
                  [this, g] { return busySeconds(g); });
        reg.gauge(base + ".served", "operations completed (fg+bg)",
                  [this, g] {
                      return static_cast<double>(served(g));
                  });
        reg.gauge(base + ".bg_served",
                  "background operations completed",
                  [this, g] {
                      return static_cast<double>(backgroundServed(g));
                  });
        reg.gauge(base + ".queue_depth", "time-averaged waiting ops",
                  [this, g] { return meanQueueDepth(g); });
        reg.gauge(base + ".max_queue", "peak waiting ops",
                  [this, g] {
                      return static_cast<double>(maxQueueDepth(g));
                  });
        reg.gauge(base + ".sojourn_p50",
                  "median per-visit wait+service (s)",
                  [this, g] { return sojournPercentile(g, 50); });
        reg.gauge(base + ".sojourn_p95",
                  "p95 per-visit wait+service (s)",
                  [this, g] { return sojournPercentile(g, 95); });
        reg.gauge(base + ".sojourn_p99",
                  "p99 per-visit wait+service (s)",
                  [this, g] { return sojournPercentile(g, 99); });
    }
}

} // namespace sched
} // namespace flashcache
