/**
 * @file
 * Deterministic virtual-time event scheduler with per-resource
 * service queues, driving a closed-loop multi-client workload.
 *
 * Resources model the contended stations of the storage hierarchy:
 * N independent flash channels (each a one-server queue over the
 * dies geometry-mapped to it), the disk head, K ECC engine units
 * (one queue, K servers), and the DRAM ports. A foreground request
 * walks its recorded demand chain (see demand.hh) through these
 * queues stage by stage and observes real waiting; background work
 * (GC, PDC write-backs) is two-level scheduled — a server takes a
 * background op only when no foreground job is waiting — so cleaning
 * yields to traffic instead of silently inflating busy time.
 *
 * The closed loop runs C clients. Each client draws its next request
 * the moment the previous one completes, computes for the request's
 * think time, then issues; client count therefore sets the offered
 * concurrency. Everything is ordered by (virtual time, insertion
 * sequence), so runs are bit-deterministic for a fixed seed.
 */

#ifndef FLASHCACHE_SCHED_SCHEDULER_HH
#define FLASHCACHE_SCHED_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sched/demand.hh"
#include "util/types.hh"

namespace flashcache {

namespace obs {
class MetricRegistry;
}

namespace sched {

/**
 * Log-scale duration histogram: 4 sub-buckets per octave starting at
 * 1 ns. Constant memory, O(1) record, good-enough percentile
 * resolution (~19% bucket width) across 13 decades — the right shape
 * for sojourn times that span nanoseconds (DRAM) to tens of
 * milliseconds (queued disk seeks).
 */
class LogHistogram
{
  public:
    void record(Seconds v);

    /** Value at percentile p (0..100): geometric midpoint of the
     *  containing bucket; 0 with no samples. */
    double percentile(double p) const;

    void merge(const LogHistogram& other);

    std::uint64_t count() const { return total_; }

    static constexpr double kFloor = 1e-9;
    static constexpr int kSubBuckets = 4;
    static constexpr int kOctaves = 44; ///< 1 ns .. ~4.9 h
    static constexpr int kBins = kOctaves * kSubBuckets;

  private:
    std::array<std::uint64_t, kBins> bins_{};
    std::uint64_t total_ = 0;
};

/** Scheduler shape: client count and per-resource server counts. */
struct SchedConfig
{
    std::uint32_t clients = 8;
    std::uint32_t flashChannels = 4;
    std::uint32_t eccUnits = 0; ///< 0 = one unit per flash channel
    std::uint32_t dramPorts = 2;

    std::uint32_t resolvedEccUnits() const
    {
        return eccUnits ? eccUnits : flashChannels;
    }
};

/** Metric/reporting aggregation groups (flash sums its channels). */
enum class Group : std::uint8_t
{
    Flash,
    Disk,
    Ecc,
    Dram,
};

/**
 * The event engine. One instance owns virtual time; successive
 * run() calls continue the same timeline (warm restarts keep their
 * clock).
 */
class ClosedLoop
{
  public:
    /**
     * The source runs the functional model for one request at the
     * current virtual time, leaves its resource demands in the sink,
     * and returns the request's compute (think) time through
     * `compute`. Returning false means the workload is exhausted.
     */
    using Source = std::function<bool(Seconds& compute)>;

    /** Called at each foreground completion with the request's
     *  compute (think) time, issue time (post-think) and completion
     *  time; storage latency incl. queueing = completion - issue. */
    using DoneFn = std::function<void(Seconds compute, Seconds issue,
                                      Seconds completion)>;

    ClosedLoop(const SchedConfig& cfg, DemandSink& sink);

    /** Drive the source to exhaustion and drain all queues. */
    void run(const Source& source, const DoneFn& done);

    /** Virtual time of the last processed event (includes the
     *  background runoff after the last foreground completion). */
    Seconds wallClock() const { return now_; }

    std::uint64_t requestsCompleted() const { return fgCompleted_; }

    const SchedConfig& config() const { return config_; }

    /// @name Aggregated per-group statistics (sampled any time).
    /// @{
    double utilization(Group g) const;   ///< busy / (servers * wall)
    Seconds busySeconds(Group g) const;  ///< summed server-seconds
    std::uint64_t served(Group g) const; ///< fg + bg ops completed
    std::uint64_t backgroundServed(Group g) const;
    double meanQueueDepth(Group g) const;
    std::uint64_t maxQueueDepth(Group g) const;
    double sojournPercentile(Group g, double p) const;
    /// @}

    /** Register sched.* gauges; `this` must outlive the registry. */
    void registerMetrics(obs::MetricRegistry& reg);

  private:
    enum class EventKind : std::uint8_t
    {
        ClientReady, ///< client draws + computes its next request
        StageArrive, ///< fg job joins a resource queue
        BgArrive,    ///< background op joins a resource queue
        FgDone,      ///< server finished a fg stage
        BgDone,      ///< server finished a bg op
    };

    struct Event
    {
        Seconds t;
        std::uint64_t seq; ///< insertion order; deterministic ties
        EventKind kind;
        std::uint32_t res;  ///< resource index (arrive/done)
        std::uint32_t job;  ///< client == job index (one in flight)
        Seconds service;    ///< bg op service time (BgArrive)
    };

    struct Stage
    {
        std::uint32_t resource;
        Seconds service;
    };

    struct Job
    {
        Seconds compute = 0; ///< think time before issue
        Seconds issue = 0;   ///< post-think; latency baseline
        Seconds arrival = 0; ///< arrival at the current resource
        std::vector<Stage> stages;
        std::size_t cursor = 0;
    };

    struct FgWait
    {
        std::uint32_t job;
        Seconds arrival;
    };

    struct BgOp
    {
        Seconds service;
        Seconds arrival;
    };

    struct Resource
    {
        Group group;
        std::uint32_t servers = 1;
        std::uint32_t busyServers = 0;
        std::deque<FgWait> fg;
        std::deque<BgOp> bg;

        Seconds lastT = 0;
        Seconds busy = 0;      ///< integral of busyServers dt
        Seconds queueArea = 0; ///< integral of waiting count dt
        std::uint64_t fgServed = 0;
        std::uint64_t bgServed = 0;
        std::uint64_t maxQueue = 0;
        LogHistogram sojourn; ///< fg wait+service per visit
    };

    void push(Seconds t, EventKind kind, std::uint32_t res,
              std::uint32_t job, Seconds service = 0);
    Event pop();
    static bool later(const Event& a, const Event& b);

    void advance(Resource& r, Seconds t);
    void dispatch(std::uint32_t res, Seconds t);
    std::uint32_t resourceOf(const Demand& d) const;

    void onClientReady(const Event& ev, const Source& source,
                       const DoneFn& done);
    void onStageArrive(const Event& ev);
    void onBgArrive(const Event& ev);
    void onFgDone(const Event& ev, const DoneFn& done);
    void onBgDone(const Event& ev);

    template <typename Fn>
    void forGroup(Group g, Fn&& fn) const;

    SchedConfig config_;
    DemandSink& sink_;
    std::vector<Resource> resources_;
    std::vector<Job> jobs_; ///< indexed by client
    std::vector<Event> heap_;
    std::uint64_t nextSeq_ = 0;
    Seconds now_ = 0;
    std::uint64_t fgCompleted_ = 0;
    std::uint64_t bgSubmitted_ = 0;
};

} // namespace sched
} // namespace flashcache

#endif // FLASHCACHE_SCHED_SCHEDULER_HH
