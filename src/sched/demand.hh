/**
 * @file
 * Service-demand capture: the glue between the functional device
 * models and the event-driven scheduler.
 *
 * The device models (flash array, disk, DRAM, ECC engine) stay
 * synchronous — they compute a service latency per operation exactly
 * as before. When a DemandSink is attached they additionally record
 * each operation as a (resource, channel, service-time) demand, so
 * the scheduler can replay the request's resource usage against
 * per-resource queues and observe real contention. Background work
 * (GC, PDC write-back drains, reconfiguration copies) is marked by
 * entering a background scope: demands recorded inside it become
 * low-priority filler jobs that yield to foreground traffic.
 *
 * With no sink attached every hook is one null-pointer test, the
 * same contract as the tracer and the fault injector.
 */

#ifndef FLASHCACHE_SCHED_DEMAND_HH
#define FLASHCACHE_SCHED_DEMAND_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace flashcache {
namespace sched {

/** The contended resource classes of the storage hierarchy. */
enum class ResourceKind : std::uint8_t
{
    FlashChannel, ///< one NAND die/channel (geometry-mapped)
    Disk,         ///< the seek-aware disk head
    Ecc,          ///< a controller ECC engine unit
    DramPort,     ///< a DRAM port
};

/** One recorded device operation. */
struct Demand
{
    ResourceKind kind;
    std::uint16_t channel;  ///< flash channel index; 0 elsewhere
    Seconds service;
    bool background;        ///< recorded inside a background scope
};

/**
 * Collects the demands one functional request (or background batch)
 * emits. The buffer is reused across requests — steady state never
 * allocates once it has grown to the deepest request shape.
 */
class DemandSink
{
  public:
    void
    record(ResourceKind kind, std::uint16_t channel, Seconds service)
    {
        demands_.push_back({kind, channel, service, bgDepth_ > 0});
    }

    /// @name Background scoping (use BackgroundScope, not these).
    /// @{
    void pushBackground() { ++bgDepth_; }
    void popBackground() { --bgDepth_; }
    /// @}

    bool inBackground() const { return bgDepth_ > 0; }

    const std::vector<Demand>& demands() const { return demands_; }
    void clear() { demands_.clear(); }

  private:
    std::vector<Demand> demands_;
    int bgDepth_ = 0;
};

/**
 * RAII background scope. Null-safe: with no sink the constructor and
 * destructor are single branches, so functional-only users (unit
 * tests, the FlashCache-direct benches) pay nothing.
 */
class BackgroundScope
{
  public:
    explicit BackgroundScope(DemandSink* sink)
        : sink_(sink)
    {
        if (sink_)
            sink_->pushBackground();
    }

    ~BackgroundScope()
    {
        if (sink_)
            sink_->popBackground();
    }

    BackgroundScope(const BackgroundScope&) = delete;
    BackgroundScope& operator=(const BackgroundScope&) = delete;

  private:
    DemandSink* sink_;
};

} // namespace sched
} // namespace flashcache

#endif // FLASHCACHE_SCHED_DEMAND_HH
