/**
 * @file
 * Binary BCH code: systematic encoder and full algebraic decoder.
 *
 * This is the error-correction engine of the paper's programmable
 * flash memory controller (section 4.1). The controller instantiates
 * shortened codes over GF(2^15) for a 2 KB page with t = 1..12
 * correctable bits; the implementation below is generic over field
 * degree, strength and data length so tests can exercise small codes
 * exhaustively.
 *
 * Decoding pipeline: syndrome computation, Berlekamp-Massey to find
 * the error locator polynomial, Chien search to find its roots, and
 * in-place bit flips (binary code, so error magnitude is always 1).
 *
 * The hot paths are word-parallel and allocation-free:
 *  - encode() advances a byte-at-a-time LFSR through a precomputed
 *    256-entry remainder table (one multi-word shift + XOR per data
 *    byte) instead of building a Gf2Poly per call;
 *  - syndromes are computed byte-wise: only the t odd syndromes are
 *    accumulated directly (a 256-entry per-syndrome byte-evaluation
 *    table plus a running log-domain position power), and the even
 *    ones follow from the Frobenius identity S_2j = S_j^2;
 *  - Chien search steps each locator coefficient incrementally in
 *    the log domain and exits as soon as all roots are found;
 *  - Berlekamp-Massey and Chien scratch live in a per-code workspace
 *    sized at construction, so steady-state encode/decode perform no
 *    heap allocation.
 *
 * The original bit-serial implementation is retained as
 * encodeReference()/decodeReference() and serves as the oracle for
 * the differential tests (tests/bch_differential_test.cc).
 *
 * The workspace makes encode/decode logically const but not
 * re-entrant: one BchCode must not decode concurrently from two
 * threads (the simulator is single-threaded).
 */

#ifndef FLASHCACHE_ECC_BCH_HH
#define FLASHCACHE_ECC_BCH_HH

#include <cstdint>
#include <vector>

#include "gf/gf2_poly.hh"
#include "gf/gf2m.hh"

namespace flashcache {

/** Outcome of a BCH decode attempt. */
struct BchDecodeResult
{
    /**
     * Positions are reported through a fixed-size inline buffer so a
     * decode never heap-allocates; every code the system builds has
     * t far below this bound.
     */
    static constexpr unsigned kMaxReportedPositions = 64;

    /**
     * True when the decoder believes the word was corrected (or was
     * already clean). A false value means the error count certainly
     * exceeded t. Note that with > t errors a BCH decoder may also
     * miscorrect silently, which is exactly why the paper pairs BCH
     * with a CRC32 detector (section 4.1.2).
     */
    bool ok = false;

    /** Number of bit positions flipped by the decoder. */
    unsigned correctedBits = 0;

    /**
     * Codeword bit positions that were flipped; the first
     * min(correctedBits, kMaxReportedPositions) entries are valid.
     */
    std::uint32_t positions[kMaxReportedPositions] = {};
};

/**
 * A t-error-correcting binary BCH code, shortened to a given data
 * length.
 *
 * Codeword layout (polynomial coefficient order): parity bits occupy
 * coefficients [0, parityBits()), data bits occupy
 * [parityBits(), parityBits() + dataBits()). Byte i, bit b of a user
 * buffer maps to data bit 8*i + b.
 */
class BchCode
{
  public:
    /**
     * Construct the code.
     *
     * @param m        Field degree; natural length is 2^m - 1.
     * @param t        Designed correction strength in bits.
     * @param data_bits Shortened data length in bits (multiple of 8).
     */
    BchCode(unsigned m, unsigned t, std::uint32_t data_bits);

    unsigned m() const { return gf_.m(); }
    unsigned t() const { return t_; }
    std::uint32_t dataBits() const { return dataBits_; }
    std::uint32_t parityBits() const { return parityBits_; }
    std::uint32_t parityBytes() const { return (parityBits_ + 7) / 8; }
    std::uint32_t codewordBits() const { return dataBits_ + parityBits_; }

    const GaloisField& field() const { return gf_; }
    const Gf2Poly& generator() const { return gen_; }

    /**
     * Systematic encode (table-driven LFSR, no allocation).
     *
     * @param data   dataBits()/8 bytes of payload.
     * @param parity Out: parityBytes() bytes of check bits.
     */
    void encode(const std::uint8_t* data, std::uint8_t* parity) const;

    /**
     * Decode and correct in place (byte-wise syndromes, workspace
     * Berlekamp-Massey, incremental Chien; no allocation).
     *
     * @param data   dataBits()/8 bytes, corrected on success.
     * @param parity parityBytes() bytes, corrected on success.
     */
    BchDecodeResult decode(std::uint8_t* data, std::uint8_t* parity) const;

    /**
     * Count syndromes without correcting; zero syndromes mean the
     * word is (believed) clean. Exposed for the controller's
     * error-monitoring path.
     */
    bool isCodewordClean(const std::uint8_t* data,
                         const std::uint8_t* parity) const;

    /**
     * Bit-serial reference encoder (the original Gf2Poly-based
     * implementation). Slow; kept as the oracle for differential
     * tests and as the fallback for degenerate codes with fewer than
     * 8 parity bits.
     */
    void encodeReference(const std::uint8_t* data,
                         std::uint8_t* parity) const;

    /**
     * Bit-serial reference decoder (original per-set-bit syndromes,
     * allocating Berlekamp-Massey and full Chien sweep). Oracle only.
     */
    BchDecodeResult decodeReference(std::uint8_t* data,
                                    std::uint8_t* parity) const;

  private:
    /** Gather codeword bit i from the split data/parity buffers. */
    bool
    codewordBit(const std::uint8_t* data, const std::uint8_t* parity,
                std::uint32_t i) const
    {
        if (i < parityBits_)
            return (parity[i / 8] >> (i % 8)) & 1;
        const std::uint32_t j = i - parityBits_;
        return (data[j / 8] >> (j % 8)) & 1;
    }

    static void
    flipBit(std::uint8_t* buf, std::uint32_t i)
    {
        buf[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    }

    /**
     * Byte-wise syndromes into ws_.synd.
     * @return true when all 2t syndromes are zero.
     */
    bool computeSyndromes(const std::uint8_t* data,
                          const std::uint8_t* parity) const;

    /** Bit-serial reference syndromes (allocates; oracle only). */
    std::vector<GaloisField::Elem>
    syndromesReference(const std::uint8_t* data,
                       const std::uint8_t* parity) const;

    /**
     * Berlekamp-Massey over ws_.synd into ws_.sigma (no allocation).
     * @return number of coefficients of sigma (degree + 1).
     */
    unsigned berlekampMassey() const;

    GaloisField gf_;
    unsigned t_;
    std::uint32_t dataBits_;
    std::uint32_t parityBits_;
    Gf2Poly gen_;

    // ---- constructor-built acceleration tables ----

    /** Words per parity state: ceil(parityBits / 64). */
    std::uint32_t parityWords_ = 0;
    /** True when parityBits >= 8 and the byte LFSR applies. */
    bool byteEncode_ = false;
    /** Mask for the top parity state word (bits above parityBits). */
    std::uint64_t topWordMask_ = 0;
    /** Word/shift locating the top byte (bits r-8..r-1) of the state. */
    std::uint32_t topByteWord_ = 0;
    std::uint32_t topByteShift_ = 0;
    /** Valid-bit mask of the last parity byte. */
    std::uint8_t lastParityMask_ = 0xFF;
    /** encTable_[256 * parityWords_]: b(x) * x^r mod g(x) per byte b. */
    std::vector<std::uint64_t> encTable_;
    /**
     * byteEval_[k * 256 + b] = b(alpha^j) for the k-th odd syndrome
     * exponent j = 2k + 1, b interpreted as a degree-7 polynomial.
     */
    std::vector<GaloisField::Elem> byteEval_;
    /** (8 * j) mod n per odd j: log-domain step for one byte. */
    std::vector<std::uint32_t> stepLog8_;
    /** (parityBits * j) mod n per odd j: data-region base offset. */
    std::vector<std::uint32_t> parityBaseLog_;
    /** (n - j) mod n for j = 0..t: Chien per-position step. */
    std::vector<std::uint32_t> chienStepLog_;

    // ---- reusable per-code workspace (steady state: no heap) ----
    struct Workspace
    {
        std::vector<std::uint64_t> encState;       ///< parityWords_
        std::vector<GaloisField::Elem> synd;       ///< 2t
        std::vector<GaloisField::Elem> sigma;      ///< BM locator
        std::vector<GaloisField::Elem> bmB, bmTmp; ///< BM scratch
        std::vector<std::uint32_t> termLog;        ///< Chien terms
        std::vector<std::uint32_t> positions;      ///< found roots
    };
    mutable Workspace ws_;
};

} // namespace flashcache

#endif // FLASHCACHE_ECC_BCH_HH
