/**
 * @file
 * Binary BCH code: systematic encoder and full algebraic decoder.
 *
 * This is the error-correction engine of the paper's programmable
 * flash memory controller (section 4.1). The controller instantiates
 * shortened codes over GF(2^15) for a 2 KB page with t = 1..12
 * correctable bits; the implementation below is generic over field
 * degree, strength and data length so tests can exercise small codes
 * exhaustively.
 *
 * Decoding pipeline: syndrome computation, Berlekamp-Massey to find
 * the error locator polynomial, Chien search to find its roots, and
 * in-place bit flips (binary code, so error magnitude is always 1).
 */

#ifndef FLASHCACHE_ECC_BCH_HH
#define FLASHCACHE_ECC_BCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gf/gf2_poly.hh"
#include "gf/gf2m.hh"

namespace flashcache {

/** Outcome of a BCH decode attempt. */
struct BchDecodeResult
{
    /**
     * True when the decoder believes the word was corrected (or was
     * already clean). A false value means the error count certainly
     * exceeded t. Note that with > t errors a BCH decoder may also
     * miscorrect silently, which is exactly why the paper pairs BCH
     * with a CRC32 detector (section 4.1.2).
     */
    bool ok = false;

    /** Number of bit positions flipped by the decoder. */
    unsigned correctedBits = 0;

    /** Codeword bit positions that were flipped. */
    std::vector<std::uint32_t> positions;
};

/**
 * A t-error-correcting binary BCH code, shortened to a given data
 * length.
 *
 * Codeword layout (polynomial coefficient order): parity bits occupy
 * coefficients [0, parityBits()), data bits occupy
 * [parityBits(), parityBits() + dataBits()). Byte i, bit b of a user
 * buffer maps to data bit 8*i + b.
 */
class BchCode
{
  public:
    /**
     * Construct the code.
     *
     * @param m        Field degree; natural length is 2^m - 1.
     * @param t        Designed correction strength in bits.
     * @param data_bits Shortened data length in bits (multiple of 8).
     */
    BchCode(unsigned m, unsigned t, std::uint32_t data_bits);

    unsigned m() const { return gf_.m(); }
    unsigned t() const { return t_; }
    std::uint32_t dataBits() const { return dataBits_; }
    std::uint32_t parityBits() const { return parityBits_; }
    std::uint32_t parityBytes() const { return (parityBits_ + 7) / 8; }
    std::uint32_t codewordBits() const { return dataBits_ + parityBits_; }

    const GaloisField& field() const { return gf_; }
    const Gf2Poly& generator() const { return gen_; }

    /**
     * Systematic encode.
     *
     * @param data   dataBits()/8 bytes of payload.
     * @param parity Out: parityBytes() bytes of check bits.
     */
    void encode(const std::uint8_t* data, std::uint8_t* parity) const;

    /**
     * Decode and correct in place.
     *
     * @param data   dataBits()/8 bytes, corrected on success.
     * @param parity parityBytes() bytes, corrected on success.
     */
    BchDecodeResult decode(std::uint8_t* data, std::uint8_t* parity) const;

    /**
     * Count syndromes without correcting; zero syndromes mean the
     * word is (believed) clean. Exposed for the controller's
     * error-monitoring path.
     */
    bool isCodewordClean(const std::uint8_t* data,
                         const std::uint8_t* parity) const;

  private:
    /** Gather codeword bit i from the split data/parity buffers. */
    bool
    codewordBit(const std::uint8_t* data, const std::uint8_t* parity,
                std::uint32_t i) const
    {
        if (i < parityBits_)
            return (parity[i / 8] >> (i % 8)) & 1;
        const std::uint32_t j = i - parityBits_;
        return (data[j / 8] >> (j % 8)) & 1;
    }

    static void
    flipBit(std::uint8_t* buf, std::uint32_t i)
    {
        buf[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    }

    /** Compute the 2t syndromes of the received word. */
    std::vector<GaloisField::Elem>
    syndromes(const std::uint8_t* data, const std::uint8_t* parity) const;

    /** Berlekamp-Massey: error locator from syndromes. */
    std::vector<GaloisField::Elem>
    berlekampMassey(const std::vector<GaloisField::Elem>& synd) const;

    GaloisField gf_;
    unsigned t_;
    std::uint32_t dataBits_;
    std::uint32_t parityBits_;
    Gf2Poly gen_;
};

} // namespace flashcache

#endif // FLASHCACHE_ECC_BCH_HH
