#include "ecc/bch.hh"

#include <algorithm>
#include <sstream>

#include "util/log.hh"

namespace flashcache {

namespace {

/** Smallest member of the 2-cyclotomic coset of e mod n. */
std::uint64_t
cosetLeader(std::uint64_t e, std::uint64_t n)
{
    std::uint64_t leader = e;
    std::uint64_t x = (e * 2) % n;
    while (x != e) {
        leader = std::min(leader, x);
        x = (x * 2) % n;
    }
    return leader;
}

} // namespace

BchCode::BchCode(unsigned m, unsigned t, std::uint32_t data_bits)
    : gf_(m), t_(t), dataBits_(data_bits)
{
    if (t == 0)
        fatal("BchCode with t = 0");
    if (data_bits % 8 != 0)
        fatal("BchCode data length must be byte aligned");

    // Generator = LCM of minimal polynomials of alpha^1 .. alpha^2t.
    // Even powers share cyclotomic cosets with smaller ones, so only
    // distinct coset leaders among the odd exponents contribute.
    const std::uint64_t n = gf_.groupOrder();
    std::vector<std::uint64_t> leaders;
    gen_ = Gf2Poly::monomial(0); // 1
    for (std::uint64_t i = 1; i < 2ull * t; i += 2) {
        const std::uint64_t leader = cosetLeader(i % n, n);
        if (std::find(leaders.begin(), leaders.end(), leader) !=
            leaders.end()) {
            continue;
        }
        leaders.push_back(leader);
        gen_ = gen_ * minimalPolynomial(gf_, static_cast<std::uint32_t>(
            leader));
    }

    parityBits_ = static_cast<std::uint32_t>(gen_.degree());
    if (dataBits_ + parityBits_ > n) {
        std::ostringstream os;
        os << "BCH(m=" << m << ", t=" << t << ") cannot hold "
           << data_bits << " data bits (n = " << n << ", parity = "
           << parityBits_ << ")";
        fatal(os.str());
    }
}

void
BchCode::encode(const std::uint8_t* data, std::uint8_t* parity) const
{
    // Systematic: parity(x) = data(x) * x^r mod g(x).
    Gf2Poly msg;
    const std::uint32_t nbytes = dataBits_ / 8;
    for (std::uint32_t i = 0; i < nbytes; ++i) {
        const std::uint8_t byte = data[i];
        if (!byte)
            continue;
        for (unsigned b = 0; b < 8; ++b) {
            if (byte & (1u << b))
                msg.setCoeff(parityBits_ + i * 8 + b, true);
        }
    }
    const Gf2Poly rem = msg.mod(gen_);
    const std::uint32_t pbytes = parityBytes();
    for (std::uint32_t i = 0; i < pbytes; ++i)
        parity[i] = 0;
    for (std::uint32_t i = 0; i < parityBits_; ++i) {
        if (rem.coeff(i))
            parity[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
}

std::vector<GaloisField::Elem>
BchCode::syndromes(const std::uint8_t* data,
                   const std::uint8_t* parity) const
{
    // S_j = r(alpha^j), j = 1..2t, accumulated over set bits only.
    const std::int64_t n = gf_.groupOrder();
    std::vector<GaloisField::Elem> synd(2 * t_, 0);
    const std::uint32_t total = codewordBits();
    for (std::uint32_t p = 0; p < total; ++p) {
        if (!codewordBit(data, parity, p))
            continue;
        for (unsigned j = 1; j <= 2 * t_; ++j) {
            synd[j - 1] ^= gf_.alphaPow(
                (static_cast<std::int64_t>(p) * j) % n);
        }
    }
    return synd;
}

bool
BchCode::isCodewordClean(const std::uint8_t* data,
                         const std::uint8_t* parity) const
{
    const auto synd = syndromes(data, parity);
    return std::all_of(synd.begin(), synd.end(),
                       [](GaloisField::Elem s) { return s == 0; });
}

std::vector<GaloisField::Elem>
BchCode::berlekampMassey(const std::vector<GaloisField::Elem>& synd) const
{
    // Berlekamp-Massey over GF(2^m): find the shortest LFSR C(x)
    // generating the syndrome sequence.
    std::vector<GaloisField::Elem> c = {1};
    std::vector<GaloisField::Elem> b = {1};
    unsigned l = 0;
    unsigned mm = 1;
    GaloisField::Elem bb = 1;

    for (unsigned nn = 0; nn < synd.size(); ++nn) {
        GaloisField::Elem d = synd[nn];
        for (unsigned i = 1; i <= l && i < c.size(); ++i)
            d ^= gf_.mul(c[i], synd[nn - i]);

        if (d == 0) {
            ++mm;
        } else if (2 * l <= nn) {
            const std::vector<GaloisField::Elem> tmp = c;
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c.size() < b.size() + mm)
                c.resize(b.size() + mm, 0);
            for (std::size_t i = 0; i < b.size(); ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            l = nn + 1 - l;
            b = tmp;
            bb = d;
            mm = 1;
        } else {
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c.size() < b.size() + mm)
                c.resize(b.size() + mm, 0);
            for (std::size_t i = 0; i < b.size(); ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            ++mm;
        }
    }
    while (!c.empty() && c.back() == 0)
        c.pop_back();
    return c;
}

BchDecodeResult
BchCode::decode(std::uint8_t* data, std::uint8_t* parity) const
{
    BchDecodeResult res;

    const auto synd = syndromes(data, parity);
    const bool clean = std::all_of(synd.begin(), synd.end(),
        [](GaloisField::Elem s) { return s == 0; });
    if (clean) {
        res.ok = true;
        return res;
    }

    const auto sigma = berlekampMassey(synd);
    const unsigned deg = sigma.empty()
        ? 0 : static_cast<unsigned>(sigma.size() - 1);
    if (deg == 0 || deg > t_) {
        res.ok = false;
        return res;
    }

    // Chien search over the shortened positions: sigma has a root at
    // alpha^{-p} exactly when an error sits at codeword position p.
    // Incrementally maintain term_j = sigma_j * alpha^{-p*j}.
    std::vector<GaloisField::Elem> term(sigma.begin(), sigma.end());
    std::vector<GaloisField::Elem> step(sigma.size());
    for (std::size_t j = 0; j < sigma.size(); ++j)
        step[j] = gf_.alphaPow(-static_cast<std::int64_t>(j));

    const std::uint32_t total = codewordBits();
    for (std::uint32_t p = 0; p < total; ++p) {
        GaloisField::Elem acc = 0;
        for (std::size_t j = 0; j < term.size(); ++j)
            acc ^= term[j];
        if (acc == 0)
            res.positions.push_back(p);
        for (std::size_t j = 1; j < term.size(); ++j)
            term[j] = gf_.mul(term[j], step[j]);
    }

    if (res.positions.size() != deg) {
        // Some locator roots fall outside the shortened word: the
        // actual error count exceeded t.
        res.positions.clear();
        res.ok = false;
        return res;
    }

    for (const std::uint32_t p : res.positions) {
        if (p < parityBits_)
            flipBit(parity, p);
        else
            flipBit(data, p - parityBits_);
    }
    res.correctedBits = deg;
    res.ok = true;
    return res;
}

} // namespace flashcache
