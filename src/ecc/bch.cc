#include "ecc/bch.hh"

#include <algorithm>
#include <sstream>

#include "util/log.hh"

namespace flashcache {

namespace {

/** Smallest member of the 2-cyclotomic coset of e mod n. */
std::uint64_t
cosetLeader(std::uint64_t e, std::uint64_t n)
{
    std::uint64_t leader = e;
    std::uint64_t x = (e * 2) % n;
    while (x != e) {
        leader = std::min(leader, x);
        x = (x * 2) % n;
    }
    return leader;
}

} // namespace

BchCode::BchCode(unsigned m, unsigned t, std::uint32_t data_bits)
    : gf_(m), t_(t), dataBits_(data_bits)
{
    if (t == 0)
        fatal("BchCode with t = 0");
    if (data_bits % 8 != 0)
        fatal("BchCode data length must be byte aligned");

    // Generator = LCM of minimal polynomials of alpha^1 .. alpha^2t.
    // Even powers share cyclotomic cosets with smaller ones, so only
    // distinct coset leaders among the odd exponents contribute.
    const std::uint64_t n = gf_.groupOrder();
    std::vector<std::uint64_t> leaders;
    gen_ = Gf2Poly::monomial(0); // 1
    for (std::uint64_t i = 1; i < 2ull * t; i += 2) {
        const std::uint64_t leader = cosetLeader(i % n, n);
        if (std::find(leaders.begin(), leaders.end(), leader) !=
            leaders.end()) {
            continue;
        }
        leaders.push_back(leader);
        gen_ = gen_ * minimalPolynomial(gf_, static_cast<std::uint32_t>(
            leader));
    }

    parityBits_ = static_cast<std::uint32_t>(gen_.degree());
    if (dataBits_ + parityBits_ > n) {
        std::ostringstream os;
        os << "BCH(m=" << m << ", t=" << t << ") cannot hold "
           << data_bits << " data bits (n = " << n << ", parity = "
           << parityBits_ << ")";
        fatal(os.str());
    }

    // ---- encoder remainder table ----
    // T[b] = b(x) * x^r mod g(x). Built from the 8 single-bit basis
    // remainders x^(r+k) mod g by GF(2) linearity.
    const std::uint32_t r = parityBits_;
    parityWords_ = (r + 63) / 64;
    // The byte LFSR keeps its state in at most 4 words (256 parity
    // bits, far above the page code's 180); codes outside that range
    // or with fewer than 8 parity bits use the reference encoder.
    byteEncode_ = r >= 8 && parityWords_ <= 4;
    topWordMask_ = (r % 64) ? ((1ull << (r % 64)) - 1) : ~0ull;
    lastParityMask_ = (r % 8)
        ? static_cast<std::uint8_t>((1u << (r % 8)) - 1) : 0xFF;
    if (byteEncode_) {
        topByteWord_ = (r - 8) / 64;
        topByteShift_ = (r - 8) % 64;
        std::uint64_t basis[8][4] = {};
        for (unsigned k = 0; k < 8; ++k) {
            const Gf2Poly rem = Gf2Poly::monomial(r + k).mod(gen_);
            for (std::uint32_t i = 0; i < r; ++i) {
                if (rem.coeff(i))
                    basis[k][i / 64] |= 1ull << (i % 64);
            }
        }
        encTable_.assign(256u * parityWords_, 0);
        for (unsigned b = 0; b < 256; ++b) {
            std::uint64_t* entry = &encTable_[b * parityWords_];
            for (unsigned k = 0; k < 8; ++k) {
                if (!(b & (1u << k)))
                    continue;
                for (std::uint32_t w = 0; w < parityWords_; ++w)
                    entry[w] ^= basis[k][w];
            }
        }
    }

    // ---- syndrome byte-evaluation tables (odd exponents only) ----
    // byteEval_[k][b] = b(alpha^j), j = 2k + 1. Even syndromes follow
    // from S_2j = S_j^2 at decode time, halving the table set and the
    // per-byte work.
    byteEval_.assign(static_cast<std::size_t>(t_) * 256, 0);
    stepLog8_.resize(t_);
    parityBaseLog_.resize(t_);
    for (unsigned k = 0; k < t_; ++k) {
        const std::uint64_t j = 2ull * k + 1;
        stepLog8_[k] = static_cast<std::uint32_t>((8 * j) % n);
        parityBaseLog_[k] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(parityBits_) * j) % n);
        GaloisField::Elem bit[8];
        for (unsigned bpos = 0; bpos < 8; ++bpos)
            bit[bpos] = gf_.alphaPow(static_cast<std::int64_t>(
                (bpos * j) % n));
        GaloisField::Elem* tbl = &byteEval_[static_cast<std::size_t>(k) *
            256];
        for (unsigned b = 1; b < 256; ++b) {
            const unsigned low = b & (b - 1);
            const unsigned bpos = static_cast<unsigned>(
                __builtin_ctz(b));
            tbl[b] = tbl[low] ^ bit[bpos];
        }
    }

    // ---- Chien step table: alpha^-j per locator coefficient j ----
    chienStepLog_.resize(t_ + 1);
    for (unsigned j = 0; j <= t_; ++j)
        chienStepLog_[j] = static_cast<std::uint32_t>((n - j % n) % n);

    // ---- workspace (the only allocations after construction) ----
    ws_.encState.assign(parityWords_, 0);
    ws_.synd.assign(2 * t_, 0);
    const std::size_t bm_cap = 2 * t_ + 3;
    ws_.sigma.assign(bm_cap, 0);
    ws_.bmB.assign(bm_cap, 0);
    ws_.bmTmp.assign(bm_cap, 0);
    ws_.termLog.assign(t_ + 1, 0);
    ws_.positions.assign(t_, 0);
}

void
BchCode::encode(const std::uint8_t* data, std::uint8_t* parity) const
{
    if (!byteEncode_) {
        // Degenerate tiny codes (r < 8) stay on the reference path.
        encodeReference(data, parity);
        return;
    }

    // Byte-at-a-time LFSR for parity(x) = data(x) * x^r mod g(x).
    // State R holds the running remainder; feeding message byte B
    // (high-degree bytes first) performs
    //   R' = ((R << 8) mod x^r) ^ T[topByte(R) ^ B]
    // using the linearity of the remainder map.
    std::uint64_t* s = ws_.encState.data();
    const std::uint32_t W = parityWords_;
    for (std::uint32_t w = 0; w < W; ++w)
        s[w] = 0;

    const std::uint32_t nbytes = dataBits_ / 8;
    for (std::uint32_t i = nbytes; i-- > 0;) {
        std::uint64_t top = s[topByteWord_] >> topByteShift_;
        if (topByteShift_ > 56 && topByteWord_ + 1 < W)
            top |= s[topByteWord_ + 1] << (64 - topByteShift_);
        const unsigned idx =
            static_cast<unsigned>(top & 0xFF) ^ data[i];

        for (std::uint32_t w = W; w-- > 1;)
            s[w] = (s[w] << 8) | (s[w - 1] >> 56);
        s[0] <<= 8;
        s[W - 1] &= topWordMask_;

        if (idx) {
            const std::uint64_t* entry = &encTable_[idx * W];
            for (std::uint32_t w = 0; w < W; ++w)
                s[w] ^= entry[w];
        }
    }

    const std::uint32_t pbytes = parityBytes();
    for (std::uint32_t i = 0; i < pbytes; ++i)
        parity[i] = static_cast<std::uint8_t>(s[i / 8] >> ((i % 8) * 8));
}

void
BchCode::encodeReference(const std::uint8_t* data,
                         std::uint8_t* parity) const
{
    // Systematic: parity(x) = data(x) * x^r mod g(x).
    Gf2Poly msg;
    const std::uint32_t nbytes = dataBits_ / 8;
    for (std::uint32_t i = 0; i < nbytes; ++i) {
        const std::uint8_t byte = data[i];
        if (!byte)
            continue;
        for (unsigned b = 0; b < 8; ++b) {
            if (byte & (1u << b))
                msg.setCoeff(parityBits_ + i * 8 + b, true);
        }
    }
    const Gf2Poly rem = msg.mod(gen_);
    const std::uint32_t pbytes = parityBytes();
    for (std::uint32_t i = 0; i < pbytes; ++i)
        parity[i] = 0;
    for (std::uint32_t i = 0; i < parityBits_; ++i) {
        if (rem.coeff(i))
            parity[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
}

bool
BchCode::computeSyndromes(const std::uint8_t* data,
                          const std::uint8_t* parity) const
{
    // Odd syndromes S_j = r(alpha^j), j = 1, 3, .., 2t-1, accumulated
    // byte-wise: each nonzero byte B at byte position i contributes
    // B(alpha^j) * alpha^(8ij), with the position power maintained as
    // a running discrete log (one add + compare per byte, no modulo).
    // Even syndromes are Frobenius squares: S_2j = S_j^2.
    const std::uint32_t nmod = gf_.groupOrder();
    const std::uint32_t pbytes = parityBytes();
    const std::uint32_t dbytes = dataBits_ / 8;
    GaloisField::Elem* synd = ws_.synd.data();
    GaloisField::Elem any = 0;

    for (unsigned k = 0; k < t_; ++k) {
        const GaloisField::Elem* tbl =
            &byteEval_[static_cast<std::size_t>(k) * 256];
        const std::uint32_t step = stepLog8_[k];
        GaloisField::Elem s = 0;

        std::uint32_t lp = 0;
        for (std::uint32_t i = 0; i < pbytes; ++i) {
            std::uint8_t b = parity[i];
            if (i == pbytes - 1)
                b &= lastParityMask_;
            if (b) {
                const GaloisField::Elem v = tbl[b];
                if (v)
                    s ^= gf_.alphaPowUnreduced(gf_.logAlpha(v) + lp);
            }
            lp += step;
            if (lp >= nmod)
                lp -= nmod;
        }

        lp = parityBaseLog_[k];
        for (std::uint32_t i = 0; i < dbytes; ++i) {
            const std::uint8_t b = data[i];
            if (b) {
                const GaloisField::Elem v = tbl[b];
                if (v)
                    s ^= gf_.alphaPowUnreduced(gf_.logAlpha(v) + lp);
            }
            lp += step;
            if (lp >= nmod)
                lp -= nmod;
        }

        synd[2 * k] = s;
        any |= s;
    }
    for (unsigned j = 2; j <= 2 * t_; j += 2) {
        synd[j - 1] = gf_.square(synd[j / 2 - 1]);
        any |= synd[j - 1];
    }
    return any == 0;
}

std::vector<GaloisField::Elem>
BchCode::syndromesReference(const std::uint8_t* data,
                            const std::uint8_t* parity) const
{
    // S_j = r(alpha^j), j = 1..2t, accumulated over set bits only.
    const std::int64_t n = gf_.groupOrder();
    std::vector<GaloisField::Elem> synd(2 * t_, 0);
    const std::uint32_t total = codewordBits();
    for (std::uint32_t p = 0; p < total; ++p) {
        if (!codewordBit(data, parity, p))
            continue;
        for (unsigned j = 1; j <= 2 * t_; ++j) {
            synd[j - 1] ^= gf_.alphaPow(
                (static_cast<std::int64_t>(p) * j) % n);
        }
    }
    return synd;
}

bool
BchCode::isCodewordClean(const std::uint8_t* data,
                         const std::uint8_t* parity) const
{
    return computeSyndromes(data, parity);
}

unsigned
BchCode::berlekampMassey() const
{
    // Berlekamp-Massey over GF(2^m): find the shortest LFSR C(x)
    // generating the syndrome sequence. Scratch polynomials live in
    // the workspace; lengths are tracked explicitly so the loop never
    // touches the allocator.
    const GaloisField::Elem* synd = ws_.synd.data();
    const unsigned nsynd = 2 * t_;
    const std::size_t cap = ws_.sigma.size();
    GaloisField::Elem* c = ws_.sigma.data();
    GaloisField::Elem* b = ws_.bmB.data();
    GaloisField::Elem* tmp = ws_.bmTmp.data();
    std::fill(ws_.sigma.begin(), ws_.sigma.end(), 0);
    std::fill(ws_.bmB.begin(), ws_.bmB.end(), 0);

    c[0] = 1;
    b[0] = 1;
    std::size_t c_len = 1;
    std::size_t b_len = 1;
    unsigned l = 0;
    unsigned mm = 1;
    GaloisField::Elem bb = 1;

    for (unsigned nn = 0; nn < nsynd; ++nn) {
        GaloisField::Elem d = synd[nn];
        for (unsigned i = 1; i <= l && i < c_len; ++i)
            d ^= gf_.mul(c[i], synd[nn - i]);

        if (d == 0) {
            ++mm;
        } else if (2 * l <= nn) {
            std::copy(c, c + c_len, tmp);
            const std::size_t tmp_len = c_len;
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c_len < b_len + mm) {
                if (b_len + mm > cap)
                    panic("Berlekamp-Massey workspace overflow");
                c_len = b_len + mm;
            }
            for (std::size_t i = 0; i < b_len; ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            l = nn + 1 - l;
            std::copy(tmp, tmp + tmp_len, b);
            std::fill(b + tmp_len, b + std::max(tmp_len, b_len), 0);
            b_len = tmp_len;
            bb = d;
            mm = 1;
        } else {
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c_len < b_len + mm) {
                if (b_len + mm > cap)
                    panic("Berlekamp-Massey workspace overflow");
                c_len = b_len + mm;
            }
            for (std::size_t i = 0; i < b_len; ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            ++mm;
        }
    }
    while (c_len > 0 && c[c_len - 1] == 0)
        --c_len;
    return static_cast<unsigned>(c_len);
}

BchDecodeResult
BchCode::decode(std::uint8_t* data, std::uint8_t* parity) const
{
    BchDecodeResult res;

    if (computeSyndromes(data, parity)) {
        res.ok = true;
        return res;
    }

    const unsigned sigma_len = berlekampMassey();
    const unsigned deg = sigma_len == 0 ? 0 : sigma_len - 1;
    if (deg == 0 || deg > t_) {
        res.ok = false;
        return res;
    }

    // Chien search over the shortened positions: sigma has a root at
    // alpha^{-p} exactly when an error sits at codeword position p.
    // Each term sigma_j * alpha^{-pj} advances per position by one
    // log-domain add (termLog_j += n - j), and the scan stops as soon
    // as deg roots are found — a degree-deg polynomial has no more.
    const std::uint32_t nmod = gf_.groupOrder();
    const GaloisField::Elem* sigma = ws_.sigma.data();
    std::uint32_t* term = ws_.termLog.data();
    static constexpr std::uint32_t kNoTerm = 0xFFFFFFFFu;
    for (unsigned j = 0; j <= deg; ++j)
        term[j] = sigma[j] ? gf_.logAlpha(sigma[j]) : kNoTerm;

    std::uint32_t* positions = ws_.positions.data();
    unsigned nfound = 0;
    const std::uint32_t total = codewordBits();
    for (std::uint32_t p = 0; p < total; ++p) {
        GaloisField::Elem acc = 0;
        for (unsigned j = 0; j <= deg; ++j) {
            if (term[j] != kNoTerm)
                acc ^= gf_.alphaPowUnreduced(term[j]);
        }
        if (acc == 0) {
            positions[nfound++] = p;
            if (nfound == deg)
                break;
        }
        for (unsigned j = 1; j <= deg; ++j) {
            if (term[j] == kNoTerm)
                continue;
            term[j] += chienStepLog_[j];
            if (term[j] >= nmod)
                term[j] -= nmod;
        }
    }

    if (nfound != deg) {
        // Some locator roots fall outside the shortened word: the
        // actual error count exceeded t.
        res.ok = false;
        return res;
    }

    for (unsigned i = 0; i < nfound; ++i) {
        const std::uint32_t p = positions[i];
        if (p < parityBits_)
            flipBit(parity, p);
        else
            flipBit(data, p - parityBits_);
        if (i < BchDecodeResult::kMaxReportedPositions)
            res.positions[i] = p;
    }
    res.correctedBits = deg;
    res.ok = true;
    return res;
}

BchDecodeResult
BchCode::decodeReference(std::uint8_t* data, std::uint8_t* parity) const
{
    // The original bit-serial pipeline, kept verbatim as the oracle:
    // per-set-bit syndromes, allocating Berlekamp-Massey, full Chien
    // sweep with per-position GF multiplies.
    BchDecodeResult res;

    const auto synd = syndromesReference(data, parity);
    const bool clean = std::all_of(synd.begin(), synd.end(),
        [](GaloisField::Elem s) { return s == 0; });
    if (clean) {
        res.ok = true;
        return res;
    }

    std::vector<GaloisField::Elem> c = {1};
    std::vector<GaloisField::Elem> b = {1};
    unsigned l = 0;
    unsigned mm = 1;
    GaloisField::Elem bb = 1;
    for (unsigned nn = 0; nn < synd.size(); ++nn) {
        GaloisField::Elem d = synd[nn];
        for (unsigned i = 1; i <= l && i < c.size(); ++i)
            d ^= gf_.mul(c[i], synd[nn - i]);

        if (d == 0) {
            ++mm;
        } else if (2 * l <= nn) {
            const std::vector<GaloisField::Elem> tmp = c;
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c.size() < b.size() + mm)
                c.resize(b.size() + mm, 0);
            for (std::size_t i = 0; i < b.size(); ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            l = nn + 1 - l;
            b = tmp;
            bb = d;
            mm = 1;
        } else {
            const GaloisField::Elem coef = gf_.div(d, bb);
            if (c.size() < b.size() + mm)
                c.resize(b.size() + mm, 0);
            for (std::size_t i = 0; i < b.size(); ++i)
                c[i + mm] ^= gf_.mul(coef, b[i]);
            ++mm;
        }
    }
    while (!c.empty() && c.back() == 0)
        c.pop_back();
    const auto& sigma = c;

    const unsigned deg = sigma.empty()
        ? 0 : static_cast<unsigned>(sigma.size() - 1);
    if (deg == 0 || deg > t_) {
        res.ok = false;
        return res;
    }

    std::vector<GaloisField::Elem> term(sigma.begin(), sigma.end());
    std::vector<GaloisField::Elem> step(sigma.size());
    for (std::size_t j = 0; j < sigma.size(); ++j)
        step[j] = gf_.alphaPow(-static_cast<std::int64_t>(j));

    std::vector<std::uint32_t> found;
    const std::uint32_t total = codewordBits();
    for (std::uint32_t p = 0; p < total; ++p) {
        GaloisField::Elem acc = 0;
        for (std::size_t j = 0; j < term.size(); ++j)
            acc ^= term[j];
        if (acc == 0)
            found.push_back(p);
        for (std::size_t j = 1; j < term.size(); ++j)
            term[j] = gf_.mul(term[j], step[j]);
    }

    if (found.size() != deg) {
        res.ok = false;
        return res;
    }

    for (std::size_t i = 0; i < found.size(); ++i) {
        const std::uint32_t p = found[i];
        if (p < parityBits_)
            flipBit(parity, p);
        else
            flipBit(data, p - parityBits_);
        if (i < BchDecodeResult::kMaxReportedPositions)
            res.positions[i] = p;
    }
    res.correctedBits = deg;
    res.ok = true;
    return res;
}

} // namespace flashcache
