/**
 * @file
 * CRC-32 (IEEE 802.3) checksum.
 *
 * The paper pairs the BCH corrector with a CRC32 detector (section
 * 4.1.2): BCH can silently miscorrect when more than t errors occur,
 * and the CRC catches those false positives. 4 of the page's 64 spare
 * bytes hold this checksum.
 *
 * The default implementation uses slicing-by-8 (eight 256-entry
 * tables, 8 input bytes folded per step); the classic one-table
 * byte-wise version is kept as crc32Bytewise for differential tests
 * and benchmark comparison.
 */

#ifndef FLASHCACHE_ECC_CRC32_HH
#define FLASHCACHE_ECC_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace flashcache {

/** CRC-32 of a buffer (reflected polynomial 0xEDB88320, init ~0). */
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/** Incrementally extend a CRC-32 with more data. */
std::uint32_t crc32Update(std::uint32_t crc, const std::uint8_t* data,
                          std::size_t len);

/** One-table byte-at-a-time reference implementation. */
std::uint32_t crc32Bytewise(const std::uint8_t* data, std::size_t len);

/** Incremental form of the byte-wise reference. */
std::uint32_t crc32BytewiseUpdate(std::uint32_t crc,
                                  const std::uint8_t* data,
                                  std::size_t len);

} // namespace flashcache

#endif // FLASHCACHE_ECC_CRC32_HH
