#include "ecc/crc32.hh"

#include <array>

namespace flashcache {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256>& table()
{
    static const std::array<std::uint32_t, 256> t = makeTable();
    return t;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const std::uint8_t* data, std::size_t len)
{
    crc = ~crc;
    const auto& t = table();
    for (std::size_t i = 0; i < len; ++i)
        crc = t[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32(const std::uint8_t* data, std::size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace flashcache
