#include "ecc/crc32.hh"

#include <array>
#include <cstring>

namespace flashcache {

namespace {

/**
 * Slicing-by-8 tables: tables[0] is the classic byte-wise table;
 * tables[k][b] extends it so that eight input bytes can be folded
 * into the CRC with eight independent lookups per 64-bit word.
 */
struct Crc32Tables
{
    std::array<std::array<std::uint32_t, 256>, 8> t;

    Crc32Tables()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = t[0][i];
            for (int k = 1; k < 8; ++k) {
                c = t[0][c & 0xFF] ^ (c >> 8);
                t[k][i] = c;
            }
        }
    }
};

const Crc32Tables& tables()
{
    static const Crc32Tables t;
    return t;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const std::uint8_t* data, std::size_t len)
{
    const auto& t = tables().t;
    crc = ~crc;

    // Fold 8 bytes per iteration (slicing-by-8). The two 32-bit
    // halves are assembled byte-wise, which keeps the code
    // endian-independent; the compiler turns each into a single load
    // on little-endian targets.
    while (len >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, data, 4);
        std::memcpy(&hi, data + 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
        lo = __builtin_bswap32(lo);
        hi = __builtin_bswap32(hi);
#endif
        lo ^= crc;
        crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
              t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
              t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
              t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
        data += 8;
        len -= 8;
    }
    while (len--) {
        crc = t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
    }
    return ~crc;
}

std::uint32_t
crc32(const std::uint8_t* data, std::size_t len)
{
    return crc32Update(0, data, len);
}

std::uint32_t
crc32BytewiseUpdate(std::uint32_t crc, const std::uint8_t* data,
                    std::size_t len)
{
    const auto& t = tables().t[0];
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = t[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32Bytewise(const std::uint8_t* data, std::size_t len)
{
    return crc32BytewiseUpdate(0, data, len);
}

} // namespace flashcache
