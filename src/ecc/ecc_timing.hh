/**
 * @file
 * Timing model of the paper's hardware BCH accelerator.
 *
 * Section 4.1.1: a pure-software decoder on a 3.4 GHz P4 took 0.1-1 s
 * per page, so the authors designed an accelerator — a 100 MHz
 * in-order embedded core with a 2^15-entry finite-field lookup table
 * and 16 parallel finite-field adder/multiplier lanes (16 Chien
 * search engines), ~1 mm^2, fixed 2 KB block size, t <= 12.
 *
 * This model reproduces Figure 6(a) / Table 3: decode latency rises
 * roughly linearly in code strength from ~58 us (t = 2) to ~400 us
 * (t = 12), split into a syndrome component and a Chien component,
 * with the Berlekamp stage negligible. The density controller and
 * simulator query it for per-access ECC delay; strengths beyond 12
 * extrapolate linearly (used by the paper for Figure 10's sweep to
 * t = 50).
 */

#ifndef FLASHCACHE_ECC_ECC_TIMING_HH
#define FLASHCACHE_ECC_ECC_TIMING_HH

#include <cstdint>

#include "util/types.hh"

namespace flashcache {

/** Latency breakdown of one accelerated BCH decode. */
struct BchLatency
{
    Seconds syndrome = 0.0;
    Seconds berlekamp = 0.0;
    Seconds chien = 0.0;

    Seconds total() const { return syndrome + berlekamp + chien; }
};

/**
 * Analytic accelerator model; all methods are pure functions of the
 * configuration.
 */
class EccTimingModel
{
  public:
    /**
     * @param clock_hz   Accelerator clock (paper: 100 MHz).
     * @param lanes      Parallel GF lanes / Chien engines (paper: 16).
     * @param page_bytes Protected payload size (paper: 2048).
     * @param spare_bytes Spare area also streamed through (64).
     */
    EccTimingModel(double clock_hz = 100e6, unsigned lanes = 16,
                   std::uint32_t page_bytes = 2048,
                   std::uint32_t spare_bytes = 64);

    /** Decode latency breakdown for code strength t (t = 0 is free). */
    BchLatency decodeLatency(unsigned t) const;

    /** Encode latency (streaming LFSR division, strength-independent
     *  up to the parity flush). */
    Seconds encodeLatency(unsigned t) const;

    /** CRC32 check latency; "tens of nanoseconds" per section 4.1.2. */
    Seconds crcLatency() const;

    std::uint32_t codewordBits(unsigned t) const;

  private:
    double clockHz_;
    unsigned lanes_;
    std::uint32_t pageBytes_;
    std::uint32_t spareBytes_;
};

} // namespace flashcache

#endif // FLASHCACHE_ECC_ECC_TIMING_HH
