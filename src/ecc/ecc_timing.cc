#include "ecc/ecc_timing.hh"

namespace flashcache {

EccTimingModel::EccTimingModel(double clock_hz, unsigned lanes,
                               std::uint32_t page_bytes,
                               std::uint32_t spare_bytes)
    : clockHz_(clock_hz), lanes_(lanes), pageBytes_(page_bytes),
      spareBytes_(spare_bytes)
{
}

std::uint32_t
EccTimingModel::codewordBits(unsigned t) const
{
    // Data plus m*t parity bits with m = 15 for the 2 KB page code.
    return pageBytes_ * 8 + 15 * t;
}

BchLatency
EccTimingModel::decodeLatency(unsigned t) const
{
    BchLatency lat;
    if (t == 0)
        return lat;

    const double n = codewordBits(t);
    const double cycle = 1.0 / clockHz_;

    // Syndrome pass: 2t GF multiply-accumulates per bit, spread over
    // the parallel lanes.
    lat.syndrome = (n * 2.0 * t / lanes_) * cycle;

    // Berlekamp-Massey: O(t^2) serial GF ops; negligible, as the
    // paper notes ("Berlekamp algorithm overhead is insignificant").
    lat.berlekamp = (2.0 * t * t) * cycle;

    // Chien search: t+1 locator terms evaluated per position across
    // the 16 engines.
    lat.chien = (n * (t + 1.0) / lanes_) * cycle;

    return lat;
}

Seconds
EccTimingModel::encodeLatency(unsigned t) const
{
    // The LFSR divider consumes 8 bits per cycle while the page
    // streams in, then flushes the parity register.
    const double cycles = (pageBytes_ + spareBytes_) + 15.0 * t / 8.0;
    return cycles / clockHz_;
}

Seconds
EccTimingModel::crcLatency() const
{
    // Parallel CRC32 engine, 32 bits per cycle (section 4.1.2).
    const double cycles = (pageBytes_ + spareBytes_) * 8.0 / 32.0;
    return cycles / clockHz_ * 0.1; // pipelined with the transfer
}

} // namespace flashcache
