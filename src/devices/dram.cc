#include "devices/dram.hh"

#include "obs/metrics.hh"
#include "util/log.hh"

namespace flashcache {

DramModel::DramModel(std::uint64_t capacity_bytes, const DramSpec& spec)
    : capacity_(capacity_bytes), spec_(spec)
{
    if (capacity_bytes == 0)
        fatal("DramModel with zero capacity");
    devices_ = static_cast<unsigned>(
        (capacity_bytes + spec.deviceBytes - 1) / spec.deviceBytes);
}

void
DramModel::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("dram.read_busy", "DRAM read busy seconds",
                &readBusy_);
    reg.counter("dram.write_busy", "DRAM write busy seconds",
                &writeBusy_);
}

Seconds
DramModel::access(std::uint64_t bytes) const
{
    // One row activate plus streaming transfer.
    return spec_.rowCycle +
        static_cast<double>(bytes) / kBandwidthBytesPerSec;
}

Seconds
DramModel::read(std::uint64_t bytes)
{
    const Seconds lat = access(bytes);
    readBusy_ += lat;
    if (demands_)
        demands_->record(sched::ResourceKind::DramPort, 0, lat);
    return lat;
}

Seconds
DramModel::write(std::uint64_t bytes)
{
    const Seconds lat = access(bytes);
    writeBusy_ += lat;
    if (demands_)
        demands_->record(sched::ResourceKind::DramPort, 0, lat);
    return lat;
}

DramEnergy
DramModel::energyOver(Seconds wall_clock) const
{
    DramEnergy e;
    // One device bursts at a time; the others stay at idle power,
    // which the idle term below already covers for the whole span.
    const Watts burst = spec_.activePower - spec_.idleActivePower;
    e.read = readBusy_ * burst;
    e.write = writeBusy_ * burst;
    e.idle = wall_clock * spec_.idleActivePower * devices_;
    return e;
}

} // namespace flashcache
