/**
 * @file
 * DRAM model for the primary disk cache (PDC).
 *
 * The paper's Figure 9 splits system-memory power into read, write
 * and idle components, so the model tracks read and write busy time
 * separately. Power scales with the number of 1 Gb DDR2 devices
 * needed for the configured capacity (Table 2/3: 878 mW active,
 * 80 mW active-idle, 18 mW powerdown-idle per device; tRC = 50 ns).
 */

#ifndef FLASHCACHE_DEVICES_DRAM_HH
#define FLASHCACHE_DEVICES_DRAM_HH

#include <cstdint>

#include "flash/flash_spec.hh"
#include "sched/demand.hh"
#include "util/types.hh"

namespace flashcache {

namespace obs {
class MetricRegistry;
} // namespace obs

/** Energy breakdown over a wall-clock interval. */
struct DramEnergy
{
    Joules read = 0.0;
    Joules write = 0.0;
    Joules idle = 0.0;

    Joules total() const { return read + write + idle; }
};

/**
 * Capacity-scaled DDR2 DRAM latency/power model.
 */
class DramModel
{
  public:
    /**
     * @param capacity_bytes Total DRAM size (1-4 "DIMMs" in Table 3).
     * @param spec           Datasheet constants.
     */
    explicit DramModel(std::uint64_t capacity_bytes,
                       const DramSpec& spec = DramSpec());

    std::uint64_t capacityBytes() const { return capacity_; }

    /** Number of 1 Gb (128 MB) devices implied by the capacity. */
    unsigned deviceCount() const { return devices_; }

    /** Access `bytes` for a read; returns the latency. */
    Seconds read(std::uint64_t bytes);

    /** Access `bytes` for a write; returns the latency. */
    Seconds write(std::uint64_t bytes);

    Seconds readBusyTime() const { return readBusy_; }
    Seconds writeBusyTime() const { return writeBusy_; }

    /** Attach (or detach with nullptr) a scheduler demand sink: each
     *  access is recorded as a DramPort demand. Not owned. */
    void attachDemandSink(sched::DemandSink* sink) { demands_ = sink; }

    /** Register `dram.*` metrics. */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /**
     * Energy breakdown across a wall-clock interval; idle uses the
     * active-idle figure (the OS touches the PDC continuously, so
     * powerdown residency is negligible in this usage).
     */
    DramEnergy energyOver(Seconds wall_clock) const;

  private:
    Seconds access(std::uint64_t bytes) const;

    std::uint64_t capacity_;
    DramSpec spec_;
    unsigned devices_;
    Seconds readBusy_ = 0.0;
    Seconds writeBusy_ = 0.0;
    sched::DemandSink* demands_ = nullptr;

    /** Sustained DDR2-style bandwidth for bulk page moves. */
    static constexpr double kBandwidthBytesPerSec = 3.2e9;
};

} // namespace flashcache

#endif // FLASHCACHE_DEVICES_DRAM_HH
