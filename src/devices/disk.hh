/**
 * @file
 * Hard disk drive model.
 *
 * Table 3 configures an IDE disk with a 4.2 ms average access
 * latency; section 6.1 uses laptop-drive power because the scaled
 * working sets fit a small disk. The model adds a light load-
 * dependent spread around the average (seek variation) and tracks
 * busy time for the power integration of Figure 9.
 */

#ifndef FLASHCACHE_DEVICES_DISK_HH
#define FLASHCACHE_DEVICES_DISK_HH

#include <cstdint>

#include "flash/flash_spec.hh"
#include "sched/demand.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace flashcache {

class FaultInjector;

namespace obs {
class MetricRegistry;
} // namespace obs

/**
 * Average-latency disk with busy-time power accounting.
 */
class DiskModel
{
  public:
    /** Outcome of one access through the latent-error retry path. */
    struct AccessResult
    {
        Seconds latency = 0.0;
        /** Latent-sector error survived every retry. */
        bool failed = false;
        unsigned retries = 0;
    };

    explicit DiskModel(const DiskSpec& spec = DiskSpec(),
                       std::uint64_t seed = 1);

    /**
     * Perform one access.
     *
     * @param lba        Target address (drives the seek spread).
     * @param sequential True when it follows the previous address
     *                   (short seek).
     * @return access latency.
     */
    Seconds access(Lba lba, bool sequential);

    /**
     * Access with latent-sector-error semantics: with a fault
     * injector attached, each attempt may fail; failed attempts are
     * retried with a fresh full-seek latency (firmware re-read with
     * repositioning) up to the plan's retry budget, after which the
     * access is reported failed. Without an injector this is exactly
     * access().
     */
    AccessResult accessChecked(Lba lba, bool sequential);

    /** Attach (or detach with nullptr) a fault injector. Not owned. */
    void attachFaultInjector(FaultInjector* fault) { fault_ = fault; }

    /** Attach (or detach with nullptr) a scheduler demand sink: each
     *  access (including retry seeks) is recorded as a Disk demand.
     *  Not owned. */
    void attachDemandSink(sched::DemandSink* sink) { demands_ = sink; }

    std::uint64_t accesses() const { return accesses_; }
    Seconds busyTime() const { return busy_; }

    /** Register `disk.*` metrics. */
    void registerMetrics(obs::MetricRegistry& reg) const;

    /** Energy across a wall-clock span: busy active + rest idle. */
    Joules energyOver(Seconds wall_clock) const;

    /** Mean power across a wall-clock span. */
    Watts
    powerOver(Seconds wall_clock) const
    {
        return wall_clock > 0 ? energyOver(wall_clock) / wall_clock : 0.0;
    }

  private:
    DiskSpec spec_;
    Rng rng_;
    Lba lastLba_ = 0;
    /** lastLba_ reflects the real head position. Retry seeks in
     *  accessChecked() reposition the head, so they clear this and
     *  the next access pays a full seek even at lastLba_ + 1. */
    bool seqValid_ = false;
    std::uint64_t accesses_ = 0;
    Seconds busy_ = 0.0;
    std::uint64_t retries_ = 0;
    std::uint64_t hardFailures_ = 0;
    FaultInjector* fault_ = nullptr;
    sched::DemandSink* demands_ = nullptr;
};

} // namespace flashcache

#endif // FLASHCACHE_DEVICES_DISK_HH
