#include "devices/disk.hh"

#include "obs/metrics.hh"

namespace flashcache {

DiskModel::DiskModel(const DiskSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
}

void
DiskModel::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("disk.accesses", "disk accesses", &accesses_);
    reg.counter("disk.busy", "disk busy seconds", &busy_);
}

Seconds
DiskModel::access(Lba lba, bool sequential)
{
    Seconds lat;
    if (sequential || lba == lastLba_ + 1) {
        // Head already positioned: rotational + transfer only.
        lat = spec_.avgAccessLatency * 0.15;
    } else {
        // Spread seeks uniformly in [0.5, 1.5] x average so the mean
        // matches the Table 3 figure.
        lat = spec_.avgAccessLatency * rng_.uniform(0.5, 1.5);
    }
    lastLba_ = lba;
    ++accesses_;
    busy_ += lat;
    return lat;
}

Joules
DiskModel::energyOver(Seconds wall_clock) const
{
    const Seconds idle = wall_clock > busy_ ? wall_clock - busy_ : 0.0;
    return busy_ * spec_.activePower + idle * spec_.idlePower;
}

} // namespace flashcache
