#include "devices/disk.hh"

#include "fault/fault_injector.hh"
#include "obs/metrics.hh"

namespace flashcache {

DiskModel::DiskModel(const DiskSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
}

void
DiskModel::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("disk.accesses", "disk accesses", &accesses_);
    reg.counter("disk.busy", "disk busy seconds", &busy_);
    reg.counter("disk.retries", "latent-sector-error retries", &retries_);
    reg.counter("disk.hard_failures",
                "accesses failed after exhausting retries",
                &hardFailures_);
}

Seconds
DiskModel::access(Lba lba, bool sequential)
{
    Seconds lat;
    if (sequential || (seqValid_ && lba == lastLba_ + 1)) {
        // Head already positioned: rotational + transfer only.
        lat = spec_.avgAccessLatency * 0.15;
    } else {
        // Spread seeks uniformly in [0.5, 1.5] x average so the mean
        // matches the Table 3 figure.
        lat = spec_.avgAccessLatency * rng_.uniform(0.5, 1.5);
    }
    lastLba_ = lba;
    seqValid_ = true;
    ++accesses_;
    busy_ += lat;
    if (demands_)
        demands_->record(sched::ResourceKind::Disk, 0, lat);
    return lat;
}

DiskModel::AccessResult
DiskModel::accessChecked(Lba lba, bool sequential)
{
    AccessResult res;
    res.latency = access(lba, sequential);
    if (!fault_ || !fault_->onDiskAttempt())
        return res;

    // Latent-sector error: firmware retries with repositioning, each
    // attempt a fresh full seek (no sequential shortcut). The head is
    // no longer parked after lastLba_, so the next access must not
    // inherit the sequential shortcut.
    seqValid_ = false;
    const unsigned budget = fault_->diskMaxRetries();
    while (res.retries < budget) {
        ++res.retries;
        ++retries_;
        const Seconds retry_lat =
            spec_.avgAccessLatency * rng_.uniform(0.5, 1.5);
        res.latency += retry_lat;
        busy_ += retry_lat;
        if (demands_)
            demands_->record(sched::ResourceKind::Disk, 0, retry_lat);
        if (!fault_->onDiskAttempt())
            return res;
    }
    res.failed = true;
    ++hardFailures_;
    return res;
}

Joules
DiskModel::energyOver(Seconds wall_clock) const
{
    const Seconds idle = wall_clock > busy_ ? wall_clock - busy_ : 0.0;
    return busy_ * spec_.activePower + idle * spec_.idlePower;
}

} // namespace flashcache
