/**
 * @file
 * Unified fault-injection harness for the flash cache stack.
 *
 * A FaultInjector owns a deterministic, seeded fault plan and is
 * consulted (when attached) by FlashDevice, DiskModel and — through
 * them — the memory controller on every medium operation. Faults come
 * in two flavours:
 *
 *  - probabilistic rates: program-status failures, erase failures,
 *    transient read bit-flips, and disk latent-sector errors, drawn
 *    from the injector's own Rng so a (seed, plan) pair replays
 *    bit-identically;
 *  - scheduled one-shots: "fail the Nth program", "fail the Nth
 *    erase", and power cuts that either land *between* operations
 *    (clean cut) or *mid-program* (torn page: only a prefix of
 *    data||spare reaches the medium).
 *
 * A power cut is delivered as a PowerLossException thrown out of the
 * device after the torn prefix has been persisted; the harness
 * discards the in-DRAM cache object (exactly what a real cut does to
 * the FCHT/FPST/FBST) and the device retains the crash-instant
 * medium state for FlashCache::recover() to scan.
 *
 * When no injector is attached every hook is a single null-pointer
 * test on the device hot path — the disabled path costs nothing
 * measurable (bench/fault_snapshot.cc proves it against
 * BENCH_cache.json).
 */

#ifndef FLASHCACHE_FAULT_FAULT_INJECTOR_HH
#define FLASHCACHE_FAULT_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace flashcache {

/**
 * Thrown by FlashDevice when the injector trips a power cut. The
 * device state at throw time is exactly the crash-instant medium
 * image (including any torn page); everything in DRAM is lost by
 * construction because the harness abandons the cache object.
 */
struct PowerLossException
{
    /** Global flash op ordinal (1-based) at which the cut landed. */
    std::uint64_t atOp = 0;
};

/** Outcome of consulting the injector for one page program. */
enum class ProgramFault : std::uint8_t
{
    None,       ///< program proceeds normally
    StatusFail, ///< chip reports program-status failure; page is garbage
    PowerCut,   ///< power dies mid-program; a torn prefix persists
};

/**
 * Declarative fault plan. Rates are per-operation probabilities;
 * scheduled fields are 1-based operation ordinals (0 = never).
 */
struct FaultPlan
{
    std::uint64_t seed = 0xFA17;

    /// @name Probabilistic rates.
    /// @{
    double programFailRate = 0.0; ///< P(program-status failure)
    double eraseFailRate = 0.0;   ///< P(erase failure)
    double readFaultRate = 0.0;   ///< P(transient read disturbance)
    unsigned readFaultBits = 4;   ///< max extra bit errors per event
    double diskFaultRate = 0.0;   ///< P(latent-sector error per attempt)
    /// @}

    /** Disk retries before an access is declared failed. */
    unsigned diskMaxRetries = 3;

    /// @name Scheduled one-shots (1-based ordinals; 0 = never).
    /// @{
    std::uint64_t programFailAt = 0;     ///< Nth program status-fails
    std::uint64_t eraseFailAt = 0;       ///< Nth erase fails
    std::uint64_t powerCutAtProgram = 0; ///< cut mid-Nth-program (torn)
    std::uint64_t powerCutAtOp = 0;      ///< clean cut before Nth flash op
    /// @}

    /**
     * Fraction of the in-flight payload persisted by a torn program.
     * Negative = draw uniformly in [0, 1) per cut. The persisted
     * prefix is always strictly shorter than the payload, so a torn
     * page can never masquerade as complete.
     */
    double tornFraction = -1.0;
};

/** Injection event counts, registered under `fault.*`. */
struct FaultStats
{
    std::uint64_t programFails = 0; ///< program-status failures injected
    std::uint64_t eraseFails = 0;   ///< erase failures injected
    std::uint64_t readFaults = 0;   ///< transient read events injected
    std::uint64_t readFaultBits = 0; ///< total extra bits injected
    std::uint64_t diskFaults = 0;   ///< latent-sector errors injected
    std::uint64_t powerCuts = 0;    ///< power cuts delivered
    std::uint64_t tornPages = 0;    ///< pages left torn by cuts/failures
};

/**
 * The decision engine. Attach with FlashDevice::attachFaultInjector /
 * DiskModel::attachFaultInjector; detach (or clearPowerLoss) before
 * driving recovery so the rebuilt stack sees a quiet medium.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan& plan);

    /**
     * Called at the top of every flash operation (read, program,
     * erase). Throws PowerLossException for a scheduled clean cut;
     * panics if the device is driven after a cut (a harness bug —
     * nothing runs between power loss and reboot).
     */
    void opStart();

    /** Decide the fate of the current page program. */
    ProgramFault onProgram();

    /** @return true when the current block erase must fail. */
    bool onErase();

    /** @return extra transient bit errors for the current page read. */
    unsigned onRead();

    /** @return true when this disk access attempt hits a latent-sector
     *  error (consulted once per attempt, retries included). */
    bool onDiskAttempt();

    unsigned diskMaxRetries() const { return plan_.diskMaxRetries; }

    /**
     * Bytes of the in-flight payload persisted before a cut or status
     * failure; always < total so the page's CRCs cannot hold.
     */
    std::size_t tornBytes(std::size_t total);

    /** Record that a torn page reached the medium. */
    void noteTornPage() { ++stats_.tornPages; }

    /** @return true after a power cut until clearPowerLoss(). */
    bool powerLost() const { return powerLost_; }

    /** "Reboot": accept operations again. Medium state is untouched. */
    void clearPowerLoss() { powerLost_ = false; }

    const FaultStats& stats() const { return stats_; }
    const FaultPlan& plan() const { return plan_; }

    /** Register the `fault.*` counters. */
    void registerMetrics(obs::MetricRegistry& reg) const;

  private:
    [[noreturn]] void deliverPowerCut();

    FaultPlan plan_;
    Rng rng_;
    FaultStats stats_;
    std::uint64_t ops_ = 0;      ///< all flash ops
    std::uint64_t programs_ = 0; ///< page programs
    std::uint64_t erases_ = 0;   ///< block erases
    bool powerLost_ = false;
};

} // namespace flashcache

#endif // FLASHCACHE_FAULT_FAULT_INJECTOR_HH
