/**
 * @file
 * FaultInjector decision engine (see fault_injector.hh).
 */

#include "fault/fault_injector.hh"

#include "util/log.hh"

namespace flashcache {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed)
{
    if (plan_.programFailRate < 0.0 || plan_.programFailRate > 1.0 ||
        plan_.eraseFailRate < 0.0 || plan_.eraseFailRate > 1.0 ||
        plan_.readFaultRate < 0.0 || plan_.readFaultRate > 1.0 ||
        plan_.diskFaultRate < 0.0 || plan_.diskFaultRate > 1.0)
        fatal("fault plan rates must lie in [0, 1]");
}

void
FaultInjector::deliverPowerCut()
{
    powerLost_ = true;
    ++stats_.powerCuts;
    throw PowerLossException{ops_};
}

void
FaultInjector::opStart()
{
    if (powerLost_)
        panic("flash operation issued after power loss");
    ++ops_;
    if (plan_.powerCutAtOp != 0 && ops_ == plan_.powerCutAtOp)
        deliverPowerCut();
}

ProgramFault
FaultInjector::onProgram()
{
    ++programs_;
    if (plan_.powerCutAtProgram != 0 && programs_ == plan_.powerCutAtProgram) {
        // Counted here; the device persists the torn prefix and then
        // rethrows power loss via deliverPowerCut() semantics below.
        powerLost_ = true;
        ++stats_.powerCuts;
        return ProgramFault::PowerCut;
    }
    if (plan_.programFailAt != 0 && programs_ == plan_.programFailAt) {
        ++stats_.programFails;
        return ProgramFault::StatusFail;
    }
    if (plan_.programFailRate > 0.0 && rng_.bernoulli(plan_.programFailRate)) {
        ++stats_.programFails;
        return ProgramFault::StatusFail;
    }
    return ProgramFault::None;
}

bool
FaultInjector::onErase()
{
    ++erases_;
    if (plan_.eraseFailAt != 0 && erases_ == plan_.eraseFailAt) {
        ++stats_.eraseFails;
        return true;
    }
    if (plan_.eraseFailRate > 0.0 && rng_.bernoulli(plan_.eraseFailRate)) {
        ++stats_.eraseFails;
        return true;
    }
    return false;
}

unsigned
FaultInjector::onRead()
{
    if (plan_.readFaultRate <= 0.0 || !rng_.bernoulli(plan_.readFaultRate))
        return 0;
    const unsigned bits =
        1 + static_cast<unsigned>(
                rng_.uniformInt(plan_.readFaultBits > 0 ? plan_.readFaultBits
                                                        : 1));
    ++stats_.readFaults;
    stats_.readFaultBits += bits;
    return bits;
}

bool
FaultInjector::onDiskAttempt()
{
    if (plan_.diskFaultRate <= 0.0 || !rng_.bernoulli(plan_.diskFaultRate))
        return false;
    ++stats_.diskFaults;
    return true;
}

std::size_t
FaultInjector::tornBytes(std::size_t total)
{
    if (total == 0)
        return 0;
    double f = plan_.tornFraction;
    if (f < 0.0)
        f = rng_.uniform();
    if (f >= 1.0)
        f = 1.0;
    std::size_t n = static_cast<std::size_t>(f * static_cast<double>(total));
    // A torn page must be detectably incomplete: persist strictly
    // fewer bytes than the full payload.
    if (n >= total)
        n = total - 1;
    return n;
}

void
FaultInjector::registerMetrics(obs::MetricRegistry& reg) const
{
    reg.counter("fault.program_fails", "injected program-status failures",
                &stats_.programFails);
    reg.counter("fault.erase_fails", "injected erase failures",
                &stats_.eraseFails);
    reg.counter("fault.read_faults", "injected transient read events",
                &stats_.readFaults);
    reg.counter("fault.read_fault_bits",
                "total extra bit errors injected into reads",
                &stats_.readFaultBits);
    reg.counter("fault.disk_faults",
                "injected disk latent-sector errors (per attempt)",
                &stats_.diskFaults);
    reg.counter("fault.power_cuts", "power cuts delivered",
                &stats_.powerCuts);
    reg.counter("fault.torn_pages", "pages left torn on the medium",
                &stats_.tornPages);
}

} // namespace flashcache
