/**
 * @file
 * GF(2^m) finite-field arithmetic via log/antilog tables.
 *
 * The BCH codec in the flash memory controller (paper section 4.1)
 * works over GF(2^15): natural code length n = 2^15 - 1 = 32767 bits
 * covers a shortened 2 KB (16384-bit) flash page, and each corrected
 * error costs m = 15 parity bits, so t = 12 needs 180 bits = 22.5
 * bytes — the paper's "maximum of 23 bytes ... of check bits".
 */

#ifndef FLASHCACHE_GF_GF2M_HH
#define FLASHCACHE_GF_GF2M_HH

#include <cstdint>
#include <vector>

namespace flashcache {

/**
 * The field GF(2^m), 2 <= m <= 16, with table-driven multiply/divide.
 *
 * Elements are integers in [0, 2^m). Addition is XOR. alpha (the
 * element 2) is primitive: alpha^i for i in [0, 2^m-2) enumerates the
 * multiplicative group.
 */
class GaloisField
{
  public:
    using Elem = std::uint32_t;

    /**
     * Build the field from a primitive polynomial.
     *
     * @param m    Field degree.
     * @param poly Primitive polynomial as a bit mask including the
     *             x^m term; 0 selects a built-in default for m.
     */
    explicit GaloisField(unsigned m, std::uint32_t poly = 0);

    unsigned m() const { return m_; }

    /** Field size 2^m. */
    Elem size() const { return q_; }

    /** Multiplicative group order 2^m - 1. */
    Elem groupOrder() const { return q_ - 1; }

    /** The primitive polynomial used to build the field. */
    std::uint32_t primitivePoly() const { return poly_; }

    /** Addition (= subtraction) in characteristic 2. */
    static Elem add(Elem a, Elem b) { return a ^ b; }

    /** Multiply two field elements. */
    Elem
    mul(Elem a, Elem b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[log_[a] + log_[b]];
    }

    /** Multiplicative inverse. @pre a != 0 */
    Elem inv(Elem a) const;

    /** a / b. @pre b != 0 */
    Elem div(Elem a, Elem b) const;

    /** a^e with e reduced mod the group order; 0^0 == 1. */
    Elem pow(Elem a, std::int64_t e) const;

    /** alpha^e (alpha is the primitive element 2). */
    Elem
    alphaPow(std::int64_t e) const
    {
        const std::int64_t n = groupOrder();
        std::int64_t r = e % n;
        if (r < 0)
            r += n;
        return exp_[static_cast<std::size_t>(r)];
    }

    /** Discrete log base alpha. @pre a != 0 */
    unsigned
    logAlpha(Elem a) const
    {
        return log_[a];
    }

    /**
     * alpha^e for an already-nonnegative exponent e < 2*(2^m - 1).
     *
     * The exp table is doubled, so the sum of two discrete logs can
     * be looked up directly without a modulo — this is the inner-loop
     * primitive of the byte-wise BCH syndrome and Chien paths.
     */
    Elem
    alphaPowUnreduced(std::uint32_t e) const
    {
        return exp_[e];
    }

    /** a^2 via the Frobenius map (one table lookup). */
    Elem
    square(Elem a) const
    {
        if (a == 0)
            return 0;
        return exp_[2u * log_[a]];
    }

  private:
    unsigned m_;
    Elem q_;
    std::uint32_t poly_;
    std::vector<Elem> exp_; ///< alpha^i, doubled to skip a mod.
    std::vector<unsigned> log_;
};

/** Built-in primitive polynomial for degree m (2 <= m <= 16). */
std::uint32_t defaultPrimitivePoly(unsigned m);

} // namespace flashcache

#endif // FLASHCACHE_GF_GF2M_HH
