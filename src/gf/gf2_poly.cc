#include "gf/gf2_poly.hh"

#include <algorithm>
#include <sstream>

#include "gf/gf2m.hh"
#include "gf/gf_poly.hh"
#include "util/log.hh"

namespace flashcache {

Gf2Poly
Gf2Poly::monomial(std::size_t deg)
{
    Gf2Poly p;
    p.setCoeff(deg, true);
    return p;
}

Gf2Poly
Gf2Poly::fromCoeffs(const std::vector<int>& coeffs)
{
    Gf2Poly p;
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        if (coeffs[i])
            p.setCoeff(i, true);
    return p;
}

Gf2Poly
Gf2Poly::fromMask(std::uint64_t mask)
{
    Gf2Poly p;
    for (std::size_t i = 0; i < 64; ++i)
        if (mask & (1ull << i))
            p.setCoeff(i, true);
    return p;
}

void
Gf2Poly::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

long
Gf2Poly::degree() const
{
    if (words_.empty())
        return -1;
    const std::uint64_t top = words_.back();
    return static_cast<long>((words_.size() - 1) * 64 +
                             (63 - __builtin_clzll(top)));
}

bool
Gf2Poly::coeff(std::size_t i) const
{
    const std::size_t w = i / 64;
    if (w >= words_.size())
        return false;
    return (words_[w] >> (i % 64)) & 1;
}

void
Gf2Poly::setCoeff(std::size_t i, bool v)
{
    const std::size_t w = i / 64;
    if (w >= words_.size()) {
        if (!v)
            return;
        words_.resize(w + 1, 0);
    }
    if (v)
        words_[w] |= (1ull << (i % 64));
    else
        words_[w] &= ~(1ull << (i % 64));
    trim();
}

Gf2Poly
Gf2Poly::operator+(const Gf2Poly& o) const
{
    Gf2Poly r;
    r.words_.resize(std::max(words_.size(), o.words_.size()), 0);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
        std::uint64_t w = 0;
        if (i < words_.size())
            w ^= words_[i];
        if (i < o.words_.size())
            w ^= o.words_[i];
        r.words_[i] = w;
    }
    r.trim();
    return r;
}

Gf2Poly
Gf2Poly::operator*(const Gf2Poly& o) const
{
    Gf2Poly r;
    if (isZero() || o.isZero())
        return r;
    const long dr = degree() + o.degree();
    r.words_.resize(static_cast<std::size_t>(dr) / 64 + 1, 0);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t w = words_[i];
        while (w) {
            const int b = __builtin_ctzll(w);
            w &= w - 1;
            const std::size_t shift = i * 64 + static_cast<std::size_t>(b);
            // r ^= o << shift
            const std::size_t ws = shift / 64;
            const unsigned bs = shift % 64;
            for (std::size_t j = 0; j < o.words_.size(); ++j) {
                r.words_[ws + j] ^= o.words_[j] << bs;
                if (bs && ws + j + 1 < r.words_.size())
                    r.words_[ws + j + 1] ^= o.words_[j] >> (64 - bs);
            }
        }
    }
    r.trim();
    return r;
}

Gf2Poly
Gf2Poly::mod(const Gf2Poly& divisor) const
{
    if (divisor.isZero())
        panic("Gf2Poly division by zero polynomial");
    Gf2Poly r = *this;
    const long dd = divisor.degree();
    if (r.degree() < dd)
        return r;

    // Word-scan long division: walk the dividend's words from the
    // top, clearing each set bit of degree >= dd with one aligned
    // XOR of the divisor. The shifted divisor's top bit lands exactly
    // on the bit being cleared, so it never touches a higher word and
    // the buffer never needs to grow; unlike the bit-serial loop this
    // does no degree()/trim()/resize work per step.
    const std::size_t dwords = divisor.words_.size();
    for (std::size_t w = r.words_.size(); w-- > 0;) {
        for (;;) {
            const std::uint64_t word = r.words_[w];
            if (!word)
                break;
            const int b = 63 - __builtin_clzll(word);
            const long deg = static_cast<long>(w * 64 + b);
            if (deg < dd)
                break;
            const std::size_t shift = static_cast<std::size_t>(deg - dd);
            const std::size_t ws = shift / 64;
            const unsigned bs = shift % 64;
            for (std::size_t j = 0; j < dwords; ++j) {
                r.words_[ws + j] ^= divisor.words_[j] << bs;
                if (bs && ws + j + 1 < r.words_.size())
                    r.words_[ws + j + 1] ^= divisor.words_[j] >> (64 - bs);
            }
        }
    }
    r.trim();
    return r;
}

std::uint32_t
Gf2Poly::eval(const GaloisField& gf, std::uint32_t beta) const
{
    // Sum beta^i over set coefficients, exploiting alpha-log stride.
    std::uint32_t acc = 0;
    if (beta == 0)
        return coeff(0) ? 1 : 0;
    const std::int64_t lb = gf.logAlpha(beta);
    const long d = degree();
    for (long i = 0; i <= d; ++i) {
        if (coeff(static_cast<std::size_t>(i)))
            acc ^= gf.alphaPow(lb * i);
    }
    return acc;
}

std::string
Gf2Poly::toString() const
{
    if (isZero())
        return "0";
    std::ostringstream os;
    bool first = true;
    for (long i = degree(); i >= 0; --i) {
        if (!coeff(static_cast<std::size_t>(i)))
            continue;
        if (!first)
            os << " + ";
        first = false;
        if (i == 0)
            os << "1";
        else if (i == 1)
            os << "x";
        else
            os << "x^" << i;
    }
    return os.str();
}

Gf2Poly
minimalPolynomial(const GaloisField& gf, std::uint32_t power)
{
    // Collect the conjugacy class {power * 2^j mod (2^m - 1)}.
    const std::uint64_t n = gf.groupOrder();
    std::vector<std::uint64_t> cls;
    std::uint64_t e = power % n;
    do {
        cls.push_back(e);
        e = (e * 2) % n;
    } while (e != power % n);

    // Product of (x + alpha^e) over the class, with coefficients in
    // GF(2^m); the result is guaranteed to collapse to {0,1} coeffs.
    GfPoly prod(gf, {1});
    for (std::uint64_t ee : cls) {
        GfPoly factor(gf, {gf.alphaPow(static_cast<std::int64_t>(ee)), 1});
        prod = prod * factor;
    }

    Gf2Poly out;
    for (std::size_t i = 0; i <= static_cast<std::size_t>(prod.degree());
         ++i) {
        const std::uint32_t c = prod.coeff(i);
        if (c > 1)
            panic("minimal polynomial has non-binary coefficient");
        if (c)
            out.setCoeff(i, true);
    }
    return out;
}

} // namespace flashcache
