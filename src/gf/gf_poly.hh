/**
 * @file
 * Polynomials with coefficients in GF(2^m).
 *
 * The BCH decoder manipulates these: the error-locator polynomial
 * found by Berlekamp-Massey and its formal derivative used by the
 * Chien search / Forney stage.
 */

#ifndef FLASHCACHE_GF_GF_POLY_HH
#define FLASHCACHE_GF_GF_POLY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gf/gf2m.hh"

namespace flashcache {

/**
 * Dense polynomial over GF(2^m), low-order coefficient first.
 *
 * Holds a reference to its field; all operands of a binary operation
 * must share the field.
 */
class GfPoly
{
  public:
    using Elem = GaloisField::Elem;

    /** The zero polynomial over gf. */
    explicit GfPoly(const GaloisField& gf);

    /** From explicit coefficients, low order first. */
    GfPoly(const GaloisField& gf, std::vector<Elem> coeffs);

    const GaloisField& field() const { return *gf_; }

    /** Degree; -1 for the zero polynomial. */
    long degree() const;

    bool isZero() const { return degree() < 0; }

    /** Coefficient of x^i (0 beyond the stored degree). */
    Elem coeff(std::size_t i) const;

    /** Set coefficient of x^i, growing storage as needed. */
    void setCoeff(std::size_t i, Elem v);

    GfPoly operator+(const GfPoly& o) const;
    GfPoly operator*(const GfPoly& o) const;

    /** Multiply every coefficient by the scalar s. */
    GfPoly scale(Elem s) const;

    /** Multiply by x^k. */
    GfPoly shift(std::size_t k) const;

    /** Evaluate at beta by Horner's rule. */
    Elem eval(Elem beta) const;

    /**
     * Formal derivative; in characteristic 2 the even-power terms
     * vanish and odd powers copy down.
     */
    GfPoly derivative() const;

    bool operator==(const GfPoly& o) const { return coeffs_ == o.coeffs_; }

    /** Render as e.g. "3*x^2 + 1". */
    std::string toString() const;

  private:
    void trim();

    const GaloisField* gf_;
    std::vector<Elem> coeffs_;
};

} // namespace flashcache

#endif // FLASHCACHE_GF_GF_POLY_HH
