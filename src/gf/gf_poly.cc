#include "gf/gf_poly.hh"

#include <sstream>

#include "util/log.hh"

namespace flashcache {

GfPoly::GfPoly(const GaloisField& gf)
    : gf_(&gf)
{
}

GfPoly::GfPoly(const GaloisField& gf, std::vector<Elem> coeffs)
    : gf_(&gf), coeffs_(std::move(coeffs))
{
    trim();
}

void
GfPoly::trim()
{
    while (!coeffs_.empty() && coeffs_.back() == 0)
        coeffs_.pop_back();
}

long
GfPoly::degree() const
{
    return static_cast<long>(coeffs_.size()) - 1;
}

GfPoly::Elem
GfPoly::coeff(std::size_t i) const
{
    return i < coeffs_.size() ? coeffs_[i] : 0;
}

void
GfPoly::setCoeff(std::size_t i, Elem v)
{
    if (i >= coeffs_.size()) {
        if (v == 0)
            return;
        coeffs_.resize(i + 1, 0);
    }
    coeffs_[i] = v;
    trim();
}

GfPoly
GfPoly::operator+(const GfPoly& o) const
{
    if (gf_ != o.gf_)
        panic("GfPoly operands from different fields");
    std::vector<Elem> out(std::max(coeffs_.size(), o.coeffs_.size()), 0);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = GaloisField::add(coeff(i), o.coeff(i));
    return GfPoly(*gf_, std::move(out));
}

GfPoly
GfPoly::operator*(const GfPoly& o) const
{
    if (gf_ != o.gf_)
        panic("GfPoly operands from different fields");
    if (isZero() || o.isZero())
        return GfPoly(*gf_);
    std::vector<Elem> out(coeffs_.size() + o.coeffs_.size() - 1, 0);
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
        if (coeffs_[i] == 0)
            continue;
        for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
            if (o.coeffs_[j] == 0)
                continue;
            out[i + j] ^= gf_->mul(coeffs_[i], o.coeffs_[j]);
        }
    }
    return GfPoly(*gf_, std::move(out));
}

GfPoly
GfPoly::scale(Elem s) const
{
    std::vector<Elem> out(coeffs_.size());
    for (std::size_t i = 0; i < coeffs_.size(); ++i)
        out[i] = gf_->mul(coeffs_[i], s);
    return GfPoly(*gf_, std::move(out));
}

GfPoly
GfPoly::shift(std::size_t k) const
{
    if (isZero())
        return GfPoly(*gf_);
    std::vector<Elem> out(coeffs_.size() + k, 0);
    for (std::size_t i = 0; i < coeffs_.size(); ++i)
        out[i + k] = coeffs_[i];
    return GfPoly(*gf_, std::move(out));
}

GfPoly::Elem
GfPoly::eval(Elem beta) const
{
    Elem acc = 0;
    for (std::size_t i = coeffs_.size(); i-- > 0;)
        acc = GaloisField::add(gf_->mul(acc, beta), coeffs_[i]);
    return acc;
}

GfPoly
GfPoly::derivative() const
{
    if (coeffs_.size() <= 1)
        return GfPoly(*gf_);
    std::vector<Elem> out(coeffs_.size() - 1, 0);
    for (std::size_t i = 1; i < coeffs_.size(); i += 2)
        out[i - 1] = coeffs_[i];
    return GfPoly(*gf_, std::move(out));
}

std::string
GfPoly::toString() const
{
    if (isZero())
        return "0";
    std::ostringstream os;
    bool first = true;
    for (long i = degree(); i >= 0; --i) {
        const Elem c = coeff(static_cast<std::size_t>(i));
        if (c == 0)
            continue;
        if (!first)
            os << " + ";
        first = false;
        if (i == 0) {
            os << c;
        } else {
            if (c != 1)
                os << c << "*";
            os << "x";
            if (i > 1)
                os << "^" << i;
        }
    }
    return os.str();
}

} // namespace flashcache
