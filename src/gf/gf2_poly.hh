/**
 * @file
 * Polynomials over GF(2), stored as bit vectors.
 *
 * Used to build the BCH generator polynomial: the LCM of the minimal
 * polynomials of alpha, alpha^3, ..., alpha^(2t-1), and to run the
 * encoder's polynomial division (systematic encoding computes
 * data(x) * x^(n-k) mod g(x)).
 */

#ifndef FLASHCACHE_GF_GF2_POLY_HH
#define FLASHCACHE_GF_GF2_POLY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flashcache {

class GaloisField;

/**
 * A polynomial over GF(2); coefficient i lives in bit (i % 64) of
 * word (i / 64).
 */
class Gf2Poly
{
  public:
    /** The zero polynomial. */
    Gf2Poly() = default;

    /** Monomial x^deg (or zero when bit set to false). */
    static Gf2Poly monomial(std::size_t deg);

    /** Build from low-order-first coefficient bits. */
    static Gf2Poly fromCoeffs(const std::vector<int>& coeffs);

    /** Build from a mask: bit i of the integer is coefficient i. */
    static Gf2Poly fromMask(std::uint64_t mask);

    bool isZero() const { return words_.empty(); }

    /** Degree; -1 for the zero polynomial. */
    long degree() const;

    /** Coefficient of x^i. */
    bool coeff(std::size_t i) const;

    /** Set coefficient of x^i. */
    void setCoeff(std::size_t i, bool v);

    /** Polynomial addition (XOR). */
    Gf2Poly operator+(const Gf2Poly& o) const;

    /** Polynomial multiplication. */
    Gf2Poly operator*(const Gf2Poly& o) const;

    /** Remainder of this / divisor. @pre !divisor.isZero() */
    Gf2Poly mod(const Gf2Poly& divisor) const;

    bool operator==(const Gf2Poly& o) const { return words_ == o.words_; }

    /**
     * Evaluate at a point of GF(2^m): sum of beta^i over set
     * coefficients i.
     */
    std::uint32_t eval(const GaloisField& gf, std::uint32_t beta) const;

    /** Render as e.g. "x^4 + x + 1". */
    std::string toString() const;

  private:
    void trim();

    std::vector<std::uint64_t> words_;
};

/**
 * Minimal polynomial over GF(2) of gf's element alpha^power.
 *
 * Computed as the product over the conjugacy class
 * {alpha^(power * 2^j)} of (x - root).
 */
Gf2Poly minimalPolynomial(const GaloisField& gf, std::uint32_t power);

} // namespace flashcache

#endif // FLASHCACHE_GF_GF2_POLY_HH
