#include "gf/gf2m.hh"

#include <sstream>

#include "util/log.hh"

namespace flashcache {

std::uint32_t
defaultPrimitivePoly(unsigned m)
{
    // Standard primitive polynomials (Lin & Costello, appendix B).
    switch (m) {
      case 2: return 0x7;          // x^2 + x + 1
      case 3: return 0xB;          // x^3 + x + 1
      case 4: return 0x13;         // x^4 + x + 1
      case 5: return 0x25;         // x^5 + x^2 + 1
      case 6: return 0x43;         // x^6 + x + 1
      case 7: return 0x89;         // x^7 + x^3 + 1
      case 8: return 0x11D;        // x^8 + x^4 + x^3 + x^2 + 1
      case 9: return 0x211;        // x^9 + x^4 + 1
      case 10: return 0x409;       // x^10 + x^3 + 1
      case 11: return 0x805;       // x^11 + x^2 + 1
      case 12: return 0x1053;      // x^12 + x^6 + x^4 + x + 1
      case 13: return 0x201B;      // x^13 + x^4 + x^3 + x + 1
      case 14: return 0x4443;      // x^14 + x^10 + x^6 + x + 1
      case 15: return 0x8003;      // x^15 + x + 1
      case 16: return 0x1100B;     // x^16 + x^12 + x^3 + x + 1
      default:
        fatal("no default primitive polynomial for m");
    }
}

GaloisField::GaloisField(unsigned m, std::uint32_t poly)
    : m_(m), q_(1u << m), poly_(poly ? poly : defaultPrimitivePoly(m))
{
    if (m < 2 || m > 16)
        fatal("GaloisField degree out of range [2,16]");

    const Elem n = groupOrder();
    exp_.resize(2 * n);
    log_.assign(q_, 0);

    Elem x = 1;
    for (Elem i = 0; i < n; ++i) {
        exp_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x & q_)
            x ^= poly_;
    }
    if (x != 1) {
        std::ostringstream os;
        os << "polynomial 0x" << std::hex << poly_
           << " is not primitive for GF(2^" << std::dec << m << ")";
        fatal(os.str());
    }
    for (Elem i = 0; i < n; ++i)
        exp_[n + i] = exp_[i];
}

GaloisField::Elem
GaloisField::inv(Elem a) const
{
    if (a == 0)
        panic("inverse of zero in GF(2^m)");
    return exp_[groupOrder() - log_[a]];
}

GaloisField::Elem
GaloisField::div(Elem a, Elem b) const
{
    if (b == 0)
        panic("division by zero in GF(2^m)");
    if (a == 0)
        return 0;
    return exp_[log_[a] + groupOrder() - log_[b]];
}

GaloisField::Elem
GaloisField::pow(Elem a, std::int64_t e) const
{
    if (a == 0) {
        if (e == 0)
            return 1;
        if (e < 0)
            panic("negative power of zero in GF(2^m)");
        return 0;
    }
    const std::int64_t n = groupOrder();
    std::int64_t le = (static_cast<std::int64_t>(log_[a]) * (e % n)) % n;
    if (le < 0)
        le += n;
    return exp_[static_cast<std::size_t>(le)];
}

} // namespace flashcache
