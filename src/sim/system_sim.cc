#include "sim/system_sim.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/trace.hh"
#include "util/atomic_file.hh"
#include "util/log.hh"

namespace flashcache {

namespace {

/** Adapts the DiskModel to the cache core's BackingStore interface. */
class DiskBackingStore : public BackingStore
{
  public:
    explicit DiskBackingStore(DiskModel& disk)
        : disk_(&disk)
    {
    }

    Seconds
    read(Lba lba) override
    {
        return disk_->access(lba, false);
    }

    Seconds
    write(Lba lba) override
    {
        return disk_->access(lba, false);
    }

    Seconds
    read(Lba lba, bool& failed) override
    {
        const auto res = disk_->accessChecked(lba, false);
        failed = res.failed;
        return res.latency;
    }

    Seconds
    write(Lba lba, bool& failed) override
    {
        const auto res = disk_->accessChecked(lba, false);
        failed = res.failed;
        return res.latency;
    }

  private:
    DiskModel* disk_;
};

} // namespace

SystemSimulator::SystemSimulator(const SystemConfig& config)
    : config_(config), dram_(config.dramBytes, config.dramSpec),
      disk_(config.diskSpec, config.seed * 7919 + 1), rng_(config.seed)
{
    pdcCapacityPages_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(config.pdcFraction *
                                   static_cast<double>(config.dramBytes))
            / config.pageBytes, 16);
    // The OS lets dirty pages accumulate to a fraction of the page
    // cache before the flusher drains the coldest ones.
    pdcDirtyLimit_ = std::max<std::uint64_t>(config.writebackBatch,
                                             pdcCapacityPages_ / 8);
    // Pre-size the PDC LRUs (one extra entry: fills touch before the
    // capacity check evicts) so steady-state serving never allocates.
    pdcLru_.reserve(pdcCapacityPages_ + 1);
    pdcDirtyLru_.reserve(pdcDirtyLimit_ + config.writebackBatch);

    if (config.faultPlan) {
        fault_ = std::make_unique<FaultInjector>(*config.faultPlan);
        disk_.attachFaultInjector(fault_.get());
    }

    if (config.flashBytes > 0) {
        lifetime_ = std::make_unique<CellLifetimeModel>(config.wear);
        auto geom = FlashGeometry::forMlcCapacity(config.flashBytes);
        geom.numChannels = std::max(1u, config.flashChannels);
        flash_ = std::make_unique<FlashDevice>(geom, config.flashTiming,
                                               *lifetime_,
                                               config.seed * 31 + 5);
        if (fault_)
            flash_->attachFaultInjector(fault_.get());
        controller_ = std::make_unique<FlashMemoryController>(*flash_);
        diskStore_ = std::make_unique<DiskBackingStore>(disk_);

        FlashCacheConfig fc = config.flashConfig;
        if (config.uniformEccStrength) {
            // Figure 10 mode: every page at one fixed strength.
            fc.initialEccStrength = *config.uniformEccStrength;
            fc.maxEccStrength = *config.uniformEccStrength;
            fc.adaptiveReconfig = false;
            fc.hotPageMigration = false;
        }
        cache_ = std::make_unique<FlashCache>(*controller_, *diskStore_,
                                              fc);
    }

    // Every device model below the PDC records its service demands
    // into the shared sink; the closed loop replays them through
    // per-resource queues to produce the event-driven wall clock.
    dram_.attachDemandSink(&sink_);
    disk_.attachDemandSink(&sink_);
    if (cache_) {
        flash_->attachDemandSink(&sink_);
        controller_->attachDemandSink(&sink_);
        cache_->setDemandSink(&sink_);
    }
    sched::SchedConfig sc;
    sc.clients = config.clients ? config.clients : config.cores;
    sc.flashChannels = std::max(1u, config.flashChannels);
    sc.eccUnits = config.eccUnits;
    sc.dramPorts = std::max(1u, config.dramPorts);
    sched_ = std::make_unique<sched::ClosedLoop>(sc, sink_);

    registerAllMetrics();
}

SystemSimulator::~SystemSimulator() = default;

void
SystemSimulator::registerAllMetrics()
{
    registry_.counter("system.requests", "requests served",
                      &stats_.requests);
    registry_.counter("system.wall_clock", "simulated seconds",
                      &stats_.wallClock);
    registry_.gauge("system.throughput", "requests per second",
                    [this] { return stats_.throughput(); });
    registry_.histogram("system.request_latency",
                        "per-request latency (s)",
                        &stats_.requestLatency);
    registry_.gauge("system.analytic_wall_clock",
                    "retired serial-approximation wall clock (s)",
                    [this] { return analyticWall_; });

    registry_.ratio("pdc.read", "primary disk cache reads",
                    &stats_.pdcReads);
    registry_.counter("pdc.writebacks",
                      "dirty pages written below the PDC",
                      &stats_.writebacks);

    dram_.registerMetrics(registry_);
    disk_.registerMetrics(registry_);

    if (cache_) {
        flash_->registerMetrics(registry_);
        cache_->registerMetrics(registry_);
        controller_->registerMetrics(registry_);
    }
    if (fault_)
        fault_->registerMetrics(registry_);

    sched_->registerMetrics(registry_);

    registry_.gauge("power.mem_read", "W",
                    [this] { return powerReport().memRead; });
    registry_.gauge("power.mem_write", "W",
                    [this] { return powerReport().memWrite; });
    registry_.gauge("power.mem_idle", "W",
                    [this] { return powerReport().memIdle; });
    registry_.gauge("power.flash", "W",
                    [this] { return powerReport().flash; });
    registry_.gauge("power.disk", "W",
                    [this] { return powerReport().disk; });
    registry_.gauge("power.total", "W",
                    [this] { return powerReport().total(); });
}

void
SystemSimulator::enableTracing(std::size_t capacity)
{
    tracer_ = std::make_unique<obs::Tracer>(capacity);
    if (cache_)
        cache_->setTracer(tracer_.get());
}

Seconds
SystemSimulator::readBelow(Lba lba)
{
    if (cache_)
        return cache_->read(lba).latency;
    const Seconds lat = disk_.access(lba, false);
    FC_LEAF(tracer_.get(), "disk.access", "disk", lat);
    return lat;
}

Seconds
SystemSimulator::writeBelow(Lba lba)
{
    if (cache_) {
        return cache_->write(lba).latency;
    }
    const Seconds lat = disk_.access(lba, false);
    FC_LEAF(tracer_.get(), "disk.access", "disk", lat);
    return lat;
}

void
SystemSimulator::evictPdcPage()
{
    const Lba victim = pdcLru_.popLru();
    if (pdcDirtyLru_.erase(victim)) {
        // Background write-back; does not delay the foreground
        // request, but occupies the lower levels.
        FC_SPAN(tracer_.get(), "pdc.evict_writeback", "pdc");
        const sched::BackgroundScope bg(&sink_);
        writeBelow(victim);
        ++stats_.writebacks;
    }
}

Seconds
SystemSimulator::serve(const TraceRecord& r, Seconds& compute)
{
    FC_SPAN(tracer_.get(), "request", "sim");
    compute = rng_.exponential(1.0 / config_.computeTime);
    FC_LEAF(tracer_.get(), "cpu.compute", "cpu", compute);
    computeTotal_ += compute;
    Seconds storage = 0.0;

    if (!r.isWrite) {
        if (pdcLru_.contains(r.lba)) {
            pdcLru_.touch(r.lba);
            storage = dram_.read(config_.pageBytes);
            FC_LEAF(tracer_.get(), "dram.read", "dram", storage);
            stats_.pdcReads.hit();
        } else {
            stats_.pdcReads.miss();
            FC_INSTANT(tracer_.get(), "pdc.miss", "pdc");
            while (pdcLru_.size() >= pdcCapacityPages_)
                evictPdcPage();
            const Seconds below = readBelow(r.lba);
            const Seconds fill = dram_.write(config_.pageBytes);
            FC_LEAF(tracer_.get(), "dram.write", "dram", fill);
            storage = below + fill;
            pdcLru_.touch(r.lba);
        }
    } else {
        // Writes complete at DRAM speed; dirty data drains later.
        storage = dram_.write(config_.pageBytes);
        FC_LEAF(tracer_.get(), "dram.write", "dram", storage);
        if (!pdcLru_.contains(r.lba)) {
            while (pdcLru_.size() >= pdcCapacityPages_)
                evictPdcPage();
        }
        pdcLru_.touch(r.lba);
        pdcDirtyLru_.touch(r.lba);
        // Periodic write-back (section 5.1): once enough dirty pages
        // accumulate, the flusher drains the coldest ones in batches.
        if (pdcDirtyLru_.size() >= pdcDirtyLimit_) {
            FC_SPAN(tracer_.get(), "pdc.flush_batch", "pdc");
            const sched::BackgroundScope bg(&sink_);
            for (unsigned i = 0;
                 i < config_.writebackBatch && !pdcDirtyLru_.empty();
                 ++i) {
                writeBelow(pdcDirtyLru_.popLru());
                ++stats_.writebacks;
            }
        }
    }

    latencyTotal_ += storage;
    return storage;
}

void
SystemSimulator::runLoop(const std::function<bool(TraceRecord&)>& next)
{
    const auto source = [&](Seconds& compute) {
        TraceRecord r;
        if (!next(r))
            return false;
        serve(r, compute);
        ++stats_.requests;
        return true;
    };
    const auto done = [this](Seconds compute, Seconds issue,
                             Seconds completion) {
        // Storage latency as observed: service plus queueing delay.
        stats_.requestLatency.add(compute + (completion - issue));
    };
    sched_->run(source, done);
    finishRun();
}

void
SystemSimulator::run(WorkloadGenerator& workload, std::uint64_t n)
{
    std::uint64_t issued = 0;
    runLoop([&](TraceRecord& r) {
        if (issued >= n)
            return false;
        ++issued;
        r = workload.next(rng_);
        return true;
    });
}

void
SystemSimulator::run(const Trace& trace)
{
    auto it = trace.begin();
    runLoop([&](TraceRecord& r) {
        if (it == trace.end())
            return false;
        r = *it++;
        return true;
    });
}

void
SystemSimulator::finishRun()
{
    // Retired serial approximation, kept alongside the event clock
    // for comparison: perfectly pipelined streams bounded below by
    // each device's busy time, with the flash array and the ECC
    // engine treated as one serial path.
    const auto streams = static_cast<double>(
        config_.clients ? config_.clients : config_.cores);
    Seconds wall = (computeTotal_ + latencyTotal_) / streams;
    wall = std::max(wall, disk_.busyTime());
    if (flash_) {
        wall = std::max(wall, flash_->stats().busyTime +
                              controller_->stats().eccTime);
    }
    wall = std::max(wall, dram_.readBusyTime() + dram_.writeBusyTime());
    analyticWall_ = wall;

    // Authoritative wall clock: the scheduler's virtual time after
    // the last event (foreground completions plus background runoff).
    stats_.wallClock = sched_->wallClock();
}

PowerReport
SystemSimulator::powerReport() const
{
    PowerReport p;
    const Seconds wall = stats_.wallClock;
    if (wall <= 0.0)
        return p;
    const DramEnergy de = dram_.energyOver(wall);
    p.memRead = de.read / wall;
    p.memWrite = de.write / wall;
    p.memIdle = de.idle / wall;
    if (flash_)
        p.flash = flash_->energyOver(wall) / wall;
    p.disk = disk_.energyOver(wall) / wall;
    return p;
}


bool
SystemSimulator::saveFlashState(const std::string& prefix) const
{
    if (!cache_)
        fatal("saveFlashState requires a flash cache");
    return atomicWriteFile(prefix + ".dev",
                           [this](std::ostream& os) {
                               flash_->saveState(os);
                           }) &&
        atomicWriteFile(prefix + ".cache", [this](std::ostream& os) {
            cache_->saveState(os);
        });
}

bool
SystemSimulator::loadFlashState(const std::string& prefix)
{
    if (!cache_)
        fatal("loadFlashState requires a flash cache");
    std::ifstream dev(prefix + ".dev", std::ios::binary);
    std::ifstream cache(prefix + ".cache", std::ios::binary);
    if (!dev || !cache)
        return false;
    flash_->loadState(dev);
    cache_->loadState(cache);
    return dev.good() && cache.good();
}

void
SystemSimulator::writeStatsJson(std::ostream& os) const
{
    registry_.toJson(os);
}

void
SystemSimulator::dumpStats(std::ostream& os) const
{
    os << "---------- flashcache stats dump ----------\n";
    registry_.dumpText(os);
    os << "--------------------------------------------\n";
}

} // namespace flashcache
