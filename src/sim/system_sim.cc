#include "sim/system_sim.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "util/log.hh"

namespace flashcache {

namespace {

/** Adapts the DiskModel to the cache core's BackingStore interface. */
class DiskBackingStore : public BackingStore
{
  public:
    explicit DiskBackingStore(DiskModel& disk)
        : disk_(&disk)
    {
    }

    Seconds
    read(Lba lba) override
    {
        return disk_->access(lba, false);
    }

    Seconds
    write(Lba lba) override
    {
        return disk_->access(lba, false);
    }

  private:
    DiskModel* disk_;
};

} // namespace

SystemSimulator::SystemSimulator(const SystemConfig& config)
    : config_(config), dram_(config.dramBytes, config.dramSpec),
      disk_(config.diskSpec, config.seed * 7919 + 1), rng_(config.seed)
{
    pdcCapacityPages_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(config.pdcFraction *
                                   static_cast<double>(config.dramBytes))
            / config.pageBytes, 16);
    // The OS lets dirty pages accumulate to a fraction of the page
    // cache before the flusher drains the coldest ones.
    pdcDirtyLimit_ = std::max<std::uint64_t>(config.writebackBatch,
                                             pdcCapacityPages_ / 8);
    // Pre-size the PDC LRUs (one extra entry: fills touch before the
    // capacity check evicts) so steady-state serving never allocates.
    pdcLru_.reserve(pdcCapacityPages_ + 1);
    pdcDirtyLru_.reserve(pdcDirtyLimit_ + config.writebackBatch);

    if (config.flashBytes > 0) {
        lifetime_ = std::make_unique<CellLifetimeModel>(config.wear);
        const auto geom = FlashGeometry::forMlcCapacity(config.flashBytes);
        flash_ = std::make_unique<FlashDevice>(geom, config.flashTiming,
                                               *lifetime_,
                                               config.seed * 31 + 5);
        controller_ = std::make_unique<FlashMemoryController>(*flash_);
        diskStore_ = std::make_unique<DiskBackingStore>(disk_);

        FlashCacheConfig fc = config.flashConfig;
        if (config.uniformEccStrength) {
            // Figure 10 mode: every page at one fixed strength.
            fc.initialEccStrength = *config.uniformEccStrength;
            fc.maxEccStrength = *config.uniformEccStrength;
            fc.adaptiveReconfig = false;
            fc.hotPageMigration = false;
        }
        cache_ = std::make_unique<FlashCache>(*controller_, *diskStore_,
                                              fc);
    }
}

SystemSimulator::~SystemSimulator() = default;

Seconds
SystemSimulator::readBelow(Lba lba)
{
    if (cache_)
        return cache_->read(lba).latency;
    return disk_.access(lba, false);
}

Seconds
SystemSimulator::writeBelow(Lba lba)
{
    if (cache_) {
        return cache_->write(lba).latency;
    }
    return disk_.access(lba, false);
}

void
SystemSimulator::evictPdcPage()
{
    const Lba victim = pdcLru_.popLru();
    if (pdcDirtyLru_.erase(victim)) {
        // Background write-back; does not delay the foreground
        // request, but occupies the lower levels.
        writeBelow(victim);
        ++stats_.writebacks;
    }
}

Seconds
SystemSimulator::serve(const TraceRecord& r)
{
    const Seconds compute = rng_.exponential(1.0 / config_.computeTime);
    computeTotal_ += compute;
    Seconds storage = 0.0;

    if (!r.isWrite) {
        if (pdcLru_.contains(r.lba)) {
            pdcLru_.touch(r.lba);
            storage = dram_.read(config_.pageBytes);
            stats_.pdcReads.hit();
        } else {
            stats_.pdcReads.miss();
            while (pdcLru_.size() >= pdcCapacityPages_)
                evictPdcPage();
            storage = readBelow(r.lba) + dram_.write(config_.pageBytes);
            pdcLru_.touch(r.lba);
        }
    } else {
        // Writes complete at DRAM speed; dirty data drains later.
        storage = dram_.write(config_.pageBytes);
        if (!pdcLru_.contains(r.lba)) {
            while (pdcLru_.size() >= pdcCapacityPages_)
                evictPdcPage();
        }
        pdcLru_.touch(r.lba);
        pdcDirtyLru_.touch(r.lba);
        // Periodic write-back (section 5.1): once enough dirty pages
        // accumulate, the flusher drains the coldest ones in batches.
        if (pdcDirtyLru_.size() >= pdcDirtyLimit_) {
            for (unsigned i = 0;
                 i < config_.writebackBatch && !pdcDirtyLru_.empty();
                 ++i) {
                writeBelow(pdcDirtyLru_.popLru());
                ++stats_.writebacks;
            }
        }
    }

    latencyTotal_ += storage;
    return compute + storage;
}

void
SystemSimulator::run(WorkloadGenerator& workload, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        serve(workload.next(rng_));
        ++stats_.requests;
    }
    finishRun();
}

void
SystemSimulator::run(const Trace& trace)
{
    for (const TraceRecord& r : trace) {
        serve(r);
        ++stats_.requests;
    }
    finishRun();
}

void
SystemSimulator::finishRun()
{
    // Closed-loop wall clock: the request streams overlap across the
    // cores, but no serial resource can be busier than the wall
    // clock itself. The flash path serializes the array and the
    // controller's ECC engine.
    const Seconds pipelined = (computeTotal_ + latencyTotal_) /
        static_cast<double>(config_.cores);
    Seconds wall = pipelined;
    wall = std::max(wall, disk_.busyTime());
    if (flash_) {
        wall = std::max(wall, flash_->stats().busyTime +
                              controller_->stats().eccTime);
    }
    wall = std::max(wall, dram_.readBusyTime() + dram_.writeBusyTime());
    stats_.wallClock = wall;
}

PowerReport
SystemSimulator::powerReport() const
{
    PowerReport p;
    const Seconds wall = stats_.wallClock;
    if (wall <= 0.0)
        return p;
    const DramEnergy de = dram_.energyOver(wall);
    p.memRead = de.read / wall;
    p.memWrite = de.write / wall;
    p.memIdle = de.idle / wall;
    if (flash_)
        p.flash = flash_->energyOver(wall) / wall;
    p.disk = disk_.energyOver(wall) / wall;
    return p;
}


void
SystemSimulator::dumpStats(std::ostream& os) const
{
    auto line = [&os](const char* name, double value, const char* desc) {
        os << std::left << std::setw(36) << name << std::setw(18)
           << value << "# " << desc << "\n";
    };

    os << "---------- flashcache stats dump ----------\n";
    line("sim.requests", static_cast<double>(stats_.requests),
         "requests served");
    line("sim.wall_clock", stats_.wallClock, "simulated seconds");
    line("sim.throughput", stats_.throughput(), "requests per second");
    line("pdc.read_hit_rate", stats_.pdcReads.hitRate(),
         "primary disk cache read hit rate");
    line("pdc.writebacks", static_cast<double>(stats_.writebacks),
         "dirty pages written below the PDC");
    line("dram.read_busy", dram_.readBusyTime(), "DRAM read busy s");
    line("dram.write_busy", dram_.writeBusyTime(), "DRAM write busy s");
    line("disk.accesses", static_cast<double>(disk_.accesses()),
         "disk accesses");
    line("disk.busy", disk_.busyTime(), "disk busy seconds");

    if (cache_) {
        const FlashCacheStats& st = cache_->stats();
        line("flash.read_hit_rate", st.fgst.reads.hitRate(),
             "flash cache read hit rate");
        line("flash.recent_miss_rate", st.fgst.recentMissRate(),
             "FGST EWMA miss rate");
        line("flash.avg_hit_latency", st.fgst.avgHitLatency(),
             "FGST t_hit seconds");
        line("flash.occupancy", cache_->occupancy(),
             "valid fraction of capacity");
        line("flash.gc_runs", static_cast<double>(st.gcRuns),
             "garbage collections");
        line("flash.gc_copies", static_cast<double>(st.gcPageCopies),
             "pages relocated by GC");
        line("flash.evictions", static_cast<double>(st.evictions),
             "block evictions");
        line("flash.wear_migrations",
             static_cast<double>(st.wearMigrations),
             "section 3.6 newest-block swaps");
        line("flash.ecc_reconfigs",
             static_cast<double>(st.eccReconfigs),
             "ECC strength increases");
        line("flash.density_reconfigs",
             static_cast<double>(st.densityReconfigs),
             "MLC->SLC switches");
        line("flash.hot_migrations",
             static_cast<double>(st.hotMigrations),
             "read-hot SLC migrations");
        line("flash.retired_blocks",
             static_cast<double>(st.retiredBlocks), "blocks retired");
        line("flash.uncorrectable",
             static_cast<double>(st.uncorrectableReads),
             "uncorrectable reads");
        line("flash.data_loss_pages",
             static_cast<double>(st.dataLossPages),
             "dirty pages lost to wear");
        line("flash.busy", st.flashBusyTime, "flash busy seconds");
        line("ctrl.ecc_busy", controller_->stats().eccTime,
             "ECC engine busy seconds");
        line("ctrl.bits_corrected",
             static_cast<double>(controller_->stats().bitsCorrected),
             "total bits corrected");
    }

    const PowerReport p = powerReport();
    line("power.mem_read", p.memRead, "W");
    line("power.mem_write", p.memWrite, "W");
    line("power.mem_idle", p.memIdle, "W");
    line("power.flash", p.flash, "W");
    line("power.disk", p.disk, "W");
    line("power.total", p.total(), "W");
    os << "--------------------------------------------\n";
}

} // namespace flashcache
