/**
 * @file
 * Power breakdown report matching Figure 9's stacked bars: memory
 * read / write / idle power, flash power, and disk power, averaged
 * over a simulation's wall-clock.
 */

#ifndef FLASHCACHE_SIM_POWER_REPORT_HH
#define FLASHCACHE_SIM_POWER_REPORT_HH

#include <string>

#include "util/types.hh"

namespace flashcache {

/** Mean power by component over a run. */
struct PowerReport
{
    Watts memRead = 0.0;
    Watts memWrite = 0.0;
    Watts memIdle = 0.0;
    Watts flash = 0.0;
    Watts disk = 0.0;

    Watts
    total() const
    {
        return memRead + memWrite + memIdle + flash + disk;
    }

    /** Render as aligned "component: watts" lines. */
    std::string toString() const;
};

} // namespace flashcache

#endif // FLASHCACHE_SIM_POWER_REPORT_HH
