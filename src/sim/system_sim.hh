/**
 * @file
 * Full-system storage-hierarchy simulator (paper section 6.1).
 *
 * Replaces the M5 full-system setup with a closed-loop server model:
 * Table 3's 8 in-order cores become 8 concurrent request streams
 * whose per-request time is a compute component plus the storage
 * hierarchy access chain:
 *
 *   request -> DRAM primary disk cache (PDC, LRU)
 *           -> flash based disk cache (optional)
 *           -> hard disk drive
 *
 * Delivered throughput ("network bandwidth" in Figures 9/10) is
 * requests per second of simulated wall-clock; energy integrates the
 * DRAM read/write/idle split, flash, and disk power over the same
 * wall-clock, reproducing Figure 9's breakdown.
 */

#ifndef FLASHCACHE_SIM_SYSTEM_SIM_HH
#define FLASHCACHE_SIM_SYSTEM_SIM_HH

#include <memory>
#include <optional>
#include <string>

#include "core/flash_cache.hh"
#include "core/lru.hh"
#include "devices/disk.hh"
#include "devices/dram.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "sched/scheduler.hh"
#include "sim/power_report.hh"
#include "util/stats.hh"
#include "workload/synthetic.hh"

namespace flashcache {

namespace obs {
class Tracer;
} // namespace obs

/** System configuration (Table 3 defaults). */
struct SystemConfig
{
    /** Concurrent request streams (8 single-issue in-order cores). */
    unsigned cores = 8;

    /** Closed-loop clients driving the event scheduler; 0 = one per
     *  core. Each client computes (thinks), issues its request
     *  through the per-resource service queues, and draws the next
     *  one when it completes. */
    unsigned clients = 0;

    /** Independent flash channels: blocks are striped over them and
     *  ops on different channels overlap in the event scheduler. */
    unsigned flashChannels = 4;

    /** Controller ECC engine units; 0 = one per flash channel. */
    unsigned eccUnits = 0;

    /** DRAM ports the scheduler can serve concurrently. */
    unsigned dramPorts = 2;

    /** Mean per-request compute time before storage is touched. */
    Seconds computeTime = microseconds(40);

    /** DRAM size; Table 3 sweeps 128-512 MB (1-4 DIMMs). */
    std::uint64_t dramBytes = mib(512);

    /** Flash size; 0 = DRAM-only baseline. Table 3: 256 MB - 2 GB. */
    std::uint64_t flashBytes = 0;

    /** Fraction of DRAM available to the PDC; the remainder holds
     *  the OS, the flash management tables (about 2% of the flash
     *  size, section 3) and network buffers. */
    double pdcFraction = 0.85;

    /** Cached page size. */
    std::uint64_t pageBytes = 2048;

    /** Dirty PDC pages are written back in batches of this many. */
    unsigned writebackBatch = 16;

    /** Policy knobs forwarded to the flash cache. */
    FlashCacheConfig flashConfig;

    /** Uniform ECC strength override for Figure 10 sweeps. */
    std::optional<std::uint8_t> uniformEccStrength;

    /** Wear statistics for the flash cells. */
    WearParams wear;

    /** Device datasheets. */
    FlashTiming flashTiming;
    DramSpec dramSpec;
    DiskSpec diskSpec;

    /** Fault plan; when set an injector is created and attached to
     *  the flash device and the disk (fault.* metrics register). */
    std::optional<FaultPlan> faultPlan;

    std::uint64_t seed = 1;
};

/** Aggregate results of a simulation run. */
struct SystemStats
{
    std::uint64_t requests = 0;

    /** Event-driven wall clock: virtual time of the scheduler's last
     *  event (queueing delay, channel overlap and background runoff
     *  included). */
    Seconds wallClock = 0.0;

    RatioStat pdcReads;   ///< PDC hit/miss on reads
    std::uint64_t writebacks = 0;

    /** Per-request latency (compute + storage), 0.5 ms bins. */
    Histogram requestLatency{0.0, 0.020, 40};

    /** Requests per second of wall clock. */
    double
    throughput() const
    {
        return wallClock > 0.0
            ? static_cast<double>(requests) / wallClock : 0.0;
    }
};

/**
 * The simulator. Construct, run a workload, then read stats and the
 * power report.
 */
class SystemSimulator
{
  public:
    explicit SystemSimulator(const SystemConfig& config);
    ~SystemSimulator();

    /** Drive n requests from the generator through the system. */
    void run(WorkloadGenerator& workload, std::uint64_t n);

    /** Replay a prerecorded trace. */
    void run(const Trace& trace);

    const SystemStats& stats() const { return stats_; }

    /**
     * The retired serial approximation, kept for comparison:
     * max((compute + latency) / clients, per-device busy sums). The
     * event-driven stats().wallClock is authoritative.
     */
    Seconds analyticWallClock() const { return analyticWall_; }

    /** The event scheduler (resource queues + closed loop). */
    const sched::ClosedLoop& scheduler() const { return *sched_; }

    /** Figure 9 power breakdown over the run's wall-clock. */
    PowerReport powerReport() const;

    /** Every metric of the whole stack, registered at construction
     *  in export order. */
    const obs::MetricRegistry& metrics() const { return registry_; }

    /**
     * Attach a request-lifecycle tracer (ring of `capacity` events
     * on the simulated clock); spans cover requests, cache
     * accesses, GC and evictions, with flash/ECC/disk/DRAM leaves.
     * Call before run(); replaces any previous tracer.
     */
    void enableTracing(std::size_t capacity = 1u << 16);

    /** The attached tracer, or nullptr when tracing is off. */
    obs::Tracer* tracer() const { return tracer_.get(); }

    /** JSON snapshot of every registered metric (stable schema). */
    void writeStatsJson(std::ostream& os) const;

    /** Dump every counter of the whole stack in gem5-style
     *  "name  value  # description" lines (rendered from the
     *  registry, so the text and JSON exports always agree). */
    void dumpStats(std::ostream& os) const;

    /** Present when flashBytes > 0. */
    const FlashCache* flashCache() const { return cache_.get(); }
    FlashCache* flashCache() { return cache_.get(); }

    /** The fault injector, or nullptr when no plan was configured. */
    FaultInjector* faultInjector() const { return fault_.get(); }

    /// @name Flash-stack snapshots (<prefix>.dev + <prefix>.cache),
    /// written atomically (temp file + rename) so an interrupted save
    /// never corrupts the previous snapshot. Requires flashBytes > 0.
    /// @{
    bool saveFlashState(const std::string& prefix) const;
    bool loadFlashState(const std::string& prefix);
    /// @}

    const DiskModel& disk() const { return disk_; }
    const DramModel& dram() const { return dram_; }
    const SystemConfig& config() const { return config_; }

  private:
    /** Run one request through the functional model (cache state
     *  mutates, device demands land in the sink); returns its
     *  service-time storage latency and the drawn compute time. */
    Seconds serve(const TraceRecord& r, Seconds& compute);

    /** Drive the event scheduler over a record source. */
    void runLoop(const std::function<bool(TraceRecord&)>& next);

    /** Handle a read below the PDC. @return fill latency. */
    Seconds readBelow(Lba lba);

    /** Write a dirty page below the PDC (to flash or disk). */
    Seconds writeBelow(Lba lba);

    /** Evict the PDC's LRU page, writing it back if dirty. */
    void evictPdcPage();

    /** Close out a run: wall clock + retired analytic comparison. */
    void finishRun();

    /** Register every layer's metrics into registry_. */
    void registerAllMetrics();

    SystemConfig config_;
    DramModel dram_;
    DiskModel disk_;
    Rng rng_;

    /** PDC state: LRU over cached pages; a page is dirty iff it is
     *  in the dirty LRU (kept separately so write-back picks the
     *  coldest dirty pages in O(1)). KeyedLru resolves the sparse
     *  LBA keys through an open-addressed slot index; reserved in
     *  the constructor so serving never allocates. */
    KeyedLru<Lba> pdcLru_;
    KeyedLru<Lba> pdcDirtyLru_;
    std::uint64_t pdcCapacityPages_;
    std::uint64_t pdcDirtyLimit_;

    /** Fault injection (optional, shared by flash and disk). */
    std::unique_ptr<FaultInjector> fault_;

    /** Flash stack (optional). */
    std::unique_ptr<CellLifetimeModel> lifetime_;
    std::unique_ptr<FlashDevice> flash_;
    std::unique_ptr<FlashMemoryController> controller_;
    std::unique_ptr<BackingStore> diskStore_;
    std::unique_ptr<FlashCache> cache_;

    /** Demand capture shared by every device model below the PDC. */
    sched::DemandSink sink_;
    std::unique_ptr<sched::ClosedLoop> sched_;

    SystemStats stats_;
    obs::MetricRegistry registry_;
    std::unique_ptr<obs::Tracer> tracer_;
    /** Aggregates for the retired analytic wall-clock comparison. */
    Seconds computeTotal_ = 0.0;
    Seconds latencyTotal_ = 0.0;
    Seconds analyticWall_ = 0.0;
};

} // namespace flashcache

#endif // FLASHCACHE_SIM_SYSTEM_SIM_HH
