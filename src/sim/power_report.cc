#include "sim/power_report.hh"

#include <cstdio>

namespace flashcache {

std::string
PowerReport::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "mem RD %.3f W | mem WR %.3f W | mem IDLE %.3f W | "
                  "flash %.3f W | disk %.3f W | total %.3f W",
                  memRead, memWrite, memIdle, flash, disk, total());
    return buf;
}

} // namespace flashcache
